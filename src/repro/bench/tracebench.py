"""Traced demonstration run: causal trees for the paper's two request kinds.

``python -m repro.bench trace`` provisions a small single-silo deployment
with the causal tracer on, drives one **insert wave** (every sensor sends
one batch, as in §6.1's benchmarking client) and one **live-data request**
(the organization fan-out of §4.2), then renders both reconstructed trees,
their critical paths, and the run's metrics appendix.

``--smoke`` shrinks the scenario and verifies the tracing invariants —
exactly one root per tree, every span finished, every measured breakdown
component non-negative — making it a cheap CI gate for the whole
observability layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.render import render_critical_path, render_tree as _render_spans
from ..obs.trace import Span, TraceTree
from ..shm.platform import channel_id_for
from .instances import M5_LARGE
from .report import format_metrics_appendix
from .workload import build_deployment, provision, synth_value

MAX_TREE_LINES = 48  # full fan-outs repeat per channel; cap the render


@dataclass
class TraceScenario:
    """A completed traced run, ready to render or assert against."""

    sensors: int
    org_id: str
    insert_tree: TraceTree
    live_tree: TraceTree
    metrics: dict


def run_scenario(sensors: int = 12, seed: int = 2019) -> TraceScenario:
    """Provision, drive one traced insert wave + one live-data request."""
    deployment = build_deployment([M5_LARGE], seed=seed, tracing=True)
    scheduler = deployment.scheduler
    platform = deployment.platform
    tracer = deployment.runtime.tracer
    scheduler.run_until_complete(
        provision(deployment, sensors, sensors_per_org=sensors)
    )
    # Provisioning produces its own (large) trees; the demo traces only the
    # steady-state requests.
    tracer.clear()
    report = deployment.report
    org_id = report.org_ids[0]

    async def insert_wave() -> Span:
        root = tracer.begin("insert-wave", "client", "client", scheduler.now)
        wave_time = scheduler.now

        async def one(sensor_id: str) -> None:
            batches = {}
            for channel in (0, 1):
                batches[channel_id_for(sensor_id, channel)] = [
                    (wave_time + i * 0.1, synth_value(channel, wave_time))
                    for i in range(10)
                ]
            await platform.ingest(sensor_id, batches, trace=root)

        tasks = [scheduler.spawn(one(s)) for s in report.sensor_ids]
        await scheduler.gather(tasks)
        tracer.finish(root, scheduler.now)
        return root

    async def live_request() -> Span:
        root = tracer.begin(
            f"live-data:{org_id}", "client", "client", scheduler.now
        )
        await platform.live_data(org_id, trace=root)
        tracer.finish(root, scheduler.now)
        return root

    insert_root = scheduler.run_until_complete(insert_wave())
    live_root = scheduler.run_until_complete(live_request())
    return TraceScenario(
        sensors=sensors,
        org_id=org_id,
        insert_tree=TraceTree.build(
            tracer.spans(insert_root.trace_id), insert_root
        ),
        live_tree=TraceTree.build(tracer.spans(live_root.trace_id), live_root),
        metrics=deployment.runtime.metrics.cluster_totals(),
    )


def render_tree(tree: TraceTree, title: str) -> str:
    """The tree, then its critical path + totals (obs.render formats)."""
    return "\n".join(
        [
            _render_spans(tree, title, max_lines=MAX_TREE_LINES),
            render_critical_path(tree),
        ]
    )


def check_invariants(tree: TraceTree) -> list[str]:
    """The smoke-test assertions; returns human-readable violations."""
    problems: list[str] = []
    for _depth, span in tree.walk():
        if span.end is None:
            problems.append(f"span #{span.span_id} {span.name} never finished")
            continue
        for component in ("queue", "cpu", "network", "storage"):
            if getattr(span, component) < -1e-9:
                problems.append(
                    f"span #{span.span_id} {span.name}: negative "
                    f"{component} ({getattr(span, component):.9f})"
                )
        if span.duration < -1e-9:
            problems.append(
                f"span #{span.span_id} {span.name}: negative duration"
            )
    return problems


def run_trace_bench(smoke: bool = False, sensors: int | None = None) -> str:
    """The ``trace`` subcommand: render (and in smoke mode, verify) a run."""
    if sensors is None:
        sensors = 4 if smoke else 12
    scenario = run_scenario(sensors=sensors)
    sections = [
        f"trace: causal trees from a traced run "
        f"({scenario.sensors} sensors, 1 organization)",
        "",
        render_tree(scenario.insert_tree, "insert wave"),
        "",
        render_tree(scenario.live_tree, f"live-data fan-out ({scenario.org_id})"),
        format_metrics_appendix(scenario.metrics),
    ]
    if smoke:
        problems = check_invariants(scenario.insert_tree) + check_invariants(
            scenario.live_tree
        )
        if scenario.insert_tree.size() < 1 + scenario.sensors:
            problems.append(
                f"insert tree too small: {scenario.insert_tree.size()} spans "
                f"for {scenario.sensors} sensors"
            )
        if scenario.live_tree.size() < 2:
            problems.append("live-data tree has no fan-out")
        if problems:
            sections.append("\nSMOKE FAILED:")
            sections.extend(f"  {p}" for p in problems)
            raise SystemExit("\n".join(sections))
        sections.append("\nSMOKE OK: trees complete, breakdowns consistent")
    return "\n".join(sections)
