"""Perf-regression baselines: the BENCH JSON files and their CI gate.

Each fast-path bench commits its numbers to a ``BENCH_<name>.json`` at the
repository root, recording both series of the perf trajectory:

- ``seed`` — the pre-fast-path operating point (``fast_path=False``), i.e.
  the calibration the paper's Figure 6/7 numbers validate;
- ``fast`` — the ingestion fast path (delivery batching + dispatch-overhead
  amortization + directory caching + group commit).

Every file carries a ``full`` mode (the committed figure sweep) and a
``smoke`` mode (a three-point sweep cheap enough for CI).  The CI
perf-regression gate re-runs the *smoke* sweep and compares it against the
committed smoke series::

    python -m repro.bench fig6 --smoke --check-baseline BENCH_fig6.json

The gate fails when any matched point's throughput drops more than 10% or
its p99 insert latency rises more than 15%.  The simulator is deterministic
(seeded virtual time), so a healthy checkout reproduces the baseline
exactly; the tolerances are margin for intentional small reworks, not for
measurement noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from . import experiments
from .experiments import FigPoint, FigResult

#: Gate thresholds (fractions).  A matched point fails the gate when its
#: fresh throughput is below ``(1 - THROUGHPUT_DROP_TOLERANCE)`` of the
#: baseline, or its fresh p99 exceeds ``(1 + P99_RISE_TOLERANCE)`` of it.
THROUGHPUT_DROP_TOLERANCE = 0.10
P99_RISE_TOLERANCE = 0.15

#: Smoke sweeps: one point in the linear region, one at the seed saturation
#: knee, one past it where only the fast path keeps up.
FIG6_SMOKE = dict(sensor_counts=(600, 1800, 3000), duration=4.0)
FIG7_SMOKE = dict(scale_factors=(1, 2), duration=4.0)


def _row(point: FigPoint) -> dict:
    row = {
        "sensors": point.sensors,
        "servers": point.servers,
        "offered_rps": point.offered_rps,
        "throughput_rps": round(point.throughput, 2),
        "utilization": round(point.utilization, 4),
    }
    if point.insert is not None:
        row["p50_ms"] = round(point.insert.p50 * 1000, 2)
        row["p99_ms"] = round(point.insert.p99 * 1000, 2)
    return row


def _series(result: FigResult) -> list[dict]:
    return [_row(point) for point in result.points]


def _saturation(rows: list[dict]) -> float:
    return max((row["throughput_rps"] for row in rows), default=0.0)


def _fig_payload(
    bench: str,
    runner: Callable[..., FigResult],
    mode: str,
    smoke_kwargs: dict,
) -> dict:
    kwargs = dict(smoke_kwargs) if mode == "smoke" else {}
    fast = runner(fast_path=True, **kwargs)
    seed = runner(fast_path=False, **kwargs)
    fast_rows, seed_rows = _series(fast), _series(seed)
    return {
        "bench": bench,
        "mode": mode,
        "title": fast.title,
        "series": {"seed": seed_rows, "fast": fast_rows},
        "summary": {
            "seed_saturation_rps": _saturation(seed_rows),
            "fast_saturation_rps": _saturation(fast_rows),
            "speedup": round(
                _saturation(fast_rows) / max(1e-9, _saturation(seed_rows)), 3
            ),
        },
    }


def build_fig6(smoke: bool = False) -> dict:
    """Figure 6 (single-server saturation), seed vs fast path."""
    return _fig_payload(
        "fig6", experiments.run_fig6, "smoke" if smoke else "full", FIG6_SMOKE
    )


def build_fig7(smoke: bool = False) -> dict:
    """Figure 7 (scale-out), seed vs fast path."""
    return _fig_payload(
        "fig7", experiments.run_fig7, "smoke" if smoke else "full", FIG7_SMOKE
    )


def build_micro(smoke: bool = False) -> dict:
    """Mechanism-level counters proving where the fast path's win comes from.

    Runs one small single-silo load twice (fast path on/off) and reports the
    batching, directory-cache and group-commit counters next to the A/B
    latency numbers — the profiler-style accounting the acceptance criteria
    ask for ("savings come from network/storage, not workload distortion").

    The figure runs follow the paper and disable per-request persistence,
    which leaves group commit idle there; the ``*_durable`` variants rerun
    the same load with write-through channel state against a provisioned
    store so the storage half of the fast path is measured too.
    """
    from ..kernel import Scheduler
    from ..net.latency import ConstantLatency
    from ..runtime.persistence import WritePolicy
    from ..shm.channel import PhysicalSensorChannel
    from ..storage import ProvisionedKVStore
    from .workload import LoadConfig, build_deployment, execute, provision

    sensors = 300 if smoke else 600
    duration = 3.0 if smoke else 6.0
    variants: dict[str, dict] = {}
    plans = [
        ("fast", True, False),
        ("seed", False, False),
        ("fast_durable", True, True),
        ("seed_durable", False, True),
    ]
    for label, fast_path, durable in plans:
        original_policy = PhysicalSensorChannel.write_policy
        if durable:
            PhysicalSensorChannel.write_policy = WritePolicy.WRITE_THROUGH
        try:
            scheduler = Scheduler()
            store = None
            if durable:
                store = ProvisionedKVStore(
                    scheduler,
                    read_capacity_units=5000.0,
                    write_capacity_units=5000.0,
                    latency=ConstantLatency(0.005),
                )
            deployment = build_deployment(
                [experiments.M5_LARGE],
                seed=11,
                scheduler=scheduler,
                fast_path=fast_path,
                grain_storage=store,
            )
            deployment.scheduler.run_until_complete(
                provision(deployment, sensors)
            )
            run = execute(
                deployment, LoadConfig(sensors=sensors, duration=duration)
            )
        finally:
            PhysicalSensorChannel.write_policy = original_policy
        insert = run.summary("insert")
        metrics = run.metrics
        messages = metrics.get("net.messages", 0.0)
        envelopes = metrics.get("net.envelopes", 0.0)
        batched = metrics.get("net.batched_messages", 0.0)
        hits = metrics.get("directory.cache_hits", 0.0)
        misses = metrics.get("directory.cache_misses", 0.0)
        variants[label] = {
            "sensors": sensors,
            "duration_s": duration,
            "throughput_rps": round(
                insert.throughput_mean if insert else 0.0, 2
            ),
            "p50_ms": round((insert.p50 if insert else 0.0) * 1000, 2),
            "p99_ms": round((insert.p99 if insert else 0.0) * 1000, 2),
            "net_messages": messages,
            "envelopes": envelopes,
            "batched_messages": batched,
            "avg_cohort": round(messages / envelopes, 3) if envelopes else 0.0,
            "batched_fraction": round(batched / messages, 3) if messages else 0.0,
            "largest_envelope": metrics.get("net.largest_envelope", 0.0),
            "immediate_flush_fraction": round(
                metrics.get("batch.immediate_flushes", 0.0)
                / max(1.0, metrics.get("batch.flushes", 0.0)),
                3,
            ),
            "directory_cache_hit_rate": round(
                hits / max(1.0, hits + misses), 4
            ),
            "directory_cache_invalidations": metrics.get(
                "directory.cache_invalidations", 0.0
            ),
            "groupcommit_batches": metrics.get("groupcommit.batches", 0.0),
            "groupcommit_round_trips_saved": metrics.get(
                "groupcommit.round_trips_saved", 0.0
            ),
        }
    fast, seed = variants["fast"], variants["seed"]
    fast_durable = variants["fast_durable"]
    return {
        "bench": "micro",
        "mode": "smoke" if smoke else "full",
        "title": "Fast-path mechanism microbenchmarks (one m5.large silo)",
        "series": variants,
        "summary": {
            "p50_speedup": round(
                seed["p50_ms"] / max(1e-9, fast["p50_ms"]), 3
            ),
            "durable_p50_speedup": round(
                variants["seed_durable"]["p50_ms"]
                / max(1e-9, fast_durable["p50_ms"]),
                3,
            ),
            "avg_cohort": fast["avg_cohort"],
            "directory_cache_hit_rate": fast["directory_cache_hit_rate"],
            "groupcommit_round_trips_saved": fast_durable[
                "groupcommit_round_trips_saved"
            ],
        },
    }


def build_elastic(smoke: bool = False) -> dict:
    """Elasticity bench: autoscaled diurnal ramp vs static provisioning.

    Delegates to :func:`repro.bench.elastic.build_elastic` (imported lazily
    so the baseline module stays import-light); the builder asserts the
    elasticity invariants (zero lost messages, >=30% silo-seconds savings,
    bounded migration-wave p99) and raises on violation.
    """
    from .elastic import build_elastic as _build

    return _build(smoke)


def build_partition(smoke: bool = False) -> dict:
    """Partition-tolerance bench: netsplit/zombie/crash safety invariants.

    Delegates to :func:`repro.bench.partition.build_partition`; the builder
    asserts the partition-safety invariants (zero lost updates on the
    netsplit, fenced stale writers, redo-lag-bounded crash loss) across a
    multi-seed sweep and raises on violation.
    """
    from .partition import build_partition as _build

    return _build(smoke)


def build_speed(smoke: bool = False) -> dict:
    """Host-speed bench: kernel events/sec and allocation pressure.

    Delegates to :func:`repro.bench.speed.build_speed`; unlike the other
    benches this one measures *host* wall-clock, so its gate (in
    :func:`repro.bench.speed.gate_speed`) compares calibration-normalized
    events-per-mega-op rather than raw virtual-time throughput.
    """
    from .speed import build_speed as _build

    return _build(smoke)


def build_views(smoke: bool = False) -> dict:
    """Materialized-views bench: standing queries vs pull-based scans.

    Delegates to :func:`repro.bench.views.build_views`; the builder asserts
    the view invariants (O(groups-asked) read cost at least 10x below the
    pull scan, exactly-once folding in steady and chaos-seeded runs,
    staleness p99 under the registered bound with the ``view-staleness``
    SLO rule silent) and raises on violation.
    """
    from .views import build_views as _build

    return _build(smoke)


def build_tsbench(smoke: bool = False) -> dict:
    """Tiered time-series storage bench: compression, memory, scan latency.

    Delegates to :func:`repro.bench.tsbench.build_tsbench`; the builder
    asserts the storage invariants (≥10× per-sensor memory reclaimed,
    ≥4× sealed-tier compression, recent-range scans within 2× of the raw
    window, exact tiered-vs-raw query equivalence, end-to-end point
    conservation through the block-backed archive) and raises on
    violation.  Committed as ``BENCH_tsblocks.json``.
    """
    from .tsbench import build_tsbench as _build

    return _build(smoke)


BUILDERS: dict[str, Callable[[bool], dict]] = {
    "fig6": build_fig6,
    "fig7": build_fig7,
    "micro": build_micro,
    "elastic": build_elastic,
    "partition": build_partition,
    "speed": build_speed,
    "views": build_views,
    "tsbench": build_tsbench,
}


def write_baseline(path: str | Path, payloads: dict[str, dict]) -> None:
    """Write ``{"modes": {mode: payload}}``, merging into an existing file."""
    target = Path(path)
    document: dict = {"modes": {}}
    if target.exists():
        document = json.loads(target.read_text())
        document.setdefault("modes", {})
    for mode, payload in payloads.items():
        document["modes"][mode] = payload
    document["bench"] = next(iter(payloads.values()))["bench"]
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def _gate_rows(
    label: str,
    fresh_rows: list[dict],
    base_rows: list[dict],
    key: Callable[[dict], object],
) -> list[str]:
    failures: list[str] = []
    baseline_by_key = {key(row): row for row in base_rows}
    for row in fresh_rows:
        base = baseline_by_key.get(key(row))
        if base is None:
            continue
        floor = base["throughput_rps"] * (1 - THROUGHPUT_DROP_TOLERANCE)
        if row["throughput_rps"] < floor:
            failures.append(
                f"{label} {key(row)}: throughput {row['throughput_rps']:.1f} "
                f"rps fell below gate {floor:.1f} "
                f"(baseline {base['throughput_rps']:.1f})"
            )
        if "p99_ms" in row and "p99_ms" in base:
            ceiling = base["p99_ms"] * (1 + P99_RISE_TOLERANCE)
            if row["p99_ms"] > ceiling:
                failures.append(
                    f"{label} {key(row)}: p99 {row['p99_ms']:.1f} ms rose "
                    f"above gate {ceiling:.1f} (baseline {base['p99_ms']:.1f})"
                )
    return failures


def check_against_baseline(fresh: dict, baseline: dict) -> list[str]:
    """Compare a fresh payload to the committed file; return gate failures.

    Matches the fresh run's mode against the same mode in the baseline file
    and gates every point of both series (the fast path must not regress,
    and the seed series doubles as a calibration-drift alarm).
    """
    base_payload = baseline.get("modes", {}).get(fresh["mode"])
    if base_payload is None:
        return [
            f"baseline has no '{fresh['mode']}' mode for bench "
            f"'{fresh['bench']}'; regenerate it with --write-baseline"
        ]
    if fresh.get("bench") == "speed":
        from .speed import gate_speed

        return gate_speed(fresh, base_payload)
    if fresh.get("bench") == "tsblocks":
        from .tsbench import gate_tsblocks

        return gate_tsblocks(fresh, base_payload)
    failures: list[str] = []
    fresh_series = fresh["series"]
    base_series = base_payload["series"]
    for name in fresh_series:
        if name not in base_series:
            continue
        fresh_rows, base_rows = fresh_series[name], base_series[name]
        if isinstance(fresh_rows, dict):  # micro: one row per variant
            fresh_rows, base_rows = [fresh_rows], [base_rows]
            key = lambda row: name  # noqa: E731
        else:
            key = lambda row: (row["sensors"], row["servers"])  # noqa: E731
        failures.extend(_gate_rows(name, fresh_rows, base_rows, key))
    return failures
