"""Render experiment results as the tables recorded in EXPERIMENTS.md."""

from __future__ import annotations

from .chaos import ChaosResult, format_chaos_report
from .experiments import AblationResult, FigResult


def _table(headers: list[str], rows: list[list[str]]) -> str:
    def column_width(i: int) -> int:
        if not rows:
            return len(headers[i])
        return max(len(headers[i]), *(len(row[i]) for row in rows))

    widths = [column_width(i) for i in range(len(headers))]

    def line(cells):
        padded = (cell.ljust(width) for cell, width in zip(cells, widths))
        return "  ".join(padded).rstrip()

    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), separator] + [line(row) for row in rows])


def _ms(value: float | None) -> str:
    return "-" if value is None else f"{value * 1000:.0f}"


_APPENDIX_METRICS = (
    # The cluster-total counters worth printing under every figure table;
    # everything else stays available via MetricsRegistry.snapshot().
    "runtime.asks",
    "runtime.tells",
    "runtime.replies",
    "runtime.errors",
    "runtime.activations_created",
    "runtime.activations_collected",
    "runtime.calls_retried",
    "runtime.deadlines_exceeded",
    "net.messages",
    "net.remote_messages",
    "net.loopback_messages",
    "storage.rcu_consumed",
    "storage.wcu_consumed",
    "storage.throttled_reads",
    "storage.throttled_writes",
    "ingest.accepted",
    "ingest.shed",
    "placement.decisions",
)


def format_metrics_appendix(totals: dict) -> str:
    """Render a run's cluster-total metrics as an indented appendix."""
    if not totals:
        return ""
    lines = ["  metrics appendix (cluster totals, final run):"]
    shown = [name for name in _APPENDIX_METRICS if totals.get(name)]
    for name in shown:
        value = totals[name]
        rendered = f"{value:.4g}" if isinstance(value, float) else str(value)
        lines.append(f"    {name} = {rendered}")
    if not shown:
        return ""
    return "\n" + "\n".join(lines)


def _figure_appendix(result: FigResult) -> str:
    if not result.points:
        return ""
    return format_metrics_appendix(result.points[-1].metrics)


def format_throughput_figure(result: FigResult) -> str:
    """Figures 6 and 7: throughput vs offered load."""
    headers = [
        "sensors", "servers", "offered req/s", "throughput req/s", "+/-", "util %",
    ]
    rows = [
        [
            str(p.sensors),
            str(p.servers),
            f"{p.offered_rps:.0f}",
            f"{p.throughput:.0f}",
            f"{p.throughput_std:.0f}",
            f"{p.utilization * 100:.0f}",
        ]
        for p in result.points
    ]
    body = _table(headers, rows)
    notes = "".join(f"\n  {key}: {value}" for key, value in result.notes.items())
    return f"{result.figure}: {result.title}\n{body}{notes}{_figure_appendix(result)}"


def format_latency_figure(result: FigResult, kind: str) -> str:
    """Figures 8 and 9: latency percentiles vs sensors (milliseconds)."""
    headers = ["sensors", "util %", "n", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms"]
    rows = []
    for point in result.points:
        summary = getattr(point, kind)
        rows.append(
            [
                str(point.sensors),
                f"{point.utilization * 100:.0f}",
                str(summary.requests if summary else 0),
                _ms(summary.p50 if summary else None),
                _ms(summary.p90 if summary else None),
                _ms(summary.p99 if summary else None),
                _ms(summary.p999 if summary else None),
            ]
        )
    body = _table(headers, rows)
    return f"{result.figure}: {result.title}\n{body}{_figure_appendix(result)}"


def format_ablation(result: AblationResult) -> str:
    """Generic ablation table from its row dictionaries."""
    if not result.rows:
        return f"ablation {result.name}: no rows"
    headers = list(result.rows[0].keys())
    rows = []
    for row in result.rows:
        cells = []
        for header in headers:
            value = row[header]
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        rows.append(cells)
    body = _table(headers, rows)
    notes = "".join(f"\n  {key}: {value}" for key, value in result.notes.items())
    return f"ablation: {result.name}\n{body}{notes}"


def format_result(result: FigResult | AblationResult) -> str:
    """Dispatch to the right formatter."""
    if isinstance(result, ChaosResult):
        return format_chaos_report(result)
    if isinstance(result, tuple) and result and isinstance(result[0], ChaosResult):
        return format_chaos_report(*result)
    if isinstance(result, AblationResult):
        return format_ablation(result)
    if result.figure in ("fig6", "fig7"):
        return format_throughput_figure(result)
    kind = "raw" if result.figure == "fig8" else "live"
    return format_latency_figure(result, kind)
