"""The benchmarking tool: deployment builder and load generator.

Reproduces the paper's .NET benchmarking client (§6.1):

- **Sensor waves**: every simulated sensor sends one insert request with 20
  data points (10 per physical channel) each second, "repeated each second
  if all sensors have finished their calls" — a global wave barrier.
- **User queries**: per organization, at most one live-data request and one
  raw-data request per second (≈1%/1%/98% mix at 100 sensors/org).
- **Measurement**: windowed means with first/last-window trimming
  (:mod:`repro.bench.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aodb.database import AodbDatabase
from ..kernel.rng import RngRegistry
from ..kernel.scheduler import Scheduler
from ..net.latency import ConstantLatency
from ..net.network import Network
from ..obs.profile import Profiler
from ..obs.trace import Tracer
from ..runtime.key import ActorKey
from ..runtime.runtime import AodbRuntime
from ..shm.platform import ProvisionReport, ShmPlatform, channel_id_for
from .calibration import LAN_LATENCY_SECONDS, calibrated_config
from .instances import InstanceType
from .metrics import LatencyRecorder, Summary


@dataclass
class LoadConfig:
    """One load run's parameters."""

    sensors: int
    duration: float = 12.0
    window_seconds: float = 1.0
    sensors_per_org: int = 100
    with_queries: bool = False
    wave_jitter: float = 0.02
    raw_range_seconds: float = 2.0
    points_per_channel: int = 10
    sample_dt: float = 0.1


@dataclass
class Deployment:
    """A provisioned cluster ready to receive load."""

    scheduler: Scheduler
    runtime: AodbRuntime
    database: AodbDatabase
    platform: ShmPlatform
    rng: RngRegistry
    report: ProvisionReport | None = None


@dataclass
class RunResult:
    """Everything a figure needs from one load run."""

    config: LoadConfig
    recorder: LatencyRecorder
    measure_start: float
    measure_end: float
    utilization: dict[str, float] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def summary(self, kind: str) -> Summary | None:
        return self.recorder.summarize(
            kind,
            self.config.window_seconds,
            self.measure_start,
            self.measure_end,
        )

    @property
    def insert_throughput(self) -> float:
        summary = self.summary("insert")
        return summary.throughput_mean if summary else 0.0

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(self.utilization.values()) / len(self.utilization)


def build_deployment(
    silos: list[InstanceType],
    seed: int = 0,
    window_capacity: int = 256,
    enable_aggregation: bool = False,
    scheduler: Scheduler | None = None,
    tracing: bool = False,
    profiling: bool = False,
    fast_path: bool = True,
    grain_storage=None,
    placement_fallback: str | None = None,
    dedup_ingest: bool = False,
    block_size: int | None = None,
) -> Deployment:
    """Assemble runtime + database + SHM platform over simulated servers.

    ``tracing=True`` turns on the causal tracer (spans for every message);
    ``profiling=True`` turns on the continuous per-actor profiler.  Both
    stay off for figure runs so measurements reflect the uninstrumented hot
    path.  The metrics registry is always on — it is pull-based and costs
    nothing until snapshotted.  ``fast_path=False`` disables the ingestion
    fast path (delivery batching, overhead amortization, group commit),
    reproducing the seed operating point for baseline comparisons.
    ``placement_fallback`` overrides the strategy unpinned prefer-local /
    pinned placements fall back to (the elastic bench uses
    ``"power_of_two"`` so fresh activations spread load-aware).
    ``dedup_ingest=True`` provisions sensors and channels with monotonic
    timestamp dedup, making ingestion idempotent under retries and
    duplicated deliveries (the partition bench turns it on).
    """
    scheduler = scheduler or Scheduler()
    rng = RngRegistry(seed)
    config = calibrated_config(seed, fast_path=fast_path)
    if placement_fallback is not None:
        config.placement_fallback = placement_fallback
    network = Network(
        scheduler, rng=rng, lan=ConstantLatency(LAN_LATENCY_SECONDS)
    )
    runtime = AodbRuntime(
        scheduler,
        config=config,
        network=network,
        rng=rng,
        tracer=Tracer(enabled=tracing),
        profiler=Profiler(enabled=profiling),
        grain_storage=grain_storage,
    )
    for index, instance_type in enumerate(silos):
        runtime.add_silo(
            f"silo-{index}",
            cores=instance_type.cores,
            speed=instance_type.speed,
            instance_type=instance_type.name,
        )
    database = AodbDatabase(runtime)
    platform_kwargs = {} if block_size is None else {"block_size": block_size}
    platform = ShmPlatform(
        database,
        window_capacity=window_capacity,
        enable_aggregation=enable_aggregation,
        dedup_ingest=dedup_ingest,
        **platform_kwargs,
    )
    return Deployment(scheduler, runtime, database, platform, rng)


async def provision(
    deployment: Deployment,
    total_sensors: int,
    sensors_per_org: int = 100,
) -> ProvisionReport:
    """Provision the paper's structure, partitioning tenants over silos.

    Organizations (and, via prefer-local placement, their whole actor
    subtrees) are pinned round-robin across silos — the paper's "no
    dependencies across organizations" partitioning that makes Figure 7
    scale linearly.
    """
    silo_ids = [silo.silo_id for silo in deployment.runtime.silos()]
    org_count = (total_sensors + sensors_per_org - 1) // sensors_per_org
    pinned = deployment.runtime.pinned_placement
    for org_index in range(org_count):
        silo_id = silo_ids[org_index % len(silo_ids)]
        org_id = f"org-{org_index}"
        pinned.pin(ActorKey("Organization", org_id), silo_id)
        pinned.pin_prefix(f"Sensor/{org_id}/", silo_id)
    report = await deployment.platform.provision(
        total_sensors, sensors_per_org=sensors_per_org
    )
    deployment.report = report
    # Provisioning work must not pollute the measurement: reset both the
    # kernel CPU ledger and the profiler's attribution so they stay in sync
    # (coverage compares the two).
    for silo in deployment.runtime.silos():
        silo.cpu.reset_accounting()
    deployment.runtime.profiler.clear()
    return report


def synth_value(channel_index: int, timestamp: float) -> float:
    """Cheap deterministic signal: per-channel offset plus a slow drift."""
    return channel_index * 10.0 + 0.001 * timestamp


async def run_load(deployment: Deployment, load: LoadConfig) -> RunResult:
    """Drive the paper's workload and return the measurements."""
    if deployment.report is None:
        raise RuntimeError("call provision() before run_load()")
    scheduler = deployment.scheduler
    platform = deployment.platform
    recorder = LatencyRecorder()
    jitter_rng = deployment.rng.stream("wave-jitter")
    query_rng = deployment.rng.stream("queries")
    start = scheduler.now
    stop = start + load.duration
    sensor_ids = deployment.report.sensor_ids
    org_ids = deployment.report.org_ids
    org_channels = {
        org_id: [
            channel_id_for(sensor_id, channel)
            for sensor_id in sensor_ids
            if sensor_id.startswith(f"{org_id}/")
            for channel in (0, 1)
        ]
        for org_id in org_ids
    }

    # Per-sensor channel ids never change; build the f-strings once instead
    # of twice per sensor per wave.
    sensor_channels = {
        sensor_id: (channel_id_for(sensor_id, 0), channel_id_for(sensor_id, 1))
        for sensor_id in sensor_ids
    }

    def wave_samples(wave_time: float) -> tuple[tuple, tuple]:
        """Both channels' sample batches for one wave.

        Every sensor sends the same synthetic signal, so the
        ``(timestamp, value)`` pairs depend only on ``(channel, wave_time)``
        — computed once per wave and shared (they are immutable tuples)
        across the whole fleet instead of rebuilt per sensor.  The float
        expressions match the original per-sensor construction exactly, so
        measured values are bit-identical.
        """
        times = [wave_time + i * load.sample_dt for i in range(load.points_per_channel)]
        return (
            tuple((ts, synth_value(0, ts)) for ts in times),
            tuple((ts, synth_value(1, ts)) for ts in times),
        )

    async def one_insert(sensor_id: str, jitter: float, samples: tuple) -> None:
        if jitter > 0:
            await scheduler.sleep(jitter)
        sent = scheduler.now
        channel_ids = sensor_channels[sensor_id]
        batches = {channel_ids[0]: samples[0], channel_ids[1]: samples[1]}
        await platform.ingest(sensor_id, batches)
        recorder.record("insert", sent, scheduler.now - sent)

    async def fleet() -> None:
        while scheduler.now < stop:
            wave_time = scheduler.now
            samples = wave_samples(wave_time)
            tasks = [
                scheduler.spawn(
                    one_insert(
                        sensor_id,
                        jitter_rng.uniform(0, load.wave_jitter),
                        samples,
                    )
                )
                for sensor_id in sensor_ids
            ]
            await scheduler.gather(tasks)
            next_wave = wave_time + 1.0
            if scheduler.now < next_wave:
                await scheduler.sleep(next_wave - scheduler.now)

    async def live_queries(org_id: str) -> None:
        # One user per organization looks at live data once a second; the
        # moment within each second is uniformly random (users are not
        # synchronized with the sensor waves).
        cycle = scheduler.now
        while cycle < stop:
            offset = query_rng.uniform(0, 1.0)
            await scheduler.at(cycle + offset)
            sent = scheduler.now
            await platform.live_data(org_id)
            recorder.record("live", sent, scheduler.now - sent)
            cycle += 1.0
            if scheduler.now < cycle:
                await scheduler.sleep(cycle - scheduler.now)

    async def raw_queries(org_id: str) -> None:
        channels = org_channels[org_id]
        cycle = scheduler.now
        while cycle < stop:
            offset = query_rng.uniform(0, 1.0)
            await scheduler.at(cycle + offset)
            channel_id = channels[query_rng.randrange(len(channels))]
            sent = scheduler.now
            await platform.raw_range(
                channel_id, sent - load.raw_range_seconds, sent
            )
            recorder.record("raw", sent, scheduler.now - sent)
            cycle += 1.0
            if scheduler.now < cycle:
                await scheduler.sleep(cycle - scheduler.now)

    tasks = [scheduler.spawn(fleet(), name="fleet")]
    if load.with_queries:
        for org_id in org_ids:
            tasks.append(scheduler.spawn(live_queries(org_id), name=f"live:{org_id}"))
            tasks.append(scheduler.spawn(raw_queries(org_id), name=f"raw:{org_id}"))

    utilization: dict[str, float] = {}

    async def snapshot_utilization() -> None:
        await scheduler.at(stop)
        for silo in deployment.runtime.silos():
            utilization[silo.silo_id] = silo.cpu.utilization()

    tasks.append(scheduler.spawn(snapshot_utilization(), name="utilization"))
    await scheduler.gather(tasks)
    return RunResult(
        config=load,
        recorder=recorder,
        measure_start=start,
        measure_end=stop,
        utilization=utilization,
        metrics=deployment.runtime.metrics.cluster_totals(),
    )


def execute(deployment: Deployment, load: LoadConfig) -> RunResult:
    """Synchronous convenience wrapper used by benches and the CLI."""
    return deployment.scheduler.run_until_complete(run_load(deployment, load))
