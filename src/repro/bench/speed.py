"""Host-speed benchmark: how fast the simulator itself runs.

Every other bench in this package measures *virtual* time — latencies and
throughputs inside the simulation.  This one measures the **host**: how many
kernel events per second of wall-clock time the scheduler dispatches, and how
much live heap the kernel keeps per event while doing it.  Wall-clock of the
simulator is the binding constraint on experiment scale (ROADMAP item 5), so
this harness is what the raw-speed refactors are measured — and CI-gated —
against.

Five fixed workloads::

    kernel  raw dispatch: scatter-gather fan-out waves (each worker gathers
            a burst of jittered timers per round) — the kernel skeleton of
            the paper's sensor->channel fan-out, and the purest measure of
            per-event scheduler cost because almost every event is a timer
            fire rather than a coroutine resume.
    ask     ask-shaped producer/consumer round trips whose replies are
            deadline-wrapped (``Scheduler.timeout``), plus the sleep/resume
            churn the actor runtime generates per message.  This is the
            workload the timeout-timer leak used to throttle; its
            ``pending_events_peak`` is the leak alarm.
    fig6    the fig6 event *shape* at kernel level: waves of jittered
            sensors, each relaying a 20-point batch to its two channel
            queues, per-point service timers, SLO-deadline-wrapped acks and
            a 1 s wave cadence.  Same event mix as the paper's ingestion
            benchmark (timer-heavy fan-out plus queue handoffs plus live
            deadlines) without application bytecode diluting the measure.
    runtime a full-stack fig6 ingest run (one m5.large silo, sensor waves
            through the whole gateway->runtime->storage stack, fast path
            on) — the end-to-end sanity series.
    chaos   the full stack with call deadlines, retries and a lossy
            network — heavy deadline/timer traffic through the real runtime.

Host seconds are noisy across machines, so the gated throughput metric is
**events per mega-op**: events/sec divided by a *calibration score* —
millions of iterations/sec of a fixed pure-Python loop — measured
immediately before each timing rep, best paired ratio taken.  Pairing
matters: host noise (CPU steal on shared runners) comes in windows that
span whole measurements, so an adjacent slice sees the same window as the
workload and the ratio cancels it.  Two further gated metrics are
deterministic and host-independent:

- ``pending_events_peak`` — the high-water mark of queued kernel events,
  sampled every 0.25 virtual seconds.  A re-introduced timer leak shows up
  here immediately (dead timers pile up in the heap).
- ``alloc_peak_bytes_per_event`` — tracemalloc's live-allocation high-water
  mark divided by events processed: the per-event memory pressure budget.

Usage::

    python -m repro.bench speed                  # full payload to stdout
    python -m repro.bench speed --smoke --check-baseline BENCH_speed.json
    python -m repro.bench speed --write-baseline BENCH_speed.json
"""

from __future__ import annotations

import gc
import time
import tracemalloc

from ..kernel.futures import Future
from ..kernel.scheduler import Scheduler
from ..kernel.sync import Queue

#: Gate thresholds (fractions) applied by :func:`gate_speed`.
EVENTS_PER_MOP_DROP_TOLERANCE = 0.10
ALLOC_RISE_TOLERANCE = 0.25
PENDING_PEAK_RISE_TOLERANCE = 0.20

#: The full-stack series (runtime, chaos) mix allocator pressure and cache
#: effects the pure-Python calibration loop cannot cancel, so their
#: normalized throughput wobbles more run-to-run than the kernel-level
#: series even on one host.  They get a wider drop gate; kernel/ask/fig6
#: carry the tight one.
FULL_STACK_DROP_TOLERANCE = 0.30
_FULL_STACK_SERIES = frozenset({"runtime", "chaos"})

#: Virtual-time interval between pending_events samples.
_SAMPLE_INTERVAL = 0.25


def _calibration_slice(iterations: int = 600_000) -> float:
    """One pass of the fixed calibration loop; millions of iterations/sec.

    The loop exercises the operations the kernel hot path is made of
    (attribute-free arithmetic, list append/pop, dict get) and never changes
    between revisions, so ``events_per_sec / calibration_mops`` compares
    kernel efficiency across machines of different raw speed.
    """
    bucket: dict[int, int] = {}
    stack: list[int] = []
    acc = 0
    started = time.perf_counter()
    for i in range(iterations):
        acc = (acc + i) & 0xFFFF
        stack.append(acc)
        bucket[acc & 63] = acc
        if acc & 1:
            stack.pop()
    elapsed = time.perf_counter() - started
    return iterations / elapsed / 1e6


def calibrate_host(iterations: int = 2_000_000) -> float:
    """Best-of-three calibration score for the payload header."""
    return max(_calibration_slice(iterations) for _ in range(3))


def _run_kernel_workload(
    workers: int, rounds: int, record_pending=None
) -> Scheduler:
    """Raw-dispatch kernel traffic: scatter-gather timer fan-out waves.

    Each worker round gathers a burst of jittered sleeps — the kernel
    skeleton of a sensor grain fanning an insert out to its channel actors
    and acknowledging when all stored (the paper's benchmark inner loop).
    Nearly every event is a pure timer fire (the gather absorbs completions
    without a coroutine resume per timer), so the measured cost is the
    scheduler's own dispatch path: heap/wheel pop, handle teardown, future
    resolution — not workload bytecode.
    """
    scheduler = Scheduler()
    fanout = 60

    async def worker(base: float) -> None:
        sleep = scheduler.sleep
        gather = scheduler.gather
        for _ in range(rounds):
            await gather([sleep(base + 0.0001 * j) for j in range(fanout)])

    async def main() -> None:
        tasks = [
            scheduler.spawn(worker(0.001 + 0.0005 * (i % 4)))
            for i in range(workers)
        ]
        await scheduler.gather(tasks)

    if record_pending is not None:

        async def sampler() -> None:
            while True:
                await scheduler.sleep(_SAMPLE_INTERVAL)
                record_pending(scheduler.pending_events)

        scheduler.spawn(sampler())

    scheduler.run_until_complete(main())
    return scheduler


def _run_ask_workload(
    clients: int, rounds: int, record_pending=None
) -> Scheduler:
    """Ask-shaped kernel traffic: N clients round-tripping through servers.

    Each round is one simulated ask: enqueue to a server's mailbox, the
    server charges a small service sleep and resolves the reply future, and
    the client awaits that reply under a 0.25s deadline (the common case —
    the reply beats the deadline every time, which is exactly the traffic
    pattern that used to leak one dead timer per call).
    """
    scheduler = Scheduler()
    servers = 8
    queues = [Queue(scheduler) for _ in range(servers)]
    service = 0.0005
    think = 0.002
    deadline = 0.25

    async def server(queue: Queue) -> None:
        get = queue.get
        get_nowait = queue.get_nowait
        empty = queue.empty
        sleep = scheduler.sleep
        while True:
            # Buffered fast path: identical scheduling either way (awaiting
            # a completed future never suspends), minus a future per item.
            if empty():
                payload, reply = await get()
            else:
                payload, reply = get_nowait()
            if payload is None:
                return
            await sleep(service)
            reply.set_result(payload)

    async def client(index: int) -> None:
        queue = queues[index % servers]
        put = queue.put_nowait
        timeout = scheduler.timeout
        sleep = scheduler.sleep
        for round_no in range(rounds):
            reply: Future[int] = Future()
            put((round_no, reply))
            await timeout(reply, deadline)
            await sleep(think)

    async def main() -> None:
        server_tasks = [scheduler.spawn(server(q)) for q in queues]
        client_tasks = [scheduler.spawn(client(i)) for i in range(clients)]
        await scheduler.gather(client_tasks)
        for queue in queues:
            queue.put_nowait((None, None))
        await scheduler.gather(server_tasks)

    if record_pending is not None:

        async def sampler() -> None:
            while True:
                await scheduler.sleep(_SAMPLE_INTERVAL)
                record_pending(scheduler.pending_events)

        scheduler.spawn(sampler())

    scheduler.run_until_complete(main())
    return scheduler


def _run_fig6_shape_workload(
    sensors: int, waves: int, record_pending=None
) -> Scheduler:
    """Fig6's event shape distilled to kernel primitives.

    Structure mirrors the paper's ingestion benchmark: every sensor, once
    per 1 s wave and after a per-sensor jitter, hands a 20-point batch to
    each of its two channel queues; the channel server fans the batch out
    into per-point service timers and acknowledges; the sensor awaits both
    acks under a generous SLO deadline.  The deadline never expires, which
    is exactly the traffic that exposed the timeout-timer leak: a kernel
    that fails to detach lapsed deadline timers accumulates two dead heap
    entries per sensor-wave here and its dispatch cost climbs wave over
    wave, so this series doubles as the leak's performance regression test
    (``pending_events_peak`` is its deterministic alarm).
    """
    scheduler = Scheduler()
    channels = [Queue(scheduler) for _ in range(sensors * 2)]

    async def channel_server(queue: Queue) -> None:
        sleep = scheduler.sleep
        gather = scheduler.gather
        get = queue.get
        while True:
            batch = await get()
            if batch is None:
                return
            points, ack = batch
            # Per-point ingestion service, fanned out like the paper's
            # 20-sample insert.
            await gather([sleep(0.0004 + 0.00005 * j) for j in range(points)])
            ack.set_result(points)

    servers = [scheduler.spawn(channel_server(q)) for q in channels]

    async def sensor(index: int) -> None:
        sleep = scheduler.sleep
        gather = scheduler.gather
        timeout = scheduler.timeout
        queue_a = channels[2 * index]
        queue_b = channels[2 * index + 1]
        jitter = 0.00007 * (index % 200)
        for _ in range(waves):
            wave_start = scheduler.now
            await sleep(jitter)
            ack_a: Future[int] = Future()
            ack_b: Future[int] = Future()
            queue_a.put_nowait((20, ack_a))
            queue_b.put_nowait((20, ack_b))
            # Generous ingest SLO: the acks always beat it, so a leak-free
            # kernel cancels both timers; a leaky one hoards them.
            await gather([timeout(ack_a, 50.0), timeout(ack_b, 50.0)])
            next_wave = wave_start + 1.0
            if scheduler.now < next_wave:
                await sleep(next_wave - scheduler.now)

    async def main() -> None:
        fleet = [scheduler.spawn(sensor(i)) for i in range(sensors)]
        await scheduler.gather(fleet)
        for queue in channels:
            queue.put_nowait(None)
        await scheduler.gather(servers)

    if record_pending is not None:

        async def sampler() -> None:
            while True:
                await scheduler.sleep(_SAMPLE_INTERVAL)
                record_pending(scheduler.pending_events)

        scheduler.spawn(sampler())

    scheduler.run_until_complete(main())
    return scheduler


def _run_fig6_workload(
    sensors: int, duration: float, chaos: bool, record_pending=None
) -> Scheduler:
    """One full-stack fig6 ingest run; returns its scheduler for event counts."""
    from ..net.faults import NetworkFaultInjector
    from ..runtime.resilience import RetryPolicy
    from .experiments import M5_LARGE
    from .workload import LoadConfig, build_deployment, execute, provision

    scheduler = Scheduler()
    deployment = build_deployment(
        [M5_LARGE], seed=7, scheduler=scheduler, fast_path=True
    )
    if record_pending is not None:

        async def sampler() -> None:
            while True:
                await scheduler.sleep(_SAMPLE_INTERVAL)
                record_pending(scheduler.pending_events)

        scheduler.spawn(sampler())
    scheduler.run_until_complete(provision(deployment, sensors))
    if not chaos:
        execute(deployment, LoadConfig(sensors=sensors, duration=duration))
        return scheduler

    # Chaos shape: every ask of the load phase carries a deadline, transient
    # failures retry, and ~1% of envelopes are lost so some deadlines
    # actually fire — heavy deadline/timer traffic through the real runtime.
    # Applied after provisioning so setup runs clean; the driver below
    # tolerates the deadline misses the stock run_load would crash on.
    from ..errors import DeadlineExceededError
    from .workload import channel_id_for, synth_value

    deployment.runtime.config.default_call_deadline = 0.5
    deployment.runtime.config.default_retry_policy = RetryPolicy(
        max_attempts=3, base_delay=0.02, max_delay=0.1
    )
    deployment.runtime.network.inject_faults(
        NetworkFaultInjector(
            deployment.rng.stream("speed-chaos"), loss_rate=0.01
        )
    )
    platform = deployment.platform
    sensor_ids = deployment.report.sensor_ids
    stop = scheduler.now + duration

    async def one_insert(sensor_id: str, wave_time: float) -> None:
        batches = {
            channel_id_for(sensor_id, channel): [
                (wave_time, synth_value(channel, wave_time))
            ]
            for channel in (0, 1)
        }
        try:
            await platform.ingest(sensor_id, batches)
        except DeadlineExceededError:
            pass

    async def fleet() -> None:
        while scheduler.now < stop:
            wave_time = scheduler.now
            waves = [
                scheduler.spawn(one_insert(sensor_id, wave_time))
                for sensor_id in sensor_ids
            ]
            await scheduler.gather(waves)
            next_wave = wave_time + 1.0
            if scheduler.now < next_wave:
                await scheduler.sleep(next_wave - scheduler.now)

    scheduler.run_until_complete(fleet())
    return scheduler


class _SeriesMeter:
    """Accumulates one workload's timing reps and its allocation pass.

    The timing passes run with gc collected up front and tracemalloc off;
    the allocation pass runs once more under tracemalloc (its overhead must
    not pollute the timing).  The runner must be deterministic: events are
    asserted identical across passes.

    Each timing rep is *paired* with a calibration slice taken immediately
    before it, and the gated ``events_per_mop`` is the best paired ratio.
    Host noise (CPU steal on shared runners) comes in windows lasting whole
    measurements; a pairing inside one window hits both the calibration
    loop and the workload, so the ratio stays stable where a single
    up-front calibration would mis-normalize every series measured later.
    """

    def __init__(self, runner) -> None:
        self.runner = runner
        self.best_wall = float("inf")
        self.best_per_mop = 0.0
        self.events = 0
        self.virtual = 0.0
        self.pending_peak = 0
        self.alloc_peak = 0

    def _note_pending(self, value: int) -> None:
        if value > self.pending_peak:
            self.pending_peak = value

    def timing_rep(self) -> None:
        gc.collect()
        mops = _calibration_slice()
        started = time.perf_counter()
        scheduler = self.runner(self._note_pending)
        wall = time.perf_counter() - started
        if self.events:
            assert (
                scheduler.events_processed == self.events
            ), "speed workload not deterministic"
        self.events = scheduler.events_processed
        self.virtual = scheduler.now
        self.best_wall = min(self.best_wall, wall)
        per_mop = self.events / wall / (mops * 1e6)
        if per_mop > self.best_per_mop:
            self.best_per_mop = per_mop

    def alloc_pass(self) -> None:
        gc.collect()
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        scheduler = self.runner(self._note_pending)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert (
            scheduler.events_processed == self.events
        ), "speed workload not deterministic"
        self.alloc_peak = max(0, peak - baseline)

    def row(self) -> dict:
        return {
            "events": self.events,
            "virtual_seconds": round(self.virtual, 6),
            "wall_seconds": round(self.best_wall, 4),
            "events_per_sec": round(self.events / self.best_wall, 1),
            "events_per_mop": round(self.best_per_mop, 4),
            "pending_events_peak": self.pending_peak,
            "alloc_peak_kb": round(self.alloc_peak / 1024, 1),
            "alloc_peak_bytes_per_event": round(
                self.alloc_peak / max(1, self.events), 1
            ),
        }


def build_speed(smoke: bool = False) -> dict:
    """Build the BENCH_speed payload (one mode)."""
    if smoke:
        plans = {
            "kernel": lambda rec: _run_kernel_workload(30, 20, rec),
            "ask": lambda rec: _run_ask_workload(40, 150, rec),
            "fig6": lambda rec: _run_fig6_shape_workload(120, 3, rec),
            "runtime": lambda rec: _run_fig6_workload(300, 3.0, False, rec),
            "chaos": lambda rec: _run_fig6_workload(200, 3.0, True, rec),
        }
    else:
        plans = {
            "kernel": lambda rec: _run_kernel_workload(60, 55, rec),
            "ask": lambda rec: _run_ask_workload(80, 500, rec),
            "fig6": lambda rec: _run_fig6_shape_workload(400, 8, rec),
            "runtime": lambda rec: _run_fig6_workload(400, 4.0, False, rec),
            "chaos": lambda rec: _run_fig6_workload(240, 4.0, True, rec),
        }
    calibration = calibrate_host()
    meters = {name: _SeriesMeter(runner) for name, runner in plans.items()}
    # Interleave timing reps round-robin: rep N of every series runs before
    # rep N+1 of any, so one series' reps are spread across the whole sweep
    # and a single host-noise window cannot depress all of them at once.
    for _ in range(3):
        for meter in meters.values():
            meter.timing_rep()
    for meter in meters.values():
        meter.alloc_pass()
    series = {name: meter.row() for name, meter in meters.items()}
    return {
        "bench": "speed",
        "mode": "smoke" if smoke else "full",
        "title": "Host events/sec and allocation pressure (kernel raw speed)",
        "calibration_mops": round(calibration, 2),
        "series": series,
        "summary": {
            "kernel_events_per_sec": series["kernel"]["events_per_sec"],
            "ask_events_per_sec": series["ask"]["events_per_sec"],
            "fig6_events_per_sec": series["fig6"]["events_per_sec"],
            "runtime_events_per_sec": series["runtime"]["events_per_sec"],
            "chaos_events_per_sec": series["chaos"]["events_per_sec"],
            "kernel_events_per_mop": series["kernel"]["events_per_mop"],
            "ask_alloc_peak_bytes_per_event": series["ask"][
                "alloc_peak_bytes_per_event"
            ],
        },
    }


def gate_speed(fresh: dict, base_payload: dict) -> list[str]:
    """Speed-specific perf gate; returns human-readable failures.

    Compares each workload of the fresh run against the committed payload:

    - normalized throughput (events per mega-op of host calibration) must
      not drop more than ``EVENTS_PER_MOP_DROP_TOLERANCE`` (kernel-level
      series) or ``FULL_STACK_DROP_TOLERANCE`` (runtime/chaos);
    - the live-heap high-water mark per event must not rise more than
      ``ALLOC_RISE_TOLERANCE``;
    - the pending-events peak (deterministic) must not rise more than
      ``PENDING_PEAK_RISE_TOLERANCE`` — the timer-leak alarm.
    """
    failures: list[str] = []
    base_series = base_payload.get("series", {})
    for name, row in fresh.get("series", {}).items():
        base = base_series.get(name)
        if base is None:
            continue
        drop_tolerance = (
            FULL_STACK_DROP_TOLERANCE
            if name in _FULL_STACK_SERIES
            else EVENTS_PER_MOP_DROP_TOLERANCE
        )
        floor = base["events_per_mop"] * (1 - drop_tolerance)
        if row["events_per_mop"] < floor:
            failures.append(
                f"speed/{name}: {row['events_per_mop']:.4f} events/Mop fell "
                f"below gate {floor:.4f} (baseline {base['events_per_mop']:.4f}, "
                f"raw {row['events_per_sec']:.0f} ev/s vs baseline "
                f"{base['events_per_sec']:.0f})"
            )
        ceiling = base["alloc_peak_bytes_per_event"] * (1 + ALLOC_RISE_TOLERANCE)
        if row["alloc_peak_bytes_per_event"] > ceiling:
            failures.append(
                f"speed/{name}: alloc peak {row['alloc_peak_bytes_per_event']:.1f} "
                f"B/event rose above gate {ceiling:.1f} "
                f"(baseline {base['alloc_peak_bytes_per_event']:.1f})"
            )
        pending_ceiling = base["pending_events_peak"] * (
            1 + PENDING_PEAK_RISE_TOLERANCE
        )
        if row["pending_events_peak"] > pending_ceiling:
            failures.append(
                f"speed/{name}: pending-events peak {row['pending_events_peak']} "
                f"rose above gate {pending_ceiling:.0f} (baseline "
                f"{base['pending_events_peak']} — timer leak?)"
            )
    return failures
