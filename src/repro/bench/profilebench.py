"""Profiled demonstration run: who ate the cluster, and was it healthy.

``python -m repro.bench profile`` provisions a small deployment with the
continuous profiler on, drives the paper's fig6-style workload (sensor
insert waves plus user queries) with the SLO health monitor and the
self-hosted telemetry pump running, then renders:

- the flame-style per-(actor class, method) CPU attribution report with
  hot activations and mailbox backlogs (:mod:`repro.obs.profile`);
- the health monitor's rule states and alert history
  (:mod:`repro.obs.health`);
- a summary of the telemetry actors' self-ingested history, including a
  range query answered by an ordinary actor ask
  (:mod:`repro.obs.telemetry`);
- the metrics appendix.

``--smoke`` shrinks the scenario and verifies the profiling invariants —
attribution coverage ≥ 95% of the kernel CPU ledger, health rules actually
evaluated, telemetry history matching what the pump shipped — making it a
cheap CI gate for the profiling/health/telemetry layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.health import HealthMonitor, default_slo_rules
from ..obs.profile import ProfileReport, build_report
from ..obs.render import render_health, render_profile
from ..obs.telemetry import TelemetryPump
from .instances import M5_LARGE
from .report import format_metrics_appendix
from .workload import LoadConfig, build_deployment, provision, run_load

COVERAGE_FLOOR = 0.95  # acceptance criterion: ≥95% of kernel CPU attributed


@dataclass
class ProfileScenario:
    """A completed profiled run, ready to render or assert against."""

    sensors: int
    duration: float
    report: ProfileReport
    monitor: HealthMonitor
    pump: TelemetryPump
    last_shipment: dict[str, dict[str, float]]
    monitor_history: dict[str, list[tuple[float, float]]]
    aggregator_series: list[str]
    aggregator_info: dict
    metrics: dict


def run_scenario(
    sensors: int = 8,
    seed: int = 2019,
    duration: float = 4.0,
    health_interval: float = 0.5,
    telemetry_interval: float = 1.0,
) -> ProfileScenario:
    """Provision, then drive one profiled fig6-style run with health +
    telemetry live, and collect everything the report needs."""
    deployment = build_deployment([M5_LARGE], seed=seed, profiling=True)
    scheduler = deployment.scheduler
    runtime = deployment.runtime
    scheduler.run_until_complete(
        provision(deployment, sensors, sensors_per_org=sensors)
    )
    monitor = HealthMonitor(runtime.metrics, default_slo_rules())
    monitor.attach(scheduler, interval=health_interval)
    pump = TelemetryPump(runtime, interval=telemetry_interval, monitor=monitor)
    pump.start()
    run_load_result = scheduler.run_until_complete(
        run_load(
            deployment,
            LoadConfig(
                sensors=sensors,
                duration=duration,
                sensors_per_org=sensors,
                with_queries=True,
            ),
        )
    )

    async def final_round() -> tuple[dict, dict, list, dict]:
        # One last pump tick whose return value we keep, so the smoke check
        # can compare actor-stored history against exactly what was shipped.
        shipment = await pump.tick()
        history: dict[str, list[tuple[float, float]]] = {}
        now = scheduler.now
        for silo in runtime.silos():
            ref = runtime.ref("SiloMonitor", silo.silo_id)
            names = await ref.series_names()
            if names:
                history[silo.silo_id] = await ref.query_range(
                    names[0], 0.0, now + 1.0
                )
        aggregator = runtime.ref("TelemetryAggregator", pump.aggregator_id)
        series = await aggregator.metric_names()
        info = await aggregator.describe()
        return shipment, history, series, info

    shipment, history, series, info = scheduler.run_until_complete(final_round())
    pump.stop()
    monitor.detach()
    report = build_report(runtime.profiler, runtime.silos())
    return ProfileScenario(
        sensors=sensors,
        duration=duration,
        report=report,
        monitor=monitor,
        pump=pump,
        last_shipment=shipment,
        monitor_history=history,
        aggregator_series=series,
        aggregator_info=info,
        metrics=run_load_result.metrics,
    )


def render_telemetry_section(scenario: ProfileScenario) -> str:
    """Summarize the self-hosted telemetry history (queried via asks)."""
    info = scenario.aggregator_info
    lines = [
        "self-hosted telemetry (queried through actor asks):",
        f"  aggregator {info.get('aggregator_id')}: "
        f"{info.get('series')} series, {info.get('samples')} samples, "
        f"{info.get('alerts')} alert transitions "
        f"(bucket {info.get('bucket_seconds')}s)",
    ]
    for silo_id, points in sorted(scenario.monitor_history.items()):
        lines.append(
            f"  SiloMonitor/{silo_id}: first series has {len(points)} samples"
        )
    preview = scenario.aggregator_series[:6]
    if preview:
        lines.append("  cluster series: " + ", ".join(preview) + (
            f", … {len(scenario.aggregator_series) - len(preview)} more"
            if len(scenario.aggregator_series) > len(preview) else ""
        ))
    return "\n".join(lines)


def check_invariants(scenario: ProfileScenario) -> list[str]:
    """The smoke-test assertions; returns human-readable violations."""
    problems: list[str] = []
    report = scenario.report
    if report.turns <= 0:
        problems.append("profiler recorded no turns")
    if report.total_cpu_seconds <= 0:
        problems.append("kernel CPU ledger is empty — nothing ran?")
    coverage = report.coverage
    if coverage < COVERAGE_FLOOR:
        problems.append(
            f"attribution coverage {coverage * 100:.2f}% is below the "
            f"{COVERAGE_FLOOR * 100:.0f}% floor"
        )
    if coverage > 1.0 + 1e-6:
        problems.append(
            f"attribution coverage {coverage * 100:.2f}% exceeds 100% "
            "with no silo churn — double counting?"
        )
    for row in report.rows:
        for field in ("cpu_service", "cpu_wait", "queue_wait", "storage_wait"):
            if getattr(row, field) < -1e-9:
                problems.append(f"method row {row.label}: negative {field}")
    if not any("SensorChannel" in row.label or "Sensor" in row.label
               for row in report.rows):
        problems.append("no sensor actor appears in the method rows")
    if scenario.monitor.evaluations <= 0:
        problems.append("health monitor never evaluated")
    if scenario.pump.ticks <= 0:
        problems.append("telemetry pump never ticked")
    if not scenario.aggregator_series:
        problems.append("telemetry aggregator holds no series")
    # The actor-stored history must end with exactly what the pump last
    # shipped: telemetry readable through asks is the dogfooding claim.
    for silo_id, values in scenario.last_shipment.items():
        if silo_id == "cluster" or not values:
            continue
        points = scenario.monitor_history.get(silo_id)
        if not points:
            problems.append(f"SiloMonitor/{silo_id} answered an empty range")
    return problems


def run_profile_bench(
    smoke: bool = False, sensors: int | None = None
) -> str:
    """The ``profile`` subcommand: render (and in smoke mode verify) a run."""
    if sensors is None:
        sensors = 6 if smoke else 12
    duration = 3.0 if smoke else 6.0
    scenario = run_scenario(sensors=sensors, duration=duration)
    sections = [
        f"profile: continuous profiling of a fig6-style run "
        f"({scenario.sensors} sensors, {scenario.duration:.0f}s, "
        f"queries on, health + telemetry live)",
        "",
        render_profile(scenario.report),
        "",
        render_health(scenario.monitor),
        "",
        render_telemetry_section(scenario),
        format_metrics_appendix(scenario.metrics),
    ]
    if smoke:
        problems = check_invariants(scenario)
        if problems:
            sections.append("\nSMOKE FAILED:")
            sections.extend(f"  {p}" for p in problems)
            raise SystemExit("\n".join(sections))
        sections.append(
            "\nSMOKE OK: attribution covers the kernel ledger, health "
            "evaluated, telemetry queryable"
        )
    return "\n".join(sections)
