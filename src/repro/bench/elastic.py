"""The elasticity bench: a diurnal ramp served by an autoscaled cluster.

The paper's evaluation provisions each cluster *before* the run; this bench
measures what the elasticity subsystem (:mod:`repro.elastic`) buys when load
follows a day: quiet night, morning ramp, commute peak, evening taper, quiet
night.  Two clusters serve the identical workload:

- **autoscaled** — starts at one m5.large; an :class:`~repro.elastic.Autoscaler`
  adds silos from a pool when the mailbox-backlog SLO fires and gracefully
  drains idle silos at night, while a :class:`~repro.elastic.Rebalancer`
  migrates hot actors onto fresh capacity (new silos start empty — without
  migration they would idle while the original silo stays saturated);
- **static** — the peak-provisioned negative control: the full pool runs
  for the whole day, the classic over-provisioning cost.

Reported per variant: insert throughput and latency percentiles, migrations
performed, messages lost (**must be 0** — migration is lossless), p99 inside
migration-wave windows versus outside them, and silo-seconds (the simulated
bill).  The committed ``BENCH_elastic.json`` gates CI::

    python -m repro.bench elastic --smoke --check-baseline BENCH_elastic.json

:func:`build_elastic` additionally *asserts* the acceptance invariants
(zero lost, >=30% silo-seconds reclaimed, wave p99 <= 2x steady p99) and
raises on violation, so a regression fails the gate even before the
numeric comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..elastic import (
    Autoscaler,
    AutoscalerConfig,
    Rebalancer,
    RebalancerConfig,
    SiloSpec,
)
from ..obs.health import HealthMonitor, default_slo_rules
from ..runtime.resilience import RetryPolicy
from ..shm.platform import channel_id_for
from .instances import M5_LARGE
from .metrics import LatencyRecorder, percentile
from .workload import build_deployment, synth_value

#: Cluster-wide resilience for the bench: generous deadline, light retries.
#: Migration never needs them (raced messages wait at the drain barrier and
#: are forwarded), so with no fault injection every insert acks exactly once;
#: the policy is the safety net that turns any unexpected loss into a visible
#: error instead of a hang.
ELASTIC_RETRY_POLICY = RetryPolicy(
    max_attempts=6,
    base_delay=0.1,
    multiplier=2.0,
    max_delay=1.0,
    jitter=0.2,
    attempt_timeout=2.0,
)
ELASTIC_CALL_DEADLINE = 15.0

#: Mailbox depth that counts as "the cluster is falling behind".  At the
#: calibrated ~1.11 core-ms per insert, a 2-core silo more than ~15% over
#: saturation grows mailboxes past this within a second or two.
SCALE_UP_BACKLOG = 60.0

#: Half-width context before / after each migration for wave-p99 windows.
WAVE_BEFORE = 0.25
WAVE_AFTER = 1.0


@dataclass(frozen=True)
class ElasticConfig:
    """One diurnal run's parameters."""

    sensors: int = 48
    sensors_per_org: int = 16
    #: (duration_seconds, fraction_of_peak_rate) — the diurnal schedule.
    #: The ramp is graded so the CPU trigger adds capacity *between* steps,
    #: before any step saturates the current cluster — the whole point of
    #: preemptive autoscaling is that users never see the queueing knee.
    phases: tuple[tuple[float, float], ...] = (
        (8.0, 0.15),   # night
        (6.0, 0.40),   # early morning
        (6.0, 0.60),   # morning ramp (first scale-up fires here)
        (10.0, 1.0),   # commute peak (second scale-up)
        (6.0, 0.40),   # evening taper (drains begin)
        (12.0, 0.15),  # night again (back to one silo)
    )
    #: Per-sensor inserts/second at fraction 1.0.  48 sensors x 90 req/s =
    #: 4320 req/s at peak, ~2.9 core-s/s of measured fast-path demand —
    #: far past one m5.large (~2 core-s/s), comfortably inside three.
    peak_rate: float = 90.0
    points_per_channel: int = 2
    pool_size: int = 2
    seed: int = 17

    @property
    def duration(self) -> float:
        return sum(duration for duration, _ in self.phases)

    def rate_at(self, offset: float) -> float:
        """Per-sensor inserts/second at ``offset`` seconds into the day."""
        for duration, fraction in self.phases:
            if offset < duration:
                return self.peak_rate * fraction
            offset -= duration
        return self.peak_rate * self.phases[-1][1]


@dataclass
class VariantResult:
    """One cluster's day: load measurements plus elasticity accounting."""

    label: str
    throughput_rps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    steady_p99_ms: float = 0.0
    wave_p99_ms: float = 0.0
    wave_samples: int = 0
    attempted: int = 0
    acked: int = 0
    lost: int = 0
    points_sent: int = 0
    points_acked: int = 0
    migrations: int = 0
    migration_failures: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    silos_drained: int = 0
    silo_seconds: float = 0.0
    peak_silos: int = 0
    scale_events: list = field(default_factory=list)

    def as_row(self) -> dict:
        return {
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
            "steady_p99_ms": round(self.steady_p99_ms, 2),
            "wave_p99_ms": round(self.wave_p99_ms, 2),
            "wave_samples": self.wave_samples,
            "attempted": self.attempted,
            "acked": self.acked,
            "lost": self.lost,
            "points_sent": self.points_sent,
            "points_acked": self.points_acked,
            "migrations": self.migrations,
            "migration_failures": self.migration_failures,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "silos_drained": self.silos_drained,
            "silo_seconds": round(self.silo_seconds, 1),
            "peak_silos": self.peak_silos,
            "scale_events": self.scale_events,
        }


def _p99_ms(latencies: list[float]) -> float:
    if not latencies:
        return 0.0
    return percentile(sorted(latencies), 0.99) * 1000


def _run_variant(
    config: ElasticConfig, autoscaled: bool, seed: int
) -> VariantResult:
    """Serve one diurnal day on an autoscaled or static cluster."""
    n_static = 1 + config.pool_size
    silos = [M5_LARGE] if autoscaled else [M5_LARGE] * n_static
    deployment = build_deployment(
        silos,
        seed=seed,
        profiling=autoscaled,  # rebalancer candidate ranking
        placement_fallback="power_of_two",
    )
    runtime = deployment.runtime
    scheduler = deployment.scheduler
    runtime.config.default_call_deadline = ELASTIC_CALL_DEADLINE
    runtime.config.default_retry_policy = ELASTIC_RETRY_POLICY

    # Provision the SHM structure directly — *without* the figure runs'
    # org-to-silo pinning: placement must stay free here, or the rebalancer
    # and drain migrations would have nothing movable (pins are immovable
    # by design).
    report = scheduler.run_until_complete(
        deployment.platform.provision(
            config.sensors, sensors_per_org=config.sensors_per_org
        )
    )
    for silo in runtime.silos():
        silo.cpu.reset_accounting()
    runtime.profiler.clear()

    rebalancer = autoscaler = monitor = None
    if autoscaled:
        monitor = HealthMonitor(
            runtime.metrics,
            default_slo_rules(max_backlog=SCALE_UP_BACKLOG),
        )
        monitor.attach(scheduler, interval=0.5)
        rebalancer = Rebalancer(
            runtime,
            RebalancerConfig(
                interval=0.5,
                imbalance_threshold=1.6,
                hysteresis_cycles=2,
                migration_budget=16,
            ),
        )
        rebalancer.attach(scheduler)
        pool = [SiloSpec(f"scale-{i}", cores=M5_LARGE.cores, speed=M5_LARGE.speed,
                         instance_type=M5_LARGE.name)
                for i in range(config.pool_size)]
        autoscaler = Autoscaler(
            runtime,
            monitor,
            pool,
            AutoscalerConfig(
                interval=0.5,
                min_silos=1,
                max_silos=n_static,
                scale_up_rules=("mailbox-backlog",),
                scale_up_utilization=0.70,
                scale_up_cycles=2,
                scale_down_utilization=0.30,
                scale_down_cycles=4,
                cooldown_seconds=3.0,
            ),
        )
        autoscaler.attach(scheduler)

    recorder = LatencyRecorder()
    result = VariantResult(label="autoscaled" if autoscaled else "static")
    sensor_ids = report.sensor_ids
    start = scheduler.now
    stop = start + config.duration
    points_per_insert = 2 * config.points_per_channel

    async def sensor_loop(sensor_id: str) -> None:
        while scheduler.now < stop:
            now = scheduler.now
            rate = config.rate_at(now - start)
            interval = 1.0 / rate
            batches = {
                channel_id_for(sensor_id, channel): [
                    (now + i * 0.01, synth_value(channel, now + i * 0.01))
                    for i in range(config.points_per_channel)
                ]
                for channel in (0, 1)
            }
            result.attempted += 1
            result.points_sent += points_per_insert
            try:
                accepted = await deployment.platform.ingest(sensor_id, batches)
            except Exception:
                result.lost += 1
            else:
                result.acked += 1
                result.points_acked += int(accepted)
                recorder.record("insert", now, scheduler.now - now)
            next_at = now + interval
            if scheduler.now < next_at:
                await scheduler.sleep(next_at - scheduler.now)

    peak_silos = [len([s for s in runtime.silos() if not s.crashed and not s.stopping])]

    async def watch_peak() -> None:
        while scheduler.now < stop:
            await scheduler.sleep(1.0)
            live = len(
                [s for s in runtime.silos() if not s.crashed and not s.stopping]
            )
            peak_silos[0] = max(peak_silos[0], live)

    async def day() -> None:
        tasks = [
            scheduler.spawn(sensor_loop(sensor_id), name=f"sensor:{sensor_id}")
            for sensor_id in sensor_ids
        ]
        tasks.append(scheduler.spawn(watch_peak(), name="peak-watch"))
        await scheduler.gather(tasks)

    scheduler.run_until_complete(day())
    if autoscaled:
        rebalancer.detach()
        autoscaler.detach()
        monitor.detach()

    # -- reduce ----------------------------------------------------------------
    records = recorder.records("insert")
    latencies = [r.latency for r in records]
    result.throughput_rps = result.acked / config.duration
    if latencies:
        ordered = sorted(latencies)
        result.p50_ms = percentile(ordered, 0.50) * 1000
        result.p99_ms = percentile(ordered, 0.99) * 1000
    # Migration-wave windows: context around every rebalancer migration and
    # every scaling action (scale-down windows cover the drain's migrations).
    wave_times: list[float] = []
    if rebalancer is not None:
        wave_times.extend(event.at for event in rebalancer.events)
    if autoscaler is not None:
        wave_times.extend(event.at for event in autoscaler.events)
        result.scale_ups = autoscaler.scale_ups
        result.scale_downs = autoscaler.scale_downs
        result.silo_seconds = autoscaler.silo_seconds
        result.scale_events = [
            {
                "at": round(event.at, 2),
                "direction": event.direction,
                "silo": event.silo_id,
                "reason": event.reason,
                "migrated": event.migrated,
            }
            for event in autoscaler.events
        ]
    else:
        result.silo_seconds = n_static * config.duration
    windows = [(t - WAVE_BEFORE, t + WAVE_AFTER) for t in sorted(wave_times)]

    def in_wave(at: float) -> bool:
        return any(lo <= at <= hi for lo, hi in windows)

    wave = [r.latency for r in records if in_wave(r.completed_at)]
    steady = [r.latency for r in records if not in_wave(r.completed_at)]
    result.wave_samples = len(wave)
    result.wave_p99_ms = _p99_ms(wave)
    result.steady_p99_ms = _p99_ms(steady)
    result.migrations = runtime.stats.migrations
    result.migration_failures = runtime.stats.migration_failures
    result.silos_drained = runtime.stats.silos_drained
    result.peak_silos = peak_silos[0]
    return result


def _check_invariants(
    auto: VariantResult, static: VariantResult, seed: int
) -> dict:
    """The acceptance invariants; raises on violation, returns the summary."""
    problems: list[str] = []
    for variant in (auto, static):
        if variant.lost != 0:
            problems.append(f"{variant.label}: lost {variant.lost} messages")
        # Every ack must carry the full per-insert point count; a mismatch
        # means a channel dropped (or duplicated) points in flight.
        expected = variant.acked * (
            variant.points_sent // max(1, variant.attempted)
        )
        if variant.points_acked != expected:
            problems.append(
                f"{variant.label}: acked points {variant.points_acked} "
                f"!= expected {expected}"
            )
    savings = 1.0 - auto.silo_seconds / max(1e-9, static.silo_seconds)
    if savings < 0.30:
        problems.append(
            f"silo-seconds savings {savings:.0%} below the 30% floor "
            f"({auto.silo_seconds:.0f} vs {static.silo_seconds:.0f})"
        )
    if auto.migrations < 1:
        problems.append("no migrations performed — elasticity never engaged")
    if auto.scale_ups < 1 or auto.scale_downs < 1:
        problems.append(
            f"autoscaler did not ramp both ways "
            f"(ups={auto.scale_ups}, downs={auto.scale_downs})"
        )
    if auto.wave_samples and auto.steady_p99_ms > 0:
        inflation = auto.wave_p99_ms / auto.steady_p99_ms
        if inflation > 2.0:
            problems.append(
                f"migration-wave p99 {auto.wave_p99_ms:.1f} ms is "
                f"{inflation:.2f}x steady-state {auto.steady_p99_ms:.1f} ms "
                f"(bound: 2x)"
            )
    else:
        inflation = 1.0
    if problems:
        raise RuntimeError(
            f"elastic bench invariants violated (seed {seed}): "
            + "; ".join(problems)
        )
    return {
        "seed": seed,
        "silo_seconds_savings": round(savings, 3),
        "wave_p99_inflation": round(inflation, 3),
        "migrations": auto.migrations,
        "scale_ups": auto.scale_ups,
        "scale_downs": auto.scale_downs,
        "lost": auto.lost + static.lost,
    }


def run_elastic_experiment(
    config: ElasticConfig | None = None, seed: int | None = None
) -> tuple[VariantResult, VariantResult, dict]:
    """One diurnal day, autoscaled vs static; returns (auto, static, checks)."""
    config = config or ElasticConfig()
    seed = config.seed if seed is None else seed
    auto = _run_variant(config, autoscaled=True, seed=seed)
    static = _run_variant(config, autoscaled=False, seed=seed)
    checks = _check_invariants(auto, static, seed)
    return auto, static, checks


SMOKE_CONFIG = ElasticConfig(
    phases=(
        (5.0, 0.15),
        (4.0, 0.40),
        (4.0, 0.60),
        (6.0, 1.0),
        (4.0, 0.40),
        (8.0, 0.15),
    ),
)

#: Full mode replays the day under a second seed to demonstrate the
#: "deterministic across seeds" acceptance criterion: the invariants hold
#: for any seed, not one lucky draw.
EXTRA_SEEDS = (23,)


def build_elastic(smoke: bool = False) -> dict:
    """The BENCH payload: autoscaled vs static, invariants asserted."""
    config = SMOKE_CONFIG if smoke else ElasticConfig()
    auto, static, checks = run_elastic_experiment(config)
    all_checks = [checks]
    if not smoke:
        for seed in EXTRA_SEEDS:
            _, _, extra = run_elastic_experiment(config, seed=seed)
            all_checks.append(extra)
    return {
        "bench": "elastic",
        "mode": "smoke" if smoke else "full",
        "title": (
            "Diurnal ramp: autoscaled cluster vs static peak provisioning"
        ),
        "series": {"autoscaled": auto.as_row(), "static": static.as_row()},
        "summary": {
            "silo_seconds_savings": checks["silo_seconds_savings"],
            "wave_p99_inflation": checks["wave_p99_inflation"],
            "migrations": auto.migrations,
            "scale_ups": auto.scale_ups,
            "scale_downs": auto.scale_downs,
            "messages_lost": auto.lost + static.lost,
            "seeds_checked": [row["seed"] for row in all_checks],
        },
        "checks": all_checks,
    }
