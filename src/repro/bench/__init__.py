"""Benchmark harness: instances, calibration, workload, metrics, experiments."""

from .calibration import (
    average_insert_cost,
    calibrated_config,
    saturation_request_rate,
    shm_method_costs,
)
from .chaos import (
    ChaosConfig,
    ChaosResult,
    format_chaos_report,
    run_chaos_experiment,
    run_chaos_recovery,
)
from .experiments import (
    AblationResult,
    FigPoint,
    FigResult,
    run_cattle_scaling,
    run_constraints_ablation,
    run_durability_ablation,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_granularity_ablation,
    run_placement_ablation,
)
from .instances import INSTANCE_TYPES, M5_2XLARGE, M5_LARGE, M5_XLARGE, InstanceType, instance
from .metrics import LatencyRecorder, Record, Summary, WindowStat, percentile
from .report import format_result
from .workload import (
    Deployment,
    LoadConfig,
    RunResult,
    build_deployment,
    execute,
    provision,
    run_load,
)

__all__ = [
    "AblationResult",
    "ChaosConfig",
    "ChaosResult",
    "Deployment",
    "FigPoint",
    "FigResult",
    "INSTANCE_TYPES",
    "InstanceType",
    "LatencyRecorder",
    "LoadConfig",
    "M5_2XLARGE",
    "M5_LARGE",
    "M5_XLARGE",
    "Record",
    "RunResult",
    "Summary",
    "WindowStat",
    "average_insert_cost",
    "build_deployment",
    "calibrated_config",
    "execute",
    "format_chaos_report",
    "format_result",
    "instance",
    "percentile",
    "provision",
    "run_cattle_scaling",
    "run_chaos_experiment",
    "run_chaos_recovery",
    "run_constraints_ablation",
    "run_durability_ablation",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_granularity_ablation",
    "run_load",
    "run_placement_ablation",
    "saturation_request_rate",
    "shm_method_costs",
]
