"""Command-line entry point: regenerate any figure or ablation.

Usage::

    python -m repro.bench fig6            # one experiment
    python -m repro.bench all             # everything (several minutes)
    python -m repro.bench fig7 --quick    # scaled-down sweep
    python -m repro.bench trace           # traced run: causal trees
    python -m repro.bench trace --smoke   # + invariant checks (CI gate)
    python -m repro.bench profile         # profiled run: CPU attribution,
                                          # health rules, telemetry actors
    python -m repro.bench profile --smoke # + profiling-invariant checks
    python -m repro.bench incident        # recorded netsplit: postmortem dump
    python -m repro.bench incident --smoke# + flight-recorder invariant checks

Perf baselines (fig6 / fig7 / micro)::

    python -m repro.bench fig6 --write-baseline BENCH_fig6.json
                                          # run full + smoke sweeps, commit
    python -m repro.bench fig6 --smoke --check-baseline BENCH_fig6.json
                                          # CI perf-regression gate
    python -m repro.bench micro --smoke --json fresh.json
                                          # write the fresh payload only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import experiments
from .baseline import (
    BUILDERS,
    check_against_baseline,
    load_baseline,
    write_baseline,
)
from .chaos import run_chaos_experiment
from .report import format_result

QUICK = {
    "chaos": dict(sensors=100, duration=12.0, crash_at=4.0, lease_seconds=1.5),
    "fig6": dict(sensor_counts=(600, 1200, 1800, 2400), duration=6.0),
    "fig7": dict(scale_factors=(1, 2, 3), duration=4.0),
    "fig8": dict(sensor_counts=(500, 2000), duration=6.0),
    "fig9": dict(sensor_counts=(500, 2000), duration=6.0),
    "placement": dict(sensors=400, duration=4.0),
    "durability": dict(sensors=30, duration=4.0),
    "granularity": dict(cows=30),
    "constraints": dict(transfers=60),
    "cattle": dict(cow_counts=(1000, 5000), duration=4.0),
}

RUNNERS = {
    "chaos": run_chaos_experiment,
    "fig6": experiments.run_fig6,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "fig9": experiments.run_fig9,
    "placement": experiments.run_placement_ablation,
    "durability": experiments.run_durability_ablation,
    "granularity": experiments.run_granularity_ablation,
    "constraints": experiments.run_constraints_ablation,
    "cattle": experiments.run_cattle_scaling,
}


def _run_baseline_command(name: str, args: argparse.Namespace) -> int:
    """fig6/fig7/micro with one of the baseline flags (or micro --smoke)."""
    builder = BUILDERS[name]
    started = time.time()
    if args.write_baseline:
        # Committing a baseline records both modes: the full sweep (the
        # figure) and the smoke sweep the CI gate replays.
        payloads = {"full": builder(False), "smoke": builder(True)}
        write_baseline(args.write_baseline, payloads)
        summary = payloads["full"]["summary"]
        print(f"{name}: wrote {args.write_baseline} ({summary})")
        print(f"  [wall-clock: {time.time() - started:.1f}s]")
        return 0
    fresh = builder(args.smoke)
    print(f"{name} ({fresh['mode']}): {json.dumps(fresh['summary'])}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(fresh, indent=2, sort_keys=True) + "\n"
        )
        print(f"  wrote {args.json}")
    status = 0
    if args.check_baseline:
        failures = check_against_baseline(
            fresh, load_baseline(args.check_baseline)
        )
        if failures:
            for failure in failures:
                print(f"  PERF REGRESSION: {failure}")
            status = 1
        else:
            print(f"  perf gate passed against {args.check_baseline}")
    print(f"  [wall-clock: {time.time() - started:.1f}s]")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS)
        + [
            "all",
            "trace",
            "profile",
            "incident",
            "micro",
            "elastic",
            "partition",
            "speed",
            "views",
            "tsbench",
        ],
        help="which figure/ablation to run (or a traced/profiled demo run)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down parameters (seconds instead of minutes)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="trace/profile: tiny scenario plus invariant checks; "
        "fig6/fig7/micro: the three-point sweep the CI perf gate replays",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="fig6/fig7/micro: write the fresh run's payload as JSON",
    )
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="fig6/fig7/micro: gate the fresh run against a committed "
        "BENCH_*.json (fails on >10%% throughput drop or >15%% p99 rise)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="fig6/fig7/micro: run full + smoke sweeps and (re)write the "
        "committed BENCH_*.json",
    )
    args = parser.parse_args(argv)
    if args.experiment == "trace":
        from .tracebench import run_trace_bench

        print(run_trace_bench(smoke=args.smoke))
        return 0
    if args.experiment == "profile":
        from .profilebench import run_profile_bench

        print(run_profile_bench(smoke=args.smoke))
        return 0
    if args.experiment == "incident":
        from .incidentbench import run_incident_bench

        print(run_incident_bench(smoke=args.smoke))
        return 0
    baseline_flags = args.json or args.check_baseline or args.write_baseline
    if args.experiment in (
        "micro", "elastic", "partition", "speed", "views", "tsbench"
    ):
        if not (baseline_flags or args.smoke):
            print(
                json.dumps(
                    BUILDERS[args.experiment](False), indent=2, sort_keys=True
                )
            )
            return 0
        return _run_baseline_command(args.experiment, args)
    if args.experiment in BUILDERS and (baseline_flags or args.smoke):
        return _run_baseline_command(args.experiment, args)
    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = RUNNERS[name]
        kwargs = QUICK.get(name, {}) if args.quick else {}
        started = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - started
        print(format_result(result))
        print(f"  [wall-clock: {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
