"""Command-line entry point: regenerate any figure or ablation.

Usage::

    python -m repro.bench fig6            # one experiment
    python -m repro.bench all             # everything (several minutes)
    python -m repro.bench fig7 --quick    # scaled-down sweep
    python -m repro.bench trace           # traced run: causal trees
    python -m repro.bench trace --smoke   # + invariant checks (CI gate)
    python -m repro.bench profile         # profiled run: CPU attribution,
                                          # health rules, telemetry actors
    python -m repro.bench profile --smoke # + profiling-invariant checks
"""

from __future__ import annotations

import argparse
import sys
import time

from . import experiments
from .chaos import run_chaos_experiment
from .report import format_result

QUICK = {
    "chaos": dict(sensors=100, duration=12.0, crash_at=4.0, lease_seconds=1.5),
    "fig6": dict(sensor_counts=(600, 1200, 1800, 2400), duration=6.0),
    "fig7": dict(scale_factors=(1, 2, 3), duration=4.0),
    "fig8": dict(sensor_counts=(500, 2000), duration=6.0),
    "fig9": dict(sensor_counts=(500, 2000), duration=6.0),
    "placement": dict(sensors=400, duration=4.0),
    "durability": dict(sensors=30, duration=4.0),
    "granularity": dict(cows=30),
    "constraints": dict(transfers=60),
    "cattle": dict(cow_counts=(1000, 5000), duration=4.0),
}

RUNNERS = {
    "chaos": run_chaos_experiment,
    "fig6": experiments.run_fig6,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "fig9": experiments.run_fig9,
    "placement": experiments.run_placement_ablation,
    "durability": experiments.run_durability_ablation,
    "granularity": experiments.run_granularity_ablation,
    "constraints": experiments.run_constraints_ablation,
    "cattle": experiments.run_cattle_scaling,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all", "trace", "profile"],
        help="which figure/ablation to run (or a traced/profiled demo run)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down parameters (seconds instead of minutes)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="trace/profile only: tiny scenario plus invariant checks",
    )
    args = parser.parse_args(argv)
    if args.experiment == "trace":
        from .tracebench import run_trace_bench

        print(run_trace_bench(smoke=args.smoke))
        return 0
    if args.experiment == "profile":
        from .profilebench import run_profile_bench

        print(run_profile_bench(smoke=args.smoke))
        return 0
    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = RUNNERS[name]
        kwargs = QUICK.get(name, {}) if args.quick else {}
        started = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - started
        print(format_result(result))
        print(f"  [wall-clock: {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
