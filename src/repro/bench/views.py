"""The materialized-views bench: dashboard reads at insert scale.

The paper's workload is 98% inserts — its query figures (8/9) show the mix
degrading as soon as readers join the writers, because every pull-based
read fans out to live actors.  This bench replays that mix at high user
counts against the incremental view layer (:mod:`repro.aodb.views`) and
measures what standing queries buy:

- **materialized** — the strain aggregate, windowed rollup and top-K views
  are registered before load; every dashboard read is one ask to the
  owning view shard while inserts stream deltas through the coalescer;
- **pull** — the negative control: the identical insert load and reader
  fleet, but every read is a ``view_sample`` fan-out over the sensor
  extent folded client-side (the same algebra, so results match).

After the timed phase both variants run a quiesced *read-cost probe*
(asks per one-group read, measured from the runtime's ask counter) and
the builder asserts the acceptance invariants:

- materialized read cost is O(groups asked) — ~1 ask per group, at least
  10x cheaper than the pull scan at the bench's sensor count;
- exactly-once folding: view totals equal the points the sensors accepted
  — in the steady run *and* in a chaos-seeded run with message loss and
  duplication (dedup ingest + retries + watermark folds);
- staleness p99 stays under the registered bound and the
  ``view-staleness`` SLO rule never fires in the steady phase.

The committed ``BENCH_views.json`` gates CI::

    python -m repro.bench views --smoke --check-baseline BENCH_views.json
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aodb.views import ViewDef
from ..net.faults import NetworkFaultInjector
from ..obs.health import HealthMonitor, default_slo_rules
from ..runtime.resilience import RetryPolicy
from ..shm.platform import channel_id_for
from .instances import M5_LARGE
from .metrics import percentile
from .workload import build_deployment, provision, synth_value

#: Resilience for the chaos phase: lost flushes and lost inserts must
#: surface as retries (idempotent by watermark), never as hangs.
VIEWS_RETRY_POLICY = RetryPolicy(
    max_attempts=6,
    base_delay=0.05,
    multiplier=2.0,
    max_delay=0.5,
    jitter=0.2,
    attempt_timeout=1.0,
)
VIEWS_CALL_DEADLINE = 10.0

#: Acceptance floor: a materialized read must be at least this many times
#: cheaper (in asks) than the pull-based scan it replaces.
READ_COST_FLOOR = 10.0


@dataclass(frozen=True)
class ViewsConfig:
    """One mixed insert+read run's parameters."""

    sensors: int = 120
    sensors_per_org: int = 20
    silos: int = 2
    duration: float = 6.0
    #: Closed-loop inserts per sensor per second.
    insert_rate: float = 20.0
    points_per_channel: int = 2
    #: Dashboard users, each reading one group's aggregate per interval —
    #: the "millions of users also want to read" pressure, scaled to sim.
    readers: int = 48
    read_interval: float = 0.25
    #: The views' registered freshness contract (seconds).
    staleness_bound: float = 0.25
    seed: int = 29

    @property
    def orgs(self) -> int:
        return (self.sensors + self.sensors_per_org - 1) // self.sensors_per_org


@dataclass(frozen=True)
class ChaosConfig:
    """The chaos-seeded exactly-once run (materialized only)."""

    sensors: int = 24
    sensors_per_org: int = 12
    duration: float = 4.0
    insert_rate: float = 10.0
    points_per_channel: int = 2
    loss_rate: float = 0.01
    duplication_rate: float = 0.08
    fault_start: float = 0.5
    seed: int = 31


def _view_defs(config: ViewsConfig) -> list[ViewDef]:
    """The three standing queries the issue names, grouped by tenant."""
    return [
        ViewDef(
            name="strain-by-org",
            source="Sensor",
            group_by="org_id",
            kind="aggregate",
            staleness_bound=config.staleness_bound,
        ),
        ViewDef(
            name="rollup-by-org",
            source="Sensor",
            group_by="org_id",
            kind="window",
            window_seconds=1.0,
            max_buckets=8,
            staleness_bound=config.staleness_bound,
        ),
        ViewDef(
            name="hottest-sensors",
            source="Sensor",
            group_by="org_id",
            kind="topk",
            k=5,
            rank_by="mean",
            staleness_bound=config.staleness_bound,
        ),
    ]


def _run_variant(config: ViewsConfig, materialized: bool) -> dict:
    """One mixed run; returns the metrics row plus raw invariant inputs."""
    deployment = build_deployment(
        [M5_LARGE] * config.silos, seed=config.seed
    )
    scheduler = deployment.scheduler
    runtime = deployment.runtime
    database = deployment.database
    scheduler.run_until_complete(
        provision(deployment, config.sensors, config.sensors_per_org)
    )
    org_ids = [f"org-{i}" for i in range(config.orgs)]
    monitor = None
    if materialized:
        for definition in _view_defs(config):
            database.register_view(definition)
        monitor = HealthMonitor(
            runtime.metrics,
            default_slo_rules(max_view_staleness=config.staleness_bound),
        )
        monitor.attach(scheduler, interval=0.1)
        read_handle = database.view("strain-by-org")
    else:
        read_handle = database.view(
            "strain-by-org", source="Sensor", group_by="org_id"
        )

    reader_rng = deployment.rng.stream("view-readers")
    sensor_ids = deployment.report.sensor_ids
    counters = {"attempted": 0, "points_acked": 0, "reads": 0}
    read_latencies: list[float] = []
    insert_latencies: list[float] = []
    staleness_samples: list[float] = []
    start = scheduler.now
    stop = start + config.duration

    async def sensor_loop(sensor_id: str) -> None:
        interval = 1.0 / config.insert_rate
        channels = (channel_id_for(sensor_id, 0), channel_id_for(sensor_id, 1))
        while scheduler.now < stop:
            now = scheduler.now
            batches = {
                channels[ch]: [
                    (now + i * 0.001, synth_value(ch, now + i * 0.001))
                    for i in range(config.points_per_channel)
                ]
                for ch in (0, 1)
            }
            counters["attempted"] += 1
            accepted = await deployment.platform.ingest(sensor_id, batches)
            counters["points_acked"] += int(accepted)
            insert_latencies.append(scheduler.now - now)
            next_at = now + interval
            if scheduler.now < next_at:
                await scheduler.sleep(next_at - scheduler.now)

    async def reader_loop(index: int) -> None:
        # Stagger the fleet so reads spread over the interval.
        await scheduler.sleep(
            (index % max(1, config.readers)) * config.read_interval
            / max(1, config.readers)
        )
        while scheduler.now < stop:
            org_id = org_ids[reader_rng.randrange(len(org_ids))]
            sent = scheduler.now
            await read_handle.get(org_id)
            counters["reads"] += 1
            read_latencies.append(scheduler.now - sent)
            next_at = sent + config.read_interval
            if scheduler.now < next_at:
                await scheduler.sleep(next_at - scheduler.now)

    async def staleness_sampler() -> None:
        while scheduler.now < stop:
            await scheduler.sleep(0.02)
            staleness_samples.append(database.views.staleness_seconds())

    async def mixed_load() -> None:
        tasks = [
            scheduler.spawn(sensor_loop(sensor_id), name=f"sensor:{sensor_id}")
            for sensor_id in sensor_ids
        ]
        tasks.extend(
            scheduler.spawn(reader_loop(i), name=f"reader:{i}")
            for i in range(config.readers)
        )
        if materialized:
            tasks.append(
                scheduler.spawn(staleness_sampler(), name="staleness-sampler")
            )
        await scheduler.gather(tasks)

    scheduler.run_until_complete(mixed_load())
    if monitor is not None:
        monitor.detach()

    # Quiesce, then probe the per-read ask cost with no load in flight.
    async def drain() -> None:
        await scheduler.sleep(1.0)

    scheduler.run_until_complete(drain())

    async def cost_probe() -> tuple[float, list[dict]]:
        before = runtime.stats.asks
        summaries = [await read_handle.get(org_id) for org_id in org_ids]
        asks = runtime.stats.asks - before
        return asks / len(org_ids), summaries

    asks_per_read, summaries = scheduler.run_until_complete(cost_probe())

    parity_ok = True
    if materialized:
        # Both paths fold the same inserts with the same algebra.  Counts
        # and extrema must agree exactly; running totals (and hence means)
        # are float sums taken in different orders — per-cohort on the
        # materialized side, per-sensor on the pull side — so those are
        # compared to relative float tolerance.
        pull = database.view(
            "strain-parity", source="Sensor", group_by="org_id"
        )

        def close(a: float | None, b: float | None) -> bool:
            if a is None or b is None:
                return a == b
            return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))

        async def parity() -> bool:
            for org_id, summary in zip(org_ids, summaries):
                scanned = await pull.get(org_id)
                if (
                    scanned["count"] != summary["count"]
                    or scanned["min"] != summary["min"]
                    or scanned["max"] != summary["max"]
                    or not close(scanned["total"], summary["total"])
                    or not close(scanned["mean"], summary["mean"])
                ):
                    return False
            return True

        parity_ok = scheduler.run_until_complete(parity())

    total_count = sum(summary["count"] for summary in summaries)
    read_sorted = sorted(read_latencies)
    insert_sorted = sorted(insert_latencies)
    row = {
        "sensors": config.sensors,
        "readers": config.readers,
        "duration_s": config.duration,
        "throughput_rps": round(counters["attempted"] / config.duration, 2),
        "reads": counters["reads"],
        "p50_ms": round(percentile(read_sorted, 0.50) * 1000, 3)
        if read_sorted
        else 0.0,
        "p99_ms": round(percentile(read_sorted, 0.99) * 1000, 3)
        if read_sorted
        else 0.0,
        "insert_p99_ms": round(percentile(insert_sorted, 0.99) * 1000, 3)
        if insert_sorted
        else 0.0,
        "asks_per_group_read": round(asks_per_read, 2),
    }
    extras = {
        "points_acked": counters["points_acked"],
        "view_total_count": total_count,
        "parity_ok": parity_ok,
        "alerts": [],
        "staleness_p99": 0.0,
    }
    if materialized:
        views = database.views
        row["deltas_emitted"] = views.deltas_emitted()
        row["flushes"] = views.flushes()
        row["avg_delta_cohort"] = round(
            views.deltas_emitted() / max(1, views.flushes()), 2
        )
        row["staleness_p99_ms"] = round(
            percentile(sorted(staleness_samples), 0.99) * 1000, 3
        )
        extras["staleness_p99"] = percentile(sorted(staleness_samples), 0.99)
        extras["alerts"] = [
            alert.rule for alert in (monitor.alerts if monitor else [])
        ]
        extras["failed_flushes"] = views.failed_flushes
        extras["duplicate_flushes"] = views.duplicate_flushes
    return {"row": row, "extras": extras}


def _run_chaos(config: ChaosConfig, staleness_bound: float) -> dict:
    """Loss + duplication over the delta path; exactly-once must hold."""
    deployment = build_deployment(
        [M5_LARGE] * 2, seed=config.seed, dedup_ingest=True
    )
    scheduler = deployment.scheduler
    runtime = deployment.runtime
    database = deployment.database
    runtime.config.default_call_deadline = VIEWS_CALL_DEADLINE
    runtime.config.default_retry_policy = VIEWS_RETRY_POLICY
    scheduler.run_until_complete(
        provision(deployment, config.sensors, config.sensors_per_org)
    )
    database.register_view(
        ViewDef(
            name="strain-by-org",
            source="Sensor",
            group_by="org_id",
            kind="aggregate",
            staleness_bound=staleness_bound,
        )
    )
    injector = NetworkFaultInjector(
        deployment.rng.stream("views-chaos"),
        loss_rate=config.loss_rate,
        duplication_rate=config.duplication_rate,
        start=scheduler.now + config.fault_start,
        end=scheduler.now + config.duration,
    )
    runtime.network.inject_faults(injector)

    sensor_ids = deployment.report.sensor_ids
    counters = {"attempted": 0, "failed": 0, "points_acked": 0}
    stop = scheduler.now + config.duration

    async def sensor_loop(sensor_id: str) -> None:
        interval = 1.0 / config.insert_rate
        channels = (channel_id_for(sensor_id, 0), channel_id_for(sensor_id, 1))
        while scheduler.now < stop:
            now = scheduler.now
            batches = {
                channels[ch]: [
                    (now + i * 0.001, synth_value(ch, now + i * 0.001))
                    for i in range(config.points_per_channel)
                ]
                for ch in (0, 1)
            }
            counters["attempted"] += 1
            try:
                accepted = await deployment.platform.ingest(sensor_id, batches)
            except Exception:
                counters["failed"] += 1
            else:
                counters["points_acked"] += int(accepted)
            next_at = now + interval
            if scheduler.now < next_at:
                await scheduler.sleep(next_at - scheduler.now)

    async def storm() -> None:
        await scheduler.gather(
            [
                scheduler.spawn(sensor_loop(sensor_id), name=f"sensor:{sensor_id}")
                for sensor_id in sensor_ids
            ]
        )
        # Faults end with the load; drain the retry tails and open buffers.
        await scheduler.sleep(5.0)

    scheduler.run_until_complete(storm())

    async def reconcile() -> dict:
        # Ground truth: every point a sensor actually accepted is in its
        # running view_stats — the same turn that emitted the delta.
        emitted = 0
        for sensor_id in sensor_ids:
            sample = await runtime.ref("Sensor", sensor_id).ask("view_sample")
            emitted += sample["count"]
        org_count = (
            config.sensors + config.sensors_per_org - 1
        ) // config.sensors_per_org
        folded = 0
        duplicates = 0
        for org_index in range(org_count):
            accounting = await database.view("strain-by-org").fold_accounting(
                f"org-{org_index}"
            )
            folded += accounting["count"]
            duplicates += accounting["duplicates"]
        return {"emitted": emitted, "folded": folded, "duplicates": duplicates}

    ledger = scheduler.run_until_complete(reconcile())
    return {
        "attempted": counters["attempted"],
        "failed_inserts": counters["failed"],
        "points_acked": counters["points_acked"],
        "points_emitted": ledger["emitted"],
        "points_folded": ledger["folded"],
        "duplicate_flushes_dropped": ledger["duplicates"],
        "injected_losses": injector.injected_losses,
        "injected_duplicates": injector.injected_duplicates,
        "failed_flushes": database.views.failed_flushes,
        "pending_deltas": database.views.pending_deltas(),
    }


def _check_invariants(
    materialized: dict, pull: dict, chaos: dict, config: ViewsConfig
) -> dict:
    """The acceptance invariants; raises on violation, returns the summary."""
    problems: list[str] = []
    mat_row, mat_extras = materialized["row"], materialized["extras"]
    pull_row, pull_extras = pull["row"], pull["extras"]

    # Read cost: O(groups asked), >= 10x cheaper than the pull scan.
    if mat_row["asks_per_group_read"] > 2.0:
        problems.append(
            f"materialized read cost {mat_row['asks_per_group_read']} "
            "asks/group — not O(groups asked)"
        )
    cost_ratio = pull_row["asks_per_group_read"] / max(
        1e-9, mat_row["asks_per_group_read"]
    )
    if cost_ratio < READ_COST_FLOOR:
        problems.append(
            f"materialized reads only {cost_ratio:.1f}x cheaper than the "
            f"pull scan (floor: {READ_COST_FLOOR:.0f}x)"
        )

    # Exactly-once, steady: every acked point folded into the view once.
    if mat_extras["view_total_count"] != mat_extras["points_acked"]:
        problems.append(
            f"steady run folded {mat_extras['view_total_count']} points "
            f"but sensors acked {mat_extras['points_acked']}"
        )
    if not mat_extras["parity_ok"]:
        problems.append("materialized reads diverged from the pull fold")
    if mat_extras.get("failed_flushes"):
        problems.append(
            f"{mat_extras['failed_flushes']} delta flushes failed in steady"
        )

    # Staleness: p99 under the registered bound, SLO rule silent.
    if mat_extras["staleness_p99"] > config.staleness_bound:
        problems.append(
            f"staleness p99 {mat_extras['staleness_p99'] * 1000:.1f} ms "
            f"exceeds the bound {config.staleness_bound * 1000:.0f} ms"
        )
    if "view-staleness" in mat_extras["alerts"]:
        problems.append("view-staleness SLO rule fired in the steady phase")

    # The pull control folds the same answer (it scans the same stats).
    if pull_extras["view_total_count"] != pull_extras["points_acked"]:
        problems.append(
            f"pull control folded {pull_extras['view_total_count']} points "
            f"but sensors acked {pull_extras['points_acked']}"
        )

    # Exactly-once, chaos-seeded: faults really fired, nothing lost or
    # double-folded, no flush gave up.
    if chaos["injected_duplicates"] < 1 or chaos["injected_losses"] < 1:
        problems.append(
            "chaos run injected no faults — the exactly-once claim is "
            "untested"
        )
    if chaos["points_folded"] != chaos["points_emitted"]:
        problems.append(
            f"chaos run folded {chaos['points_folded']} points but sensors "
            f"emitted {chaos['points_emitted']} (lost or duplicated deltas)"
        )
    if chaos["failed_flushes"]:
        problems.append(
            f"{chaos['failed_flushes']} delta flushes exhausted retries "
            "under chaos"
        )
    if chaos["pending_deltas"]:
        problems.append(
            f"{chaos['pending_deltas']} deltas still pending after drain"
        )

    if problems:
        raise RuntimeError(
            "views bench invariants violated: " + "; ".join(problems)
        )
    return {
        "read_cost_ratio": round(cost_ratio, 1),
        "asks_per_group_read": mat_row["asks_per_group_read"],
        "read_p99_speedup": round(
            pull_row["p99_ms"] / max(1e-9, mat_row["p99_ms"]), 2
        ),
        "staleness_p99_ms": mat_row["staleness_p99_ms"],
        "staleness_bound_ms": round(config.staleness_bound * 1000, 1),
        "chaos_injected_duplicates": chaos["injected_duplicates"],
        "chaos_injected_losses": chaos["injected_losses"],
        "chaos_duplicate_flushes_dropped": chaos["duplicate_flushes_dropped"],
        "exactly_once": True,
    }


SMOKE_CONFIG = ViewsConfig(
    sensors=60,
    sensors_per_org=20,
    duration=3.0,
    readers=24,
)
SMOKE_CHAOS = ChaosConfig(duration=3.0)


def build_views(smoke: bool = False) -> dict:
    """The BENCH payload: materialized vs pull reads, invariants asserted."""
    config = SMOKE_CONFIG if smoke else ViewsConfig()
    chaos_config = SMOKE_CHAOS if smoke else ChaosConfig()
    materialized = _run_variant(config, materialized=True)
    pull = _run_variant(config, materialized=False)
    chaos = _run_chaos(chaos_config, config.staleness_bound)
    checks = _check_invariants(materialized, pull, chaos, config)
    return {
        "bench": "views",
        "mode": "smoke" if smoke else "full",
        "title": (
            "Materialized views vs pull-based scans under a mixed "
            "insert+dashboard workload"
        ),
        "series": {
            "materialized": materialized["row"],
            "pull": pull["row"],
        },
        "summary": checks,
        "checks": [
            {
                "steady": {
                    "points_acked": materialized["extras"]["points_acked"],
                    "view_total_count": materialized["extras"][
                        "view_total_count"
                    ],
                    "alerts": materialized["extras"]["alerts"],
                },
                "chaos": chaos,
            }
        ],
    }
