"""Measurement: latency records, percentiles, and windowed statistics.

Mirrors the paper's method (§6.1): "The data was split into windows of 1
minute, and the first minute was removed to make sure the platform had
started up correctly ... the last minute was removed to ensure that only
whole minutes were used.  The average latency or throughput was then
calculated as a measurement, and depicted along with standard deviation."
Our virtual runs are seconds rather than minutes, so the window length is a
parameter; the trimming protocol is the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values.

    ``fraction`` in [0, 1].  Raises on empty input: asking for a percentile
    of nothing is a harness bug that should not be papered over.
    """
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


@dataclass(frozen=True)
class Record:
    """One completed request."""

    kind: str  # 'insert' | 'live' | 'raw'
    sent_at: float
    latency: float

    @property
    def completed_at(self) -> float:
        """When the reply reached the client."""
        return self.sent_at + self.latency


@dataclass
class WindowStat:
    """Aggregate of one measurement window."""

    start: float
    count: int
    mean_latency: float
    throughput: float


@dataclass
class Summary:
    """Cross-window mean +/- stddev plus whole-run latency percentiles."""

    kind: str
    requests: int
    throughput_mean: float
    throughput_std: float
    latency_mean: float
    latency_std: float
    p50: float
    p90: float
    p99: float
    p999: float

    def percentiles(self) -> dict[str, float]:
        return {"p50": self.p50, "p90": self.p90, "p99": self.p99, "p999": self.p999}


class LatencyRecorder:
    """Collects request records and reduces them the paper's way."""

    def __init__(self) -> None:
        self._records: list[Record] = []

    def record(self, kind: str, sent_at: float, latency: float) -> None:
        """Store one completed request."""
        self._records.append(Record(kind, sent_at, latency))

    def __len__(self) -> int:
        return len(self._records)

    def records(self, kind: str | None = None) -> list[Record]:
        """All records, optionally filtered by request kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def window_stats(
        self,
        kind: str,
        window_seconds: float,
        start: float,
        end: float,
        trim: int = 1,
    ) -> list[WindowStat]:
        """Windowed means with the paper's first/last trimming.

        Records are bucketed by *completion* time: at saturation, send waves
        slip past the one-second cadence while completions flow at the
        service rate — which is the throughput the paper plots.
        """
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        records = [
            r for r in self._records if r.kind == kind and start <= r.completed_at < end
        ]
        buckets: dict[int, list[Record]] = {}
        for record in records:
            buckets.setdefault(
                int((record.completed_at - start) // window_seconds), []
            ).append(record)
        # Guard against float dust: (start+D) - start can be a hair under D,
        # which would silently drop the last window.
        window_count = int((end - start) / window_seconds + 1e-9)
        stats = []
        for index in range(window_count):
            members = buckets.get(index, [])
            mean_latency = (
                sum(r.latency for r in members) / len(members) if members else 0.0
            )
            stats.append(
                WindowStat(
                    start=start + index * window_seconds,
                    count=len(members),
                    mean_latency=mean_latency,
                    throughput=len(members) / window_seconds,
                )
            )
        if trim:
            stats = stats[trim:-trim] if len(stats) > 2 * trim else []
        return stats

    def summarize(
        self,
        kind: str,
        window_seconds: float,
        start: float,
        end: float,
        trim: int = 1,
    ) -> Summary | None:
        """The full reduction: windowed throughput + whole-run percentiles.

        Returns None when no trimmed windows (or no records) remain.
        """
        stats = self.window_stats(kind, window_seconds, start, end, trim=trim)
        if not stats:
            return None
        measured_start = stats[0].start
        measured_end = stats[-1].start + window_seconds
        latencies = sorted(
            r.latency
            for r in self._records
            if r.kind == kind and measured_start <= r.completed_at < measured_end
        )
        if not latencies:
            return None
        throughputs = [w.throughput for w in stats]
        latency_means = [w.mean_latency for w in stats if w.count]
        return Summary(
            kind=kind,
            requests=len(latencies),
            throughput_mean=_mean(throughputs),
            throughput_std=_std(throughputs),
            latency_mean=_mean(latency_means) if latency_means else 0.0,
            latency_std=_std(latency_means) if latency_means else 0.0,
            p50=percentile(latencies, 0.50),
            p90=percentile(latencies, 0.90),
            p99=percentile(latencies, 0.99),
            p999=percentile(latencies, 0.999),
        )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))


