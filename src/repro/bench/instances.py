"""EC2 instance models used by the paper's evaluation.

The paper deploys Orleans silos on m5 instances and scales load by the
instances' EC2 Compute Unit (ECU) ratio: "the difference in computing power
between the m5.large and m5.xlarge instances ... is estimated by their EC2
Compute Unit (ECU) values to be of a factor 1.5x".  We model an instance as
(cores, per-core speed); total capacity = cores x speed, with the m5.xlarge
calibrated to exactly 1.5x the m5.large as the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstanceType:
    """A simulated server model."""

    name: str
    cores: int
    speed: float  # per-core speed factor relative to the m5.large core

    @property
    def capacity(self) -> float:
        """Total compute capacity in core-seconds per second."""
        return self.cores * self.speed


# The m5.large is the calibration reference: 2 vCPUs at speed 1.0.
M5_LARGE = InstanceType("m5.large", cores=2, speed=1.0)

# 4 vCPUs, scaled so total capacity is 1.5x the m5.large (paper's ECU ratio).
M5_XLARGE = InstanceType("m5.xlarge", cores=4, speed=0.75)

# The benchmarking client's machine (not CPU-modeled in experiments, but
# available for completeness).
M5_2XLARGE = InstanceType("m5.2xlarge", cores=8, speed=0.75)

# The RDS system-store instance class used for Orleans system storage.
DB_T2_SMALL = InstanceType("db.t2.small", cores=1, speed=0.5)

INSTANCE_TYPES = {
    instance.name: instance
    for instance in (M5_LARGE, M5_XLARGE, M5_2XLARGE, DB_T2_SMALL)
}


def instance(name: str) -> InstanceType:
    """Look up an instance type by name."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown instance type {name!r}; known: {sorted(INSTANCE_TYPES)}"
        ) from None
