"""Chaos-recovery experiment: goodput under a mid-run silo crash.

The paper's resilience claim (§5) is qualitative: virtual actors re-place
after a server failure and the platform keeps ingesting.  This driver makes
it quantitative.  It runs the Figure-7 ingestion workload over a two-silo
cluster, silently crashes one silo mid-run (the zombie mode of
:meth:`~repro.runtime.runtime.AodbRuntime.crash_silo`), optionally injects
network loss/duplication, and reports per-second goodput, availability and
recovery time.

Two configurations matter:

- **resilience on** — call deadlines + retry policies mask the outage and
  the failure detector evicts the dead silo, so every insert eventually
  succeeds and goodput recovers to the pre-crash level;
- **resilience off** (negative control) — callers see raw
  :class:`~repro.errors.SiloUnavailableError` until the membership lease
  lapses, so availability visibly drops.

Everything runs in virtual time from seeded RNG streams: same seed, same
series, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..kernel.scheduler import Scheduler
from ..net.faults import NetworkFaultInjector
from ..runtime.persistence import WritePolicy
from ..runtime.resilience import RetryPolicy
from ..shm.platform import channel_id_for
from ..storage.system_store import SystemStore
from .instances import M5_XLARGE
from .workload import Deployment, build_deployment, provision, synth_value

#: Retry policy the positive control applies cluster-wide.  Minimum total
#: backoff (jitter at its floor) comfortably spans the membership lease, so
#: retries outlast the zombie window even in the worst case.
CHAOS_RETRY_POLICY = RetryPolicy(
    max_attempts=10,
    base_delay=0.1,
    multiplier=2.0,
    max_delay=1.0,
    jitter=0.2,
    attempt_timeout=0.5,
)

#: Overall call deadline (virtual seconds) for the positive control.
CHAOS_CALL_DEADLINE = 15.0


@dataclass
class ChaosConfig:
    """Parameters of one chaos-recovery run."""

    sensors: int = 200
    sensors_per_org: int = 100
    duration: float = 20.0
    crash_at: float = 6.0
    crash_silo: str = "silo-1"
    lease_seconds: float = 2.0
    resilience: bool = True
    loss_rate: float = 0.0
    duplication_rate: float = 0.0
    fault_window: float = 6.0  # seconds of net chaos starting at crash_at
    seed: int = 75
    recovery_threshold: float = 0.9

    def validate(self) -> None:
        if not 0.0 < self.crash_at < self.duration:
            raise ValueError("crash_at must fall inside the run")
        if not 0.0 < self.recovery_threshold <= 1.0:
            raise ValueError("recovery_threshold must be in (0, 1]")


@dataclass
class ChaosResult:
    """Everything the chaos bench reports for one run."""

    config: ChaosConfig
    goodput: list[int] = field(default_factory=list)  # successes per second
    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    errors_by_type: dict[str, int] = field(default_factory=dict)
    pre_crash_throughput: float = 0.0
    recovery_seconds: float | None = None
    calls_retried: int = 0
    deadlines_exceeded: int = 0
    silos_evicted: int = 0
    activations_replaced: int = 0
    activations_crashed: int = 0
    lost_messages: int = 0
    duplicated_messages: int = 0

    @property
    def availability(self) -> float:
        """Fraction of attempted inserts that eventually succeeded."""
        return self.succeeded / self.attempted if self.attempted else 0.0

    @property
    def steady_state_goodput(self) -> float:
        """Mean goodput over the final three seconds of the run."""
        tail = self.goodput[-3:]
        return sum(tail) / len(tail) if tail else 0.0

    @property
    def recovered(self) -> bool:
        return self.recovery_seconds is not None


def run_chaos_recovery(config: ChaosConfig | None = None) -> ChaosResult:
    """Run the Fig-7 ingestion workload through a scripted silo crash.

    Both controls run with write-through durability (rather than the
    benchmarks' flush-on-shutdown default): crash recovery is only
    meaningful when there is persisted state for the re-placed activations
    to recover, which is the paper's §5 resilience story.
    """
    from ..shm.channel import PhysicalSensorChannel, VirtualSensorChannel
    from ..shm.organization import Organization
    from ..shm.sensor import Sensor

    config = config or ChaosConfig()
    config.validate()
    durable_types = (Sensor, PhysicalSensorChannel, VirtualSensorChannel, Organization)
    saved_policies = [cls.write_policy for cls in durable_types]
    for cls in durable_types:
        cls.write_policy = WritePolicy.WRITE_THROUGH
    try:
        return _run(config)
    finally:
        for cls, policy in zip(durable_types, saved_policies):
            cls.write_policy = policy


def _run(config: ChaosConfig) -> ChaosResult:
    scheduler = Scheduler()
    system_store = SystemStore(scheduler, lease_seconds=config.lease_seconds)
    deployment = _build(scheduler, system_store, config)
    runtime = deployment.runtime
    platform = deployment.platform
    scheduler.run_until_complete(
        provision(deployment, config.sensors, config.sensors_per_org)
    )
    runtime.start()

    if config.loss_rate > 0 or config.duplication_rate > 0:
        runtime.network.inject_faults(
            NetworkFaultInjector(
                deployment.rng.stream("chaos-net"),
                loss_rate=config.loss_rate,
                duplication_rate=config.duplication_rate,
                start=config.crash_at,
                end=config.crash_at + config.fault_window,
            )
        )

    result = ChaosResult(config=config)
    buckets = [0] * int(config.duration)
    sensor_ids = deployment.report.sensor_ids

    async def one_insert(sensor_id: str, wave_time: float) -> None:
        batches = {
            channel_id_for(sensor_id, channel): [
                (wave_time, synth_value(channel, wave_time))
            ]
            for channel in (0, 1)
        }
        result.attempted += 1
        try:
            await platform.ingest(sensor_id, batches)
        except ReproError as exc:
            result.failed += 1
            name = type(exc).__name__
            result.errors_by_type[name] = result.errors_by_type.get(name, 0) + 1
        else:
            result.succeeded += 1
            second = int(scheduler.now)
            if second < len(buckets):
                buckets[second] += 1

    async def fleet() -> None:
        stop = config.duration
        while scheduler.now < stop:
            wave_time = scheduler.now
            tasks = [
                scheduler.spawn(one_insert(sensor_id, wave_time))
                for sensor_id in sensor_ids
            ]
            await scheduler.gather(tasks)
            next_wave = wave_time + 1.0
            if scheduler.now < next_wave:
                await scheduler.sleep(next_wave - scheduler.now)

    async def crash() -> None:
        await scheduler.at(config.crash_at)
        runtime.crash_silo(config.crash_silo, detected=False)

    async def drive() -> None:
        crash_task = scheduler.spawn(crash(), name="chaos-crash")
        await fleet()
        await crash_task

    scheduler.run_until_complete(drive())

    result.goodput = buckets
    pre = buckets[1 : int(config.crash_at)]
    result.pre_crash_throughput = sum(pre) / len(pre) if pre else 0.0
    floor = config.recovery_threshold * result.pre_crash_throughput
    for second in range(int(config.crash_at), len(buckets)):
        if buckets[second] >= floor:
            result.recovery_seconds = second + 1 - config.crash_at
            break
    stats = runtime.stats
    result.calls_retried = stats.calls_retried
    result.deadlines_exceeded = stats.deadlines_exceeded
    result.silos_evicted = stats.silos_evicted
    result.activations_replaced = stats.activations_replaced
    result.activations_crashed = stats.activations_crashed
    result.lost_messages = runtime.network.stats.lost_messages
    result.duplicated_messages = runtime.network.stats.duplicated_messages
    return result


def _build(
    scheduler: Scheduler, system_store: SystemStore, config: ChaosConfig
) -> Deployment:
    deployment = build_deployment(
        [M5_XLARGE, M5_XLARGE], seed=config.seed, scheduler=scheduler
    )
    runtime = deployment.runtime
    # build_deployment wires its own SystemStore; swap in the short-lease
    # one before any silo announces itself.
    runtime.system_store = system_store
    for silo in runtime.silos():
        system_store.announce(silo.silo_id, instance_type=silo.instance_type)
    if config.resilience:
        runtime.config.default_call_deadline = CHAOS_CALL_DEADLINE
        runtime.config.default_retry_policy = CHAOS_RETRY_POLICY
        runtime.config.enable_failure_detection = True
        runtime.config.failure_detection_interval = 0.5
        runtime.config.suspicion_grace = 0.5
    else:
        runtime.config.enable_failure_detection = False
    return deployment


def run_chaos_experiment(
    sensors: int = 200,
    duration: float = 20.0,
    crash_at: float = 6.0,
    lease_seconds: float = 2.0,
    loss_rate: float = 0.003,
    duplication_rate: float = 0.003,
) -> tuple[ChaosResult, ChaosResult]:
    """Both controls of the chaos experiment (the CLI/report entry point)."""
    common = dict(
        sensors=sensors,
        sensors_per_org=max(1, sensors // 2),
        duration=duration,
        crash_at=crash_at,
        lease_seconds=lease_seconds,
    )
    on = run_chaos_recovery(
        ChaosConfig(
            resilience=True,
            loss_rate=loss_rate,
            duplication_rate=duplication_rate,
            **common,
        )
    )
    off = run_chaos_recovery(ChaosConfig(resilience=False, **common))
    return on, off


def format_chaos_report(on: ChaosResult, off: ChaosResult | None = None) -> str:
    """Render one (or a pair of) chaos runs as a text report."""
    lines = ["chaos recovery (mid-run silent silo crash)", ""]
    for label, run in (("resilience on", on), ("resilience off", off)):
        if run is None:
            continue
        cfg = run.config
        lines += [
            f"[{label}] sensors={cfg.sensors} crash_at={cfg.crash_at:g}s "
            f"lease={cfg.lease_seconds:g}s seed={cfg.seed}",
            f"  availability        {run.availability:8.4f} "
            f"({run.succeeded}/{run.attempted}, {run.failed} failed)",
            f"  pre-crash goodput   {run.pre_crash_throughput:8.1f} inserts/s",
            f"  steady-state tail   {run.steady_state_goodput:8.1f} inserts/s",
            f"  recovery time       "
            + (
                f"{run.recovery_seconds:8.1f} s"
                if run.recovery_seconds is not None
                else "   never"
            ),
            f"  retries={run.calls_retried} deadlines={run.deadlines_exceeded} "
            f"evicted={run.silos_evicted} replaced={run.activations_replaced} "
            f"lost={run.lost_messages} dup={run.duplicated_messages}",
            f"  errors: {run.errors_by_type or '{}'}",
            "",
        ]
    return "\n".join(lines)
