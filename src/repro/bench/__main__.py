"""``python -m repro.bench`` — run experiment drivers from the shell."""

import sys

from .cli import main

sys.exit(main())
