"""Tiered time-series storage bench: compression, memory, scan latency.

Two legs, both against the same deterministic quantized-sensor workload
(an ADC-style random walk — values move on a fixed 0.01 grid, which is
what real sensor payloads look like and what XOR compression rewards):

- **engine** — a pure A/B of :class:`~repro.storage.tsblocks.TieredSeries`
  against itself with tiering disabled (``block_size=0`` degenerates to
  the raw pair window).  Measures live memory per sensor, sealed-tier
  compression ratio, append cost, and range-scan latency on recent reads
  (the hot-head path) and cold reads (decode path), while asserting the
  two sides return *identical* query results.
- **platform** — the full stack: an SHM deployment ingesting through
  sensor → channel actors with a small window capacity, so points
  overflow into sealed blocks and whole blocks evict into the
  block-backed :class:`~repro.storage.archive.ArchiveLog`.  Asserts
  end-to-end conservation (retained + archived == ingested, per channel)
  and reports the cluster ``storage.*`` probes.

Invariants (raised as :class:`TsBenchInvariantError`, failing CI loudly):
ROADMAP's ≥10× per-sensor memory reclaimed, a ≥4× sealed-tier compression
floor, recent-read latency within 2× of the raw window, and exact query
equivalence.  The committed ``BENCH_tsblocks.json`` is gated by
:func:`gate_tsblocks` — deterministic quantities (ratios, point/block
counts) are compared against the baseline; wall-clock numbers are
reported but only the recent-scan *ratio* is bounded, host-speed drift
cancels out of it.
"""

from __future__ import annotations

import random
import time

from ..storage.tsblocks import RAW_POINT_BYTES, TieredSeries

#: ROADMAP item 2's success bar: memory per sensor reclaimed vs raw points.
MEMORY_RECLAIM_FLOOR = 10.0
#: Sealed-tier wire compression floor (16 raw bytes/point vs block bytes).
COMPRESSION_FLOOR = 4.0
#: Recent-data range scans must stay within 2x of the raw window.
RECENT_SCAN_CEILING = 2.0
#: Gate tolerance on baseline-relative ratios (compression, memory).
RATIO_DROP_TOLERANCE = 0.10

BLOCK_SIZE = 256


class TsBenchInvariantError(RuntimeError):
    """A tiered-storage invariant was violated."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TsBenchInvariantError(message)


def quantized_walk(
    seed: int, count: int, t0: float = 1_000_000.0, interval: float = 1.0
) -> list[tuple[float, float]]:
    """A deterministic sensor stream: gridded values, mostly-regular time.

    Values are fixed-point ADC readings — an integer counts walk scaled
    by 1/256, so consecutive floats differ only in a few mantissa bits
    (what XOR compression rewards and what quantized sensors actually
    emit).  Timestamps tick at ``interval`` with occasional skipped
    readings, so both codecs see realistic small irregularities rather
    than a best-case constant stream.
    """
    rng = random.Random(seed)
    pairs: list[tuple[float, float]] = []
    t = t0
    counts = 5000
    for _ in range(count):
        t += interval if rng.random() >= 0.05 else interval * rng.choice((2, 3))
        counts += rng.randint(-5, 5)
        pairs.append((t, counts / 256.0))
    return pairs


def _timed_queries(
    side: list[TieredSeries], queries: list[tuple[float, float]]
) -> tuple[float, list]:
    """Run range queries round-robin; returns (seconds per query, results).

    The batch is timed best-of-3 (fresh round-robin cursor each pass, so
    query → series alignment is identical) because a single GC pause is
    larger than the entire µs-scale timed section.
    """
    results: list = []
    best = float("inf")
    for attempt in range(3):
        series = _RoundRobin(side)
        collect = results if attempt == 0 else None
        started = time.perf_counter()
        for start, end in queries:
            got = series.range(start, end)
            if collect is not None:
                collect.append(got)
        best = min(best, time.perf_counter() - started)
    return best / max(1, len(queries)), results


def _run_engine_leg(sensors: int, points: int, query_count: int) -> dict:
    """The A/B: tiered vs raw TieredSeries over identical streams."""
    capacity = points + 1  # retention is the platform leg's business
    raw_side = [
        TieredSeries(capacity, block_size=0) for _ in range(sensors)
    ]
    tiered_side = [
        TieredSeries(capacity, block_size=BLOCK_SIZE) for _ in range(sensors)
    ]
    streams = [quantized_walk(seed=17 + i, count=points) for i in range(sensors)]

    def _fill(side: list[TieredSeries]) -> float:
        started = time.perf_counter()
        for series, stream in zip(side, streams):
            for offset in range(0, len(stream), 10):  # ingest-sized batches
                series.append_many(stream[offset:offset + 10])
        return time.perf_counter() - started

    raw_fill = _fill(raw_side)
    tiered_fill = _fill(tiered_side)

    raw_bytes = sum(s.memory_stats()["live_bytes"] for s in raw_side)
    tiered_stats = [s.memory_stats() for s in tiered_side]
    tiered_bytes = sum(m["live_bytes"] for m in tiered_stats)
    block_bytes = sum(m["block_bytes"] for m in tiered_stats)
    sealed_points = sum(m["sealed_points"] for m in tiered_stats)

    # Query workload (deterministic): recent reads touch the newest ~2% of
    # the stream (the dashboard pattern); cold reads pick a narrow historic
    # window, which on the tiered side decodes one block and skips the
    # rest; full scans read everything.
    rng = random.Random(99)
    recent_queries, cold_queries = [], []
    for index in range(query_count):
        series = tiered_side[index % sensors]
        t_last = series.last_timestamp
        t_first = streams[index % sensors][0][0]
        recent_queries.append((t_last - 64.0, t_last + 1.0))
        mid = t_first + rng.random() * 0.8 * (t_last - t_first)
        cold_queries.append((mid, mid + 100.0))

    def _ab(queries: list[tuple[float, float]]) -> tuple[float, float]:
        tiered_lat, tiered_results = _timed_queries(tiered_side, queries)
        raw_lat, raw_results = _timed_queries(raw_side, queries)
        for got, expected in zip(tiered_results, raw_results):
            _require(
                got == expected,
                "tiered range() diverged from the raw window on an "
                "identical stream",
            )
        return tiered_lat, raw_lat

    recent_tiered, recent_raw = _ab(recent_queries)
    cold_tiered, cold_raw = _ab(cold_queries)

    # Aggregates: summary-answered folds must match folding the raw pairs.
    for index in (0, sensors - 1):
        t_first = streams[index][0][0]
        t_last = tiered_side[index].last_timestamp
        got = tiered_side[index].aggregate(t_first, t_last + 1.0)
        expected = raw_side[index].aggregate(t_first, t_last + 1.0)
        _require(
            got["count"] == expected["count"]
            and got["min"] == expected["min"]
            and got["max"] == expected["max"]
            and abs(got["sum"] - expected["sum"])
            <= 1e-9 * max(1.0, abs(expected["sum"])),
            "summary-answered aggregate diverged from the raw fold",
        )

    memory_reclaimed = raw_bytes / max(1, tiered_bytes)
    compression = (16.0 * sealed_points) / max(1, block_bytes)
    return {
        "sensors": sensors,
        "points_per_sensor": points,
        "block_size": BLOCK_SIZE,
        "raw_live_bytes": raw_bytes,
        "tiered_live_bytes": tiered_bytes,
        "raw_point_bytes": RAW_POINT_BYTES,
        "block_bytes": block_bytes,
        "sealed_points": sealed_points,
        "blocks_sealed": sum(s.sealed_blocks for s in tiered_side),
        "memory_reclaimed_x": round(memory_reclaimed, 2),
        "compression_ratio": round(compression, 2),
        "bytes_per_point": round(block_bytes / max(1, sealed_points), 3),
        "append_us_per_point_raw": round(
            raw_fill / (sensors * points) * 1e6, 3
        ),
        "append_us_per_point_tiered": round(
            tiered_fill / (sensors * points) * 1e6, 3
        ),
        "recent_scan_us_raw": round(recent_raw * 1e6, 2),
        "recent_scan_us_tiered": round(recent_tiered * 1e6, 2),
        "recent_scan_ratio": round(recent_tiered / max(1e-9, recent_raw), 3),
        "cold_scan_us_raw": round(cold_raw * 1e6, 2),
        "cold_scan_us_tiered": round(cold_tiered * 1e6, 2),
        "cold_scan_ratio": round(cold_tiered / max(1e-9, cold_raw), 3),
    }


class _RoundRobin:
    """Distributes a query list across a fleet of series, round-robin."""

    def __init__(self, side: list[TieredSeries]) -> None:
        self._side = side
        self._next = 0

    def range(self, start: float, end: float) -> list:
        series = self._side[self._next % len(self._side)]
        self._next += 1
        return series.range(start, end)


def _run_platform_leg(sensors: int, waves: int) -> dict:
    """Full-stack run: ingest → channels → sealed blocks → archive."""
    from .instances import M5_LARGE
    from .workload import build_deployment, provision

    capacity = 512
    block_size = 64
    deployment = build_deployment(
        [M5_LARGE],
        seed=23,
        window_capacity=capacity,
        block_size=block_size,
    )
    scheduler = deployment.scheduler
    platform = deployment.platform
    # Wave-sized evictions trickle out as loose pairs (a 10-point batch
    # never swallows a whole window block), so give the archive a seal
    # threshold the run actually crosses.
    from ..storage.archive import ArchiveLog

    platform.archive = ArchiveLog(block_size=128)
    platform.runtime.archive = platform.archive
    scheduler.run_until_complete(
        provision(deployment, sensors, sensors_per_org=max(1, sensors))
    )
    deployment.runtime.start()
    sensor_ids = deployment.report.sensor_ids
    points_per_wave = 10

    async def drive() -> None:
        walks = {
            sensor_id: {
                channel: quantized_walk(
                    seed=1000 + index * 2 + channel,
                    count=waves * points_per_wave,
                )
                for channel in (0, 1)
            }
            for index, sensor_id in enumerate(sensor_ids)
        }
        from ..shm.platform import channel_id_for

        for wave in range(waves):
            lo = wave * points_per_wave
            for sensor_id in sensor_ids:
                batches = {
                    channel_id_for(sensor_id, channel): walks[sensor_id][
                        channel
                    ][lo:lo + points_per_wave]
                    for channel in (0, 1)
                }
                await platform.ingest(sensor_id, batches)
            await scheduler.sleep(1.0)

    scheduler.run_until_complete(drive())
    total_per_channel = waves * points_per_wave

    # Conservation: every ingested point is either retained in the tiered
    # window or archived — nothing lost, nothing duplicated.
    async def audit() -> dict:
        from ..shm.platform import channel_id_for

        archived = 0
        retained = 0
        for sensor_id in sensor_ids:
            for channel in (0, 1):
                channel_id = channel_id_for(sensor_id, channel)
                depth = await platform.runtime.ref(
                    "PhysicalSensorChannel", channel_id
                ).depth()
                in_archive = len(
                    platform.archive.read_range(
                        channel_id, 0.0, float("inf")
                    )
                )
                _require(
                    depth + in_archive == total_per_channel,
                    f"channel {channel_id}: retained {depth} + archived "
                    f"{in_archive} != ingested {total_per_channel}",
                )
                archived += in_archive
                retained += depth
        stats = await platform.storage_stats(sensor_ids[0])
        return {"archived": archived, "retained": retained, "sensor0": stats}

    audited = scheduler.run_until_complete(audit())
    metrics = deployment.runtime.metrics.cluster_totals()
    scheduler.run_until_complete(deployment.runtime.stop())
    archive = platform.archive
    sensor0 = audited["sensor0"]
    return {
        "sensors": sensors,
        "waves": waves,
        "window_capacity": capacity,
        "block_size": block_size,
        "points_ingested": total_per_channel * 2 * sensors,
        "points_retained": audited["retained"],
        "points_archived": audited["archived"],
        "archive_block_bytes": archive.block_bytes,
        "archive_sealed_records": archive.sealed_records,
        "archive_blocks_sealed": archive.blocks_sealed,
        "sensor_live_bytes": sensor0["live_bytes"],
        "sensor_raw_equivalent_bytes": sensor0["raw_equivalent_bytes"],
        "storage_block_bytes": int(metrics.get("storage.block_bytes", 0.0)),
        "storage_blocks_sealed": int(
            metrics.get("storage.blocks_sealed", 0.0)
        ),
        "storage_compression_ratio": round(
            metrics.get("storage.compression_ratio", 0.0), 2
        ),
    }


def build_tsbench(smoke: bool = False) -> dict:
    """Run both legs, assert the storage invariants, return the payload."""
    if smoke:
        engine = _run_engine_leg(sensors=8, points=4196, query_count=200)
        platform = _run_platform_leg(sensors=6, waves=80)
    else:
        engine = _run_engine_leg(sensors=32, points=16484, query_count=400)
        platform = _run_platform_leg(sensors=20, waves=150)

    _require(
        engine["memory_reclaimed_x"] >= MEMORY_RECLAIM_FLOOR,
        f"memory reclaimed {engine['memory_reclaimed_x']}x is below the "
        f"{MEMORY_RECLAIM_FLOOR}x floor",
    )
    _require(
        engine["compression_ratio"] >= COMPRESSION_FLOOR,
        f"sealed-tier compression {engine['compression_ratio']}x is below "
        f"the {COMPRESSION_FLOOR}x floor",
    )
    _require(
        engine["recent_scan_ratio"] <= RECENT_SCAN_CEILING,
        f"recent-range scans are {engine['recent_scan_ratio']}x the raw "
        f"window (ceiling {RECENT_SCAN_CEILING}x)",
    )
    _require(
        platform["points_archived"] > 0 and platform["archive_blocks_sealed"] > 0,
        "platform leg never overflowed into the block-backed archive",
    )
    _require(
        platform["storage_compression_ratio"] >= COMPRESSION_FLOOR,
        f"cluster probe compression {platform['storage_compression_ratio']}x "
        f"is below the {COMPRESSION_FLOOR}x floor",
    )
    return {
        "bench": "tsblocks",
        "mode": "smoke" if smoke else "full",
        "title": "Tiered time-series storage (hot head + compressed blocks)",
        "series": {"engine": engine, "platform": platform},
        "summary": {
            "memory_reclaimed_x": engine["memory_reclaimed_x"],
            "compression_ratio": engine["compression_ratio"],
            "bytes_per_point": engine["bytes_per_point"],
            "recent_scan_ratio": engine["recent_scan_ratio"],
            "cold_scan_ratio": engine["cold_scan_ratio"],
            "archive_blocks_sealed": platform["archive_blocks_sealed"],
        },
    }


def gate_tsblocks(fresh: dict, baseline: dict) -> list[str]:
    """CI gate: deterministic ratios and counts against the committed file.

    Wall-clock latencies vary with the host, so the gate bounds only the
    tiered/raw *ratio* (host speed cancels) plus the deterministic
    compression and memory numbers, which a healthy checkout reproduces
    exactly.
    """
    failures: list[str] = []
    fresh_engine = fresh["series"]["engine"]
    base_engine = baseline["series"]["engine"]
    for key in ("memory_reclaimed_x", "compression_ratio"):
        floor = base_engine[key] * (1 - RATIO_DROP_TOLERANCE)
        if fresh_engine[key] < floor:
            failures.append(
                f"engine {key} {fresh_engine[key]} fell below gate "
                f"{floor:.2f} (baseline {base_engine[key]})"
            )
    if fresh_engine["recent_scan_ratio"] > RECENT_SCAN_CEILING:
        failures.append(
            f"engine recent_scan_ratio {fresh_engine['recent_scan_ratio']} "
            f"exceeds the {RECENT_SCAN_CEILING}x ceiling"
        )
    for key in ("blocks_sealed", "sealed_points"):
        if fresh_engine[key] != base_engine[key]:
            failures.append(
                f"engine {key} {fresh_engine[key]} != baseline "
                f"{base_engine[key]} (deterministic sealing drifted)"
            )
    fresh_platform = fresh["series"]["platform"]
    base_platform = baseline["series"]["platform"]
    for key in ("points_ingested", "points_archived", "archive_blocks_sealed"):
        if fresh_platform[key] != base_platform[key]:
            failures.append(
                f"platform {key} {fresh_platform[key]} != baseline "
                f"{base_platform[key]} (deterministic run drifted)"
            )
    return failures
