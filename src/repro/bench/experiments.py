"""Experiment drivers for every figure in the paper's evaluation (§6).

Each ``run_figN`` function regenerates the corresponding figure's series
and returns a structured result; :mod:`repro.bench.report` renders them as
the tables recorded in EXPERIMENTS.md.  Ablation drivers cover the design
choices §4-§5 call out (placement, durability, actor granularity,
constraint enforcement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aodb.database import AodbDatabase
from ..cattle.platform import CattlePlatform
from ..kernel.scheduler import Scheduler
from ..net.latency import ConstantLatency
from ..net.network import Network
from ..runtime.config import RuntimeConfig
from ..runtime.persistence import WritePolicy
from ..runtime.runtime import AodbRuntime
from ..storage.dynamo import ProvisionedKVStore
from .calibration import (
    LAN_LATENCY_SECONDS,
    average_insert_cost,
    calibrated_config,
    saturation_request_rate,
)
from .instances import M5_LARGE, M5_XLARGE, InstanceType
from .metrics import Summary
from .workload import Deployment, LoadConfig, build_deployment, provision, run_load

DEFAULT_DURATION = 8.0
FIG7_SENSORS_PER_SERVER = 2100  # the paper's derived baseline (§6.2)


@dataclass
class FigPoint:
    """One x-position of a figure: offered load plus measured series."""

    sensors: int
    servers: int
    offered_rps: float
    throughput: float
    throughput_std: float
    utilization: float
    insert: Summary | None = None
    live: Summary | None = None
    raw: Summary | None = None
    metrics: dict = field(default_factory=dict)


@dataclass
class FigResult:
    """A regenerated figure: its points plus reproduction context."""

    figure: str
    title: str
    points: list[FigPoint] = field(default_factory=list)
    notes: dict = field(default_factory=dict)


def _run_point(
    silos: list[InstanceType],
    sensors: int,
    duration: float,
    with_queries: bool,
    seed: int,
    fast_path: bool = True,
) -> FigPoint:
    deployment = build_deployment(silos, seed=seed, fast_path=fast_path)
    deployment.scheduler.run_until_complete(provision(deployment, sensors))
    load = LoadConfig(sensors=sensors, duration=duration, with_queries=with_queries)
    result = deployment.scheduler.run_until_complete(run_load(deployment, load))
    insert = result.summary("insert")
    return FigPoint(
        sensors=sensors,
        servers=len(silos),
        offered_rps=float(sensors),
        throughput=insert.throughput_mean if insert else 0.0,
        throughput_std=insert.throughput_std if insert else 0.0,
        utilization=result.mean_utilization,
        insert=insert,
        live=result.summary("live"),
        raw=result.summary("raw"),
        metrics=result.metrics,
    )


def run_fig6(
    sensor_counts: tuple[int, ...] = (
        300, 600, 900, 1200, 1500, 1800, 2100, 2400, 3000, 3600,
    ),
    duration: float = DEFAULT_DURATION,
    seed: int = 6,
    fast_path: bool = True,
) -> FigResult:
    """Figure 6: single-server (m5.large) ingestion throughput.

    Expectation (seed model, ``fast_path=False``): throughput tracks the
    offered load linearly and saturates near 1,800 requests/second as
    utilization reaches 100%.  With the ingestion fast path the saturation
    point moves up (dispatch overhead amortized across envelopes) while the
    linear region is unchanged.
    """
    result = FigResult(
        "fig6",
        "Single-server throughput (one m5.large silo)",
        notes={
            "paper_saturation_rps": 1800,
            "predicted_saturation_rps": saturation_request_rate(M5_LARGE.capacity),
            "insert_cost_core_ms": average_insert_cost() * 1000,
            "fast_path": fast_path,
        },
    )
    for sensors in sensor_counts:
        result.points.append(
            _run_point(
                [M5_LARGE], sensors, duration,
                with_queries=False, seed=seed, fast_path=fast_path,
            )
        )
    return result


def run_fig7(
    scale_factors: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    duration: float = DEFAULT_DURATION,
    seed: int = 7,
    fast_path: bool = True,
) -> FigResult:
    """Figure 7: scale-out over m5.xlarge silos, 2,100 sensors per server.

    Expectation: close-to-linear throughput in the scale factor (>10k req/s
    at SF 5, >16k at SF 8), since organizations are independent.
    """
    result = FigResult(
        "fig7",
        "Scale-out throughput (2,100 sensors per m5.xlarge silo)",
        notes={
            "sensors_per_server": FIG7_SENSORS_PER_SERVER,
            "fast_path": fast_path,
        },
    )
    for factor in scale_factors:
        result.points.append(
            _run_point(
                [M5_XLARGE] * factor,
                FIG7_SENSORS_PER_SERVER * factor,
                duration,
                with_queries=False,
                seed=seed,
                fast_path=fast_path,
            )
        )
    return result


def _latency_fig(
    figure: str,
    title: str,
    sensor_counts: tuple[int, ...],
    duration: float,
    seed: int,
) -> FigResult:
    result = FigResult(figure, title, notes={"server": "m5.xlarge", "mix": "98/1/1"})
    for sensors in sensor_counts:
        result.points.append(
            _run_point([M5_XLARGE], sensors, duration, with_queries=True, seed=seed)
        )
    return result


def run_fig8(
    sensor_counts: tuple[int, ...] = (500, 1000, 1500, 2000),
    duration: float = DEFAULT_DURATION,
    seed: int = 8,
) -> FigResult:
    """Figure 8: latency percentiles of raw sensor-channel range requests.

    Expectation: percentiles grow with load; tails stay moderate (median
    well under 0.5 s even at 2,000 sensors); 99.9p smallest at 500 sensors.
    """
    return _latency_fig(
        "fig8",
        "Raw data request latency percentiles (one m5.xlarge, queries on)",
        sensor_counts,
        duration,
        seed,
    )


def run_fig9(
    sensor_counts: tuple[int, ...] = (500, 1000, 1500, 2000),
    duration: float = DEFAULT_DURATION,
    seed: int = 9,
) -> FigResult:
    """Figure 9: latency percentiles of organization live-data requests.

    Expectation: slower than raw requests at matching load (a ~210-channel
    fan-out versus a single-actor read), but high percentiles still under
    ~1 s at 2,000 sensors.
    """
    return _latency_fig(
        "fig9",
        "Live data request latency percentiles (one m5.xlarge, queries on)",
        sensor_counts,
        duration,
        seed,
    )


# ---------------------------------------------------------------------------
# Ablations (design choices from §4 and §5)
# ---------------------------------------------------------------------------


@dataclass
class AblationResult:
    """A named comparison of configurations."""

    name: str
    rows: list[dict] = field(default_factory=list)
    notes: dict = field(default_factory=dict)


def run_placement_ablation(
    sensors: int = 1200,
    servers: int = 4,
    duration: float = 6.0,
    seed: int = 41,
) -> AblationResult:
    """§5: random vs. prefer-local placement of channels.

    With random placement the sensor→channel hop usually crosses silos;
    prefer-local keeps it loopback.  We compare remote-message fraction and
    insert latency.  ``sensors`` should give an organization count
    divisible by ``servers`` so tenant partitioning is balanced and the
    comparison isolates placement.
    """
    from ..shm.channel import PhysicalSensorChannel, VirtualSensorChannel

    result = AblationResult(
        "placement",
        notes={"sensors": sensors, "servers": servers},
    )
    for strategy in ("prefer_local", "random"):
        original = PhysicalSensorChannel.placement
        original_v = VirtualSensorChannel.placement
        PhysicalSensorChannel.placement = strategy
        VirtualSensorChannel.placement = strategy
        try:
            deployment = build_deployment([M5_XLARGE] * servers, seed=seed)
            deployment.scheduler.run_until_complete(provision(deployment, sensors))
            load = LoadConfig(sensors=sensors, duration=duration)
            run = deployment.scheduler.run_until_complete(run_load(deployment, load))
        finally:
            PhysicalSensorChannel.placement = original
            VirtualSensorChannel.placement = original_v
        stats = deployment.runtime.network.stats
        insert = run.summary("insert")
        result.rows.append(
            {
                "strategy": strategy,
                "remote_fraction": stats.remote_messages / max(1, stats.messages),
                "insert_p50": insert.p50 if insert else 0.0,
                "insert_p99": insert.p99 if insert else 0.0,
                "throughput": insert.throughput_mean if insert else 0.0,
            }
        )
    return result


def run_durability_ablation(
    sensors: int = 50,
    duration: float = 6.0,
    write_capacity: float = 200.0,
    seed: int = 42,
) -> AblationResult:
    """§5 durability: write-through vs. interval vs. on-shutdown.

    The paper: writing state on every request would need "200 write
    requests every second" against the provisioned DynamoDB capacity.  We
    measure actual storage writes (and throttling) under each policy.
    """
    from ..shm.channel import PhysicalSensorChannel

    result = AblationResult(
        "durability",
        notes={
            "sensors": sensors,
            "provisioned_wcu": write_capacity,
            "paper_quote": "200 write requests every second for 200 channels",
        },
    )
    policies = [
        ("write_through", WritePolicy.WRITE_THROUGH, None),
        ("interval_5s", WritePolicy.INTERVAL, 5.0),
        ("on_deactivate", WritePolicy.ON_DEACTIVATE, None),
    ]
    for label, policy, interval in policies:
        original_policy = PhysicalSensorChannel.write_policy
        original_interval = PhysicalSensorChannel.write_interval_seconds
        PhysicalSensorChannel.write_policy = policy
        if interval is not None:
            PhysicalSensorChannel.write_interval_seconds = interval
        try:
            scheduler = Scheduler()
            store = ProvisionedKVStore(
                scheduler,
                read_capacity_units=200.0,
                write_capacity_units=write_capacity,
                on_overload="delay",
            )
            config = calibrated_config(seed)
            network = Network(scheduler, lan=ConstantLatency(LAN_LATENCY_SECONDS))
            runtime = AodbRuntime(
                scheduler, config=config, network=network, grain_storage=store
            )
            runtime.add_silo(
                "silo-0",
                cores=M5_XLARGE.cores,
                speed=M5_XLARGE.speed,
                instance_type=M5_XLARGE.name,
            )
            database = AodbDatabase(runtime)
            from ..shm.platform import ShmPlatform

            platform = ShmPlatform(
                database, window_capacity=256, enable_aggregation=False
            )
            deployment = Deployment(scheduler, runtime, database, platform, runtime.rng)
            scheduler.run_until_complete(provision(deployment, sensors))
            writes_before = store.writes
            load = LoadConfig(sensors=sensors, duration=duration)
            run = scheduler.run_until_complete(run_load(deployment, load))
            writes_during_run = store.writes - writes_before
            # Shutdown flushes remaining dirty state (the paper's configuration).
            scheduler.run_until_complete(runtime.stop())
            writes_at_shutdown = store.writes - writes_before - writes_during_run
            insert = run.summary("insert")
            result.rows.append(
                {
                    "policy": label,
                    "writes_during_run": writes_during_run,
                    "writes_per_second": writes_during_run / duration,
                    "writes_at_shutdown": writes_at_shutdown,
                    "insert_p50": insert.p50 if insert else 0.0,
                    "insert_p99": insert.p99 if insert else 0.0,
                }
            )
        finally:
            PhysicalSensorChannel.write_policy = original_policy
            PhysicalSensorChannel.write_interval_seconds = original_interval
    return result


def _cattle_database(seed: int) -> tuple[Scheduler, CattlePlatform, AodbRuntime]:
    scheduler = Scheduler()
    config = RuntimeConfig(
        default_method_cost=0.0002,
        activation_cost=0.0005,
        copy_messages=False,
        seed=seed,
    )
    network = Network(scheduler, lan=ConstantLatency(LAN_LATENCY_SECONDS))
    runtime = AodbRuntime(scheduler, config=config, network=network)
    runtime.add_silo("silo-0", cores=4)
    runtime.add_silo("silo-1", cores=4)
    database = AodbDatabase(runtime)
    return scheduler, CattlePlatform(database), runtime


def run_granularity_ablation(
    cows: int = 100,
    cuts_per_cow: int = 4,
    info_requests_per_cut: int = 5,
    seed: int = 43,
) -> AblationResult:
    """§4.3: meat cuts as actors (model A) vs. versioned objects (model B).

    Drives the same chain through both models and compares actor messages,
    activations and virtual time — quantifying the communication-vs-copying
    trade-off the paper discusses.
    """
    result = AblationResult(
        "granularity",
        notes={
            "cows": cows,
            "cuts_per_cow": cuts_per_cow,
            "info_requests_per_cut": info_requests_per_cut,
        },
    )

    async def drive_model_a(platform: CattlePlatform):
        runtime = platform.runtime
        await platform.register_farmer("farm-1", "Farm")
        await platform.register_slaughterhouse("sh-1", "SH")
        await platform.register_distributor("dist-1", "Dist")
        await platform.register_retailer("ret-1", "Ret")
        sh = runtime.ref("Slaughterhouse", "sh-1")
        dist = runtime.ref("Distributor", "dist-1")
        for index in range(cows):
            cow_id = f"cow-{index}"
            await platform.register_cow(cow_id, "farm-1")
            cut_ids = await sh.slaughter_cow(cow_id, float(index), cuts=cuts_per_cow)
            delivery_id = await dist.create_delivery(cut_ids, "sh-1", "ret-1")
            delivery = runtime.ref("Delivery", delivery_id)
            await delivery.start(float(index) + 0.1)
            # Downstream parties repeatedly ask for cut information while
            # the cuts are in transit: model A pays one message per ask.
            for cut_id in cut_ids:
                for _ in range(info_requests_per_cut):
                    await dist.cut_tracking(cut_id)
            await delivery.complete(float(index) + 0.2)

    async def drive_model_b(platform: CattlePlatform):
        runtime = platform.runtime
        await platform.register_farmer("farm-1", "Farm")
        await runtime.ref("SlaughterhouseB", "sh-1").setup("SH")
        await runtime.ref("DistributorB", "dist-1").setup("Dist")
        await runtime.ref("RetailerB", "ret-1").setup("Ret")
        sh = runtime.ref("SlaughterhouseB", "sh-1")
        dist = runtime.ref("DistributorB", "dist-1")
        for index in range(cows):
            cow_id = f"cow-{index}"
            await platform.register_cow(cow_id, "farm-1")
            cut_ids = await sh.slaughter_cow(cow_id, float(index), cuts=cuts_per_cow)
            await sh.ship_cuts(cut_ids, "dist-1", float(index) + 0.1)
            # Model B answers the same asks from the distributor's own state.
            for cut_id in cut_ids:
                for _ in range(info_requests_per_cut):
                    await dist.local_info(cut_id)
            await dist.deliver_cuts(cut_ids, "ret-1", float(index) + 0.2)

    drivers = (("model_a_actors", drive_model_a), ("model_b_objects", drive_model_b))
    for label, driver in drivers:
        scheduler, platform, runtime = _cattle_database(seed)
        start_events = scheduler.events_processed
        scheduler.run_until_complete(driver(platform))
        result.rows.append(
            {
                "model": label,
                "virtual_seconds": scheduler.now,
                "messages": runtime.stats.asks + runtime.stats.tells,
                "activations": runtime.stats.activations_created,
                "events": scheduler.events_processed - start_events,
            }
        )
    return result


def run_constraints_ablation(
    transfers: int = 200,
    contention_farmers: int = 4,
    seed: int = 44,
) -> AblationResult:
    """§4.4: transaction vs. workflow vs. naive direct updates.

    Measures virtual time per ownership transfer and whether the
    herd/ownership invariant survived concurrent transfers.
    """
    result = AblationResult(
        "constraints",
        notes={"transfers": transfers, "farmers": contention_farmers},
    )

    async def setup(platform: CattlePlatform):
        for farmer in range(contention_farmers):
            await platform.register_farmer(f"farm-{farmer}", f"Farm {farmer}")
        for cow in range(transfers):
            await platform.register_cow(f"cow-{cow}", "farm-0")

    async def check_invariant(platform: CattlePlatform) -> bool:
        # Every cow's owner record must match exactly one herd membership.
        runtime = platform.runtime
        herds = {}
        for farmer in range(contention_farmers):
            herds[f"farm-{farmer}"] = set(
                await runtime.ref("Farmer", f"farm-{farmer}").herd()
            )
        for cow in range(transfers):
            cow_id = f"cow-{cow}"
            owner = (await runtime.ref("Cow", cow_id).describe())["owner_id"]
            holders = [fid for fid, herd in herds.items() if cow_id in herd]
            if holders != [owner]:
                return False
        return True

    async def run_transactional(platform: CattlePlatform):
        tasks = [
            platform.sell_cow_transactional(
                f"cow-{cow}",
                "farm-0",
                f"farm-{1 + cow % (contention_farmers - 1)}",
                1.0,
            )
            for cow in range(transfers)
        ]
        return await platform.runtime.scheduler.gather(
            [platform.runtime.scheduler.spawn(t) for t in tasks]
        )

    async def run_workflow(platform: CattlePlatform):
        tasks = [
            platform.sell_cow_workflow(
                f"cow-{cow}",
                "farm-0",
                f"farm-{1 + cow % (contention_farmers - 1)}",
                1.0,
            )
            for cow in range(transfers)
        ]
        return await platform.runtime.scheduler.gather(
            [platform.runtime.scheduler.spawn(t) for t in tasks]
        )

    async def run_direct(platform: CattlePlatform):
        # Fire-and-forget updates to each side independently: fast, but no
        # atomicity and no ordering guarantees.
        runtime = platform.runtime
        for cow in range(transfers):
            buyer = f"farm-{1 + cow % (contention_farmers - 1)}"
            runtime.ref("Farmer", "farm-0").tell("remove_cow", f"cow-{cow}")
            runtime.ref("Farmer", buyer).tell("add_cow", f"cow-{cow}")
            runtime.ref("Cow", f"cow-{cow}").tell("set_owner", buyer, 1.0)
        await runtime.scheduler.sleep(5.0)

    flavours = [
        ("transaction", run_transactional),
        ("workflow", run_workflow),
        ("direct_tells", run_direct),
    ]
    for label, driver in flavours:
        scheduler, platform, runtime = _cattle_database(seed)
        scheduler.run_until_complete(setup(platform))
        started = scheduler.now
        scheduler.run_until_complete(driver(platform))
        elapsed = scheduler.now - started
        consistent = scheduler.run_until_complete(check_invariant(platform))
        result.rows.append(
            {
                "flavour": label,
                "virtual_seconds": elapsed,
                "per_transfer_ms": elapsed / transfers * 1000,
                "messages": runtime.stats.asks + runtime.stats.tells,
                "invariant_holds": consistent,
                "commits": platform.db.stats_commits,
                "aborts": platform.db.stats_aborts,
            }
        )
    return result


def run_cattle_scaling(
    cow_counts: tuple[int, ...] = (1000, 2500, 5000, 6000),
    duration: float = 6.0,
    seed: int = 45,
) -> AblationResult:
    """Extension: collar-ingestion scaling for case study 2.

    The paper evaluates only the SHM platform; this experiment drives the
    cattle platform with the same methodology — one collar reading per cow
    per second in synchronized waves against one m5.large-class silo — and
    shows the same linear-then-saturate shape (Cow.record_reading is
    calibrated at 0.4 core-ms, so two cores saturate at ~5,000 cows).
    """
    from ..cattle.geo import rectangle_fence
    from .metrics import LatencyRecorder

    result = AblationResult(
        "cattle_scaling",
        notes={
            "reading_cost_core_ms": 0.4,
            "predicted_saturation_cows": int(2.0 / 0.0004),
        },
    )
    for cows in cow_counts:
        scheduler = Scheduler()
        config = RuntimeConfig(
            default_method_cost=0.0001,
            activation_cost=0.0005,
            method_costs={("Cow", "record_reading"): 0.0004},
            copy_messages=False,
            idle_timeout=3600.0,
            collection_interval=600.0,
            seed=seed,
        )
        network = Network(scheduler, lan=ConstantLatency(LAN_LATENCY_SECONDS))
        runtime = AodbRuntime(scheduler, config=config, network=network)
        runtime.add_silo("silo-0", cores=M5_LARGE.cores, speed=M5_LARGE.speed,
                         instance_type=M5_LARGE.name)
        platform = CattlePlatform(AodbDatabase(runtime), with_model_b=False)
        recorder = LatencyRecorder()
        fence = rectangle_fence("pasture", 55.0, 11.0, 56.0, 12.0).as_dict()

        async def provision_herds():
            farmers = max(1, cows // 100)
            for farmer in range(farmers):
                await platform.register_farmer(f"farm-{farmer}", f"Farm {farmer}")
            for cow in range(cows):
                cow_id = f"cow-{cow}"
                await platform.register_cow(cow_id, f"farm-{cow % farmers}")
                await runtime.ref("Cow", cow_id).set_fence(fence)
            for silo in runtime.silos():
                silo.cpu.reset_accounting()

        async def drive():
            start = scheduler.now
            stop = start + duration

            async def one_reading(cow_id, wave_time):
                sent = scheduler.now
                await runtime.ref("Cow", cow_id).record_reading(
                    {
                        "timestamp": wave_time,
                        "latitude": 55.5,
                        "longitude": 11.5,
                        "activity": 0.5,
                        "temperature": 38.5,
                    }
                )
                recorder.record("insert", sent, scheduler.now - sent)

            while scheduler.now < stop:
                wave_time = scheduler.now
                tasks = [
                    scheduler.spawn(one_reading(f"cow-{cow}", wave_time))
                    for cow in range(cows)
                ]
                await scheduler.gather(tasks)
                next_wave = wave_time + 1.0
                if scheduler.now < next_wave:
                    await scheduler.sleep(next_wave - scheduler.now)
            return start, stop

        scheduler.run_until_complete(provision_herds())
        start, stop = scheduler.run_until_complete(drive())
        summary = recorder.summarize("insert", 1.0, start, stop)
        silo = runtime.silos()[0]
        result.rows.append(
            {
                "cows": cows,
                "offered_rps": cows,
                "throughput": summary.throughput_mean if summary else 0.0,
                "p50_ms": (summary.p50 if summary else 0.0) * 1000,
                "p99_ms": (summary.p99 if summary else 0.0) * 1000,
                "utilization": silo.cpu.utilization(),
            }
        )
    return result
