"""Simulator calibration against the paper's reported operating points.

Exactly one quantity is *fitted*: the CPU cost of one sensor insert request,
chosen so that an m5.large (capacity 2.0 core-s/s) saturates near the
paper's ~1,800 requests/second (Figure 6).  Everything else — scale-out
linearity, latency percentiles, the raw-vs-live gap — emerges from the
queueing model.

Cost budget per insert request (one sensor, two physical channels,
10 points each):

====================  =========  =============================================
message               core-ms    notes
====================  =========  =============================================
Sensor.ingest           0.35     batch validation + fan-out
Channel.ingest (x2)     0.35     window append, alert check, forwards
VC.ingest_input (x2)    0.30     only every 10th sensor has a virtual channel
====================  =========  =============================================

Average per request: 0.35 + 2x0.35 + 0.1x(2x0.30) = **1.11 core-ms**
=> m5.large saturation at 2.0 / 0.00111 = ~1,800 req/s, matching Figure 6.

The paper's derived numbers then follow by its own arithmetic: 80% target
utilization => 1,400 req/s per m5.large; x1.5 ECU => **2,100 sensors per
m5.xlarge**, the Figure 7 baseline.
"""

from __future__ import annotations

from ..runtime.config import RuntimeConfig

# -- fitted constant ------------------------------------------------------------

SENSOR_INGEST_COST = 0.00035
CHANNEL_INGEST_COST = 0.00035
VIRTUAL_INGEST_COST = 0.00030

# Of each method's cost, the share that is per-message *dispatch* overhead
# (deserialization, scheduling, envelope handling) rather than application
# work — roughly 40% of a small message's service time, in line with the
# RPC-overhead share Orleans reports for sub-millisecond grain calls.  The
# ingestion fast path amortizes exactly this share across an envelope's
# cohort: a K-message envelope pays one dispatch, so each member charges
# (cost - overhead) + overhead/K.  With batching off (cohort 1) charges are
# bit-identical to the seed model, keeping the Figure 6 calibration intact.
DISPATCH_OVERHEAD_COST = 0.00015

# Envelope window on the calibrated fast path (virtual seconds).  1 ms is
# the sweet spot measured in EXPERIMENTS.md's batch-window sweep: wide
# enough that the CPU-serialized sensor→channel fan-out forms cohorts
# (~5 sends/ms at saturation), narrow enough to be invisible next to the
# hundreds of milliseconds of queueing delay at the saturation point.
BATCH_MAX_DELAY = 0.001

# -- derived (not fitted) ------------------------------------------------------

# Query-side costs: a raw range read scans one channel window; a live-data
# request fans out to ~210 channel `latest` calls plus the organization's
# own gather work.
CHANNEL_LATEST_COST = 0.00010  # per-RPC overhead dominates a tiny read
CHANNEL_RANGE_COST = 0.0010
ORG_LIVE_DATA_COST = 0.0015  # gather + assembly of ~210 channel replies
ORG_RECORD_ALERT_COST = 0.0002
AGGREGATOR_INGEST_COST = 0.00010

# Lifecycle costs.
ACTIVATION_COST = 0.0005
DEFAULT_METHOD_COST = 0.0001

# Network: one LAN hop between cluster endpoints (client <-> silo,
# silo <-> silo); loopback is free.
LAN_LATENCY_SECONDS = 0.0005

VIRTUAL_CHANNEL_FRACTION = 0.1  # every 10th sensor (paper §6.1)


def average_insert_cost() -> float:
    """Average core-seconds consumed by one insert request."""
    return (
        SENSOR_INGEST_COST
        + 2 * CHANNEL_INGEST_COST
        + VIRTUAL_CHANNEL_FRACTION * 2 * VIRTUAL_INGEST_COST
    )


def saturation_request_rate(capacity_core_seconds: float) -> float:
    """Predicted insert saturation throughput for a given silo capacity."""
    return capacity_core_seconds / average_insert_cost()


def shm_method_costs() -> dict[tuple[str, str], float]:
    """The calibrated per-method cost table for the SHM platform."""
    return {
        ("Sensor", "ingest"): SENSOR_INGEST_COST,
        ("PhysicalSensorChannel", "ingest"): CHANNEL_INGEST_COST,
        ("VirtualSensorChannel", "ingest_input"): VIRTUAL_INGEST_COST,
        ("PhysicalSensorChannel", "latest"): CHANNEL_LATEST_COST,
        ("VirtualSensorChannel", "latest"): CHANNEL_LATEST_COST,
        ("PhysicalSensorChannel", "query_range"): CHANNEL_RANGE_COST,
        ("VirtualSensorChannel", "query_range"): CHANNEL_RANGE_COST,
        ("Organization", "live_data"): ORG_LIVE_DATA_COST,
        ("Organization", "record_alert"): ORG_RECORD_ALERT_COST,
        ("Aggregator", "ingest"): AGGREGATOR_INGEST_COST,
    }


def calibrated_config(seed: int = 0, fast_path: bool = True) -> RuntimeConfig:
    """A runtime config carrying the calibrated cost model.

    ``fast_path`` enables the ingestion fast path (adaptive delivery
    batching with dispatch-overhead amortization and group-commit
    write-behind).  ``fast_path=False`` reproduces the seed operating
    point — the Figure 6 numbers the paper reports — and is what the BENCH
    baselines record as the "seed" series.  The directory cache stays on in
    both variants: it short-circuits per-send lookup work without touching
    simulated time, so it cannot distort the seed calibration.
    """
    return RuntimeConfig(
        default_method_cost=DEFAULT_METHOD_COST,
        activation_cost=ACTIVATION_COST,
        method_costs=shm_method_costs(),
        # Benchmarks pre-verify message isolation separately; skip the
        # deep-copy overhead on the hot path so wall-clock stays sane.
        copy_messages=False,
        # Long idle timeout: the paper's sensors never go idle mid-run.
        idle_timeout=3600.0,
        collection_interval=600.0,
        seed=seed,
        enable_batching=fast_path,
        batch_max_delay=BATCH_MAX_DELAY,
        dispatch_overhead_cost=DISPATCH_OVERHEAD_COST if fast_path else 0.0,
        enable_directory_cache=True,
        enable_group_commit=fast_path,
        # Same 1 ms window as delivery batching: flushes from one wave's
        # drain collapse into shared BatchWriteItem round trips.
        group_commit_max_delay=BATCH_MAX_DELAY if fast_path else 0.0,
    )
