"""Simulator calibration against the paper's reported operating points.

Exactly one quantity is *fitted*: the CPU cost of one sensor insert request,
chosen so that an m5.large (capacity 2.0 core-s/s) saturates near the
paper's ~1,800 requests/second (Figure 6).  Everything else — scale-out
linearity, latency percentiles, the raw-vs-live gap — emerges from the
queueing model.

Cost budget per insert request (one sensor, two physical channels,
10 points each):

====================  =========  =============================================
message               core-ms    notes
====================  =========  =============================================
Sensor.ingest           0.35     batch validation + fan-out
Channel.ingest (x2)     0.35     window append, alert check, forwards
VC.ingest_input (x2)    0.30     only every 10th sensor has a virtual channel
====================  =========  =============================================

Average per request: 0.35 + 2x0.35 + 0.1x(2x0.30) = **1.11 core-ms**
=> m5.large saturation at 2.0 / 0.00111 = ~1,800 req/s, matching Figure 6.

The paper's derived numbers then follow by its own arithmetic: 80% target
utilization => 1,400 req/s per m5.large; x1.5 ECU => **2,100 sensors per
m5.xlarge**, the Figure 7 baseline.
"""

from __future__ import annotations

from ..runtime.config import RuntimeConfig

# -- fitted constant ------------------------------------------------------------

SENSOR_INGEST_COST = 0.00035
CHANNEL_INGEST_COST = 0.00035
VIRTUAL_INGEST_COST = 0.00030

# -- derived (not fitted) ------------------------------------------------------

# Query-side costs: a raw range read scans one channel window; a live-data
# request fans out to ~210 channel `latest` calls plus the organization's
# own gather work.
CHANNEL_LATEST_COST = 0.00010  # per-RPC overhead dominates a tiny read
CHANNEL_RANGE_COST = 0.0010
ORG_LIVE_DATA_COST = 0.0015  # gather + assembly of ~210 channel replies
ORG_RECORD_ALERT_COST = 0.0002
AGGREGATOR_INGEST_COST = 0.00010

# Lifecycle costs.
ACTIVATION_COST = 0.0005
DEFAULT_METHOD_COST = 0.0001

# Network: one LAN hop between cluster endpoints (client <-> silo,
# silo <-> silo); loopback is free.
LAN_LATENCY_SECONDS = 0.0005

VIRTUAL_CHANNEL_FRACTION = 0.1  # every 10th sensor (paper §6.1)


def average_insert_cost() -> float:
    """Average core-seconds consumed by one insert request."""
    return (
        SENSOR_INGEST_COST
        + 2 * CHANNEL_INGEST_COST
        + VIRTUAL_CHANNEL_FRACTION * 2 * VIRTUAL_INGEST_COST
    )


def saturation_request_rate(capacity_core_seconds: float) -> float:
    """Predicted insert saturation throughput for a given silo capacity."""
    return capacity_core_seconds / average_insert_cost()


def shm_method_costs() -> dict[tuple[str, str], float]:
    """The calibrated per-method cost table for the SHM platform."""
    return {
        ("Sensor", "ingest"): SENSOR_INGEST_COST,
        ("PhysicalSensorChannel", "ingest"): CHANNEL_INGEST_COST,
        ("VirtualSensorChannel", "ingest_input"): VIRTUAL_INGEST_COST,
        ("PhysicalSensorChannel", "latest"): CHANNEL_LATEST_COST,
        ("VirtualSensorChannel", "latest"): CHANNEL_LATEST_COST,
        ("PhysicalSensorChannel", "query_range"): CHANNEL_RANGE_COST,
        ("VirtualSensorChannel", "query_range"): CHANNEL_RANGE_COST,
        ("Organization", "live_data"): ORG_LIVE_DATA_COST,
        ("Organization", "record_alert"): ORG_RECORD_ALERT_COST,
        ("Aggregator", "ingest"): AGGREGATOR_INGEST_COST,
    }


def calibrated_config(seed: int = 0) -> RuntimeConfig:
    """A runtime config carrying the calibrated cost model."""
    return RuntimeConfig(
        default_method_cost=DEFAULT_METHOD_COST,
        activation_cost=ACTIVATION_COST,
        method_costs=shm_method_costs(),
        # Benchmarks pre-verify message isolation separately; skip the
        # deep-copy overhead on the hot path so wall-clock stays sane.
        copy_messages=False,
        # Long idle timeout: the paper's sensors never go idle mid-run.
        idle_timeout=3600.0,
        collection_interval=600.0,
        seed=seed,
    )
