"""Incident postmortem bench: a scripted netsplit read back from the recorder.

``python -m repro.bench incident`` reruns the partition bench's netsplit
scenario — three silos, one tenant pinned to the minority silo, an
eight-second split away from the system store — but with the always-on
observability stack attached: causal tracing routed through the
:class:`~repro.obs.recorder.FlightRecorder`, a
:class:`~repro.obs.health.HealthMonitor` on the stock SLO rules, and ring
journals on every subsystem.  When the minority silo loses its lease the
``silo-quarantined`` / ``heartbeat-misses`` rules fire, and each firing
transition snapshots a :class:`~repro.obs.recorder.Postmortem`: the firing
rule, the retained anomaly traces, the ring tails, and the synthesized
partition markers merged into one causally-ordered virtual-time timeline.

The default mode renders the first partition-era postmortem
(:func:`~repro.obs.recorder.render_postmortem`) plus a run summary.
``--smoke`` additionally asserts the flight-recorder contract and is wired
into CI:

- at least one alert-triggered postmortem was captured;
- its timeline is sorted by virtual time and merges events from the
  kernel/net/storage rings *and* at least one per-silo ring (cross-silo);
- the scripted partition appears as synthesized open/heal markers;
- the triggering anomaly's retained trace rides along *in full* — the
  trace's marker plus every one of its spans appear as timeline lines;
- tail-based retention kept every anomaly (quarantine parks and the
  quarantined tenant's failed/retried asks) while downsampling the bulk of
  healthy traffic, with zero tracer drops.

Violations raise :class:`IncidentInvariantError`, failing CI loudly.
"""

from __future__ import annotations

from ..errors import ReproError
from ..net.faults import PartitionInjector
from ..obs.health import HealthMonitor, default_slo_rules
from ..obs.recorder import (
    FlightRecorder,
    Postmortem,
    RecorderConfig,
    render_postmortem,
)
from ..runtime.persistence import WritePolicy
from ..storage.system_store import SystemStore
from .chaos import CHAOS_CALL_DEADLINE, CHAOS_RETRY_POLICY
from .instances import M5_LARGE
from .partition import (
    LEASE_SECONDS,
    MAJORITY_SILOS,
    MINORITY_SILO,
    PARTITION_END,
    PARTITION_START,
    REDO_LAG,
    RUN_DURATION,
)
from .workload import build_deployment, provision, synth_value

#: Health evaluation cadence: fast enough to catch the quarantine within
#: one lease, slow enough to stay a rounding error in the event count.
HEALTH_INTERVAL = 0.5

DEFAULT_SENSORS = 12
SMOKE_SENSORS = 9
DEFAULT_SEED = 404


class IncidentInvariantError(RuntimeError):
    """A flight-recorder/postmortem invariant was violated."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise IncidentInvariantError(message)


def run_incident_scenario(sensors: int, seed: int) -> dict:
    """One recorded netsplit; returns recorder, postmortems and run stats."""
    from ..shm.sensor import Sensor

    saved = (Sensor.write_policy, Sensor.write_interval_seconds)
    # The dedup watermark must survive re-placement (partition-bench rule).
    Sensor.write_policy = WritePolicy.WRITE_THROUGH
    try:
        return _run(sensors, seed)
    finally:
        Sensor.write_policy, Sensor.write_interval_seconds = saved


def _run(sensors: int, seed: int) -> dict:
    deployment = build_deployment(
        [M5_LARGE, M5_LARGE, M5_LARGE],
        seed=seed,
        dedup_ingest=True,
        tracing=True,
    )
    scheduler = deployment.scheduler
    runtime = deployment.runtime
    platform = deployment.platform

    system_store = SystemStore(scheduler, lease_seconds=LEASE_SECONDS)
    runtime.system_store = system_store
    for silo in runtime.silos():
        system_store.announce(silo.silo_id, instance_type=silo.instance_type)
    config = runtime.config
    config.default_call_deadline = CHAOS_CALL_DEADLINE
    config.default_retry_policy = CHAOS_RETRY_POLICY
    config.enable_failure_detection = True
    config.failure_detection_interval = 0.5
    config.suspicion_grace = 0.5
    config.quarantine_on_lease_loss = True
    config.redo_lag = REDO_LAG
    runtime.enable_redo_journal()

    # The observability stack under test: recorder on the tracer + rings,
    # monitor on the stock rules (goodput rule neutralized — a tiny smoke
    # fleet's ingest rate is not the signal this bench probes), alerts
    # wired to snapshot postmortems.
    monitor = HealthMonitor(
        runtime.metrics, default_slo_rules(min_ingest_rate=0.0)
    )
    recorder = FlightRecorder(
        scheduler, RecorderConfig(tail_keep_rate=0.02), seed=seed
    )
    recorder.attach(runtime, monitor)
    monitor.attach(scheduler, interval=HEALTH_INTERVAL)

    scheduler.run_until_complete(
        provision(deployment, sensors, sensors_per_org=max(1, sensors // 3))
    )
    runtime.start()
    t0 = scheduler.now

    majority_group = {*MAJORITY_SILOS, "system-store", "client"}
    runtime.network.inject_partitions(
        PartitionInjector(
            [
                (
                    [majority_group, {MINORITY_SILO}],
                    t0 + PARTITION_START,
                    t0 + PARTITION_END,
                )
            ]
        )
    )

    sensor_ids = deployment.report.sensor_ids
    counters = {"attempted": 0, "succeeded": 0}

    from ..shm.platform import channel_id_for

    async def one_insert(sensor_id: str, wave_time: float) -> None:
        batches = {
            channel_id_for(sensor_id, channel): [
                (wave_time, synth_value(channel, wave_time))
            ]
            for channel in (0, 1)
        }
        counters["attempted"] += 1
        try:
            await platform.ingest(sensor_id, batches)
        except ReproError:
            return
        counters["succeeded"] += 1

    async def fleet() -> None:
        stop = t0 + RUN_DURATION
        while scheduler.now < stop:
            wave_time = scheduler.now
            tasks = [
                scheduler.spawn(one_insert(sensor_id, wave_time))
                for sensor_id in sensor_ids
            ]
            await scheduler.gather(tasks)
            next_wave = wave_time + 1.0
            if scheduler.now < next_wave:
                await scheduler.sleep(next_wave - scheduler.now)

    scheduler.run_until_complete(fleet())
    monitor.detach()
    stats = runtime.stats
    metrics = runtime.metrics.cluster_totals()
    scheduler.run_until_complete(runtime.stop())

    return {
        "recorder": recorder,
        "monitor": monitor,
        "postmortems": list(recorder.postmortems),
        "t0": t0,
        "counters": dict(counters),
        "silos_quarantined": stats.silos_quarantined,
        "silos_rejoined": stats.silos_rejoined,
        "dropped_spans": int(metrics.get("trace.dropped_spans", 0.0)),
        "retained_traces": len(recorder.retained()),
        "anomalous_traces": len(recorder.anomalous()),
        "downsampled_traces": recorder.downsampled_traces,
        "completed_traces": recorder.completed_traces,
        "ring_entries": recorder.ring_entries(),
    }


def _partition_postmortem(result: dict) -> Postmortem:
    """The first alert-triggered postmortem captured during the split."""
    window_start = result["t0"] + PARTITION_START
    for postmortem in result["postmortems"]:
        if postmortem.trigger.get("type") == "alert" and postmortem.at >= (
            window_start
        ):
            return postmortem
    raise IncidentInvariantError(
        "no alert-triggered postmortem was captured during the partition"
    )


def _check_invariants(result: dict) -> Postmortem:
    """Assert the smoke contract; returns the audited postmortem."""
    _require(
        result["silos_quarantined"] >= 1,
        "netsplit never quarantined the minority silo",
    )
    _require(
        result["dropped_spans"] == 0,
        f"tracer dropped {result['dropped_spans']} spans with the recorder "
        "attached — tail-based retention must make drops impossible",
    )
    _require(
        result["anomalous_traces"] >= 1,
        "no anomalous trace was retained across the partition",
    )
    _require(
        result["downsampled_traces"] > result["retained_traces"],
        "retention kept more traces than it downsampled — the tail "
        "predicates are not selective",
    )
    postmortem = _partition_postmortem(result)
    times = [t for t, _source, _text in postmortem.timeline]
    _require(
        times == sorted(times),
        "postmortem timeline is not causally ordered by virtual time",
    )
    sources = postmortem.sources()
    for ring in ("kernel", "net", "storage"):
        _require(
            ring in sources,
            f"postmortem timeline has no events from the {ring!r} ring",
        )
    _require(
        any(source.startswith("silo:") for source in sources),
        "postmortem timeline has no per-silo ring events (not cross-silo)",
    )
    _require(
        any("partition-open" in text for _t, s, text in postmortem.timeline
            if s == "net"),
        "the scripted netsplit left no partition-open marker",
    )
    anomaly = next(
        (rt for rt in postmortem.traces if rt.reason != "tail-sample"), None
    )
    _require(
        anomaly is not None,
        "the postmortem carries no anomalous retained trace",
    )
    trace_source = f"trace:{anomaly.trace_id}"
    trace_lines = [
        text for _t, source, text in postmortem.timeline
        if source == trace_source
    ]
    # The retention marker plus one line per span: the *full* trace rode
    # along, not a summary.
    _require(
        len(trace_lines) == 1 + len(anomaly.spans),
        f"retained trace {anomaly.trace_id} is incomplete in the timeline "
        f"({len(trace_lines)} lines for {len(anomaly.spans)} spans)",
    )
    _require(
        any(line.startswith("retained") for line in trace_lines),
        "the retained trace's retention marker is missing from the timeline",
    )
    return postmortem


def run_incident_bench(smoke: bool = False) -> str:
    """The ``python -m repro.bench incident`` entry point."""
    sensors = SMOKE_SENSORS if smoke else DEFAULT_SENSORS
    result = run_incident_scenario(sensors, DEFAULT_SEED)
    lines: list[str] = []
    if smoke:
        postmortem = _check_invariants(result)
    else:
        postmortem = _partition_postmortem(result)
    lines.append(render_postmortem(postmortem, max_lines=60))
    lines.append("")
    lines.append(
        f"run: {result['counters']['succeeded']}/"
        f"{result['counters']['attempted']} inserts acked, "
        f"{result['silos_quarantined']} quarantine(s), "
        f"{result['silos_rejoined']} rejoin(s)"
    )
    lines.append(
        f"recorder: {result['completed_traces']} traces completed, "
        f"{result['retained_traces']} retained "
        f"({result['anomalous_traces']} anomalous), "
        f"{result['downsampled_traces']} downsampled, "
        f"{result['dropped_spans']} dropped spans, "
        f"{len(result['postmortems'])} postmortem(s), "
        f"{result['ring_entries']} ring entries"
    )
    if smoke:
        lines.append("")
        lines.append(
            "SMOKE OK: postmortem timeline ordered, cross-silo, carries the "
            "full anomaly trace"
        )
    return "\n".join(lines)
