"""Partition-tolerance bench: scripted netsplits with asserted invariants.

Where the chaos bench measures *recovery speed* after a crash, this bench
checks the *safety* contract under network partitions.  Each scenario runs
the ingestion workload over a three-silo cluster whose third silo hosts one
tenant, splits that silo away from the system store (and, in two scenarios,
from the client) mid-run, heals the split, and then audits grain storage
against the client-side ack ledger:

- **netsplit** — the minority silo self-quarantines when its lease lapses,
  scram-flushes its dirty state and rejoins after the heal.  Invariants:
  every attempted insert eventually succeeds (availability 1.0), and every
  physical channel's stored window holds *exactly* the acked points — zero
  lost updates, zero duplicates, zero dual-writer commits.
- **zombie** — the negative control: self-quarantine disabled, the client
  left able to reach the minority silo.  The stale silo keeps serving its
  tenant after the majority re-placed it, so its flushes bounce off the
  storage fence floors (``storage.fenced_writes`` must be > 0), majority
  tenants stay exact, and the minority tenant's loss is bounded by the
  partition window instead of silent corruption.
- **crash** — the minority silo dies *during* the partition.  The per-silo
  redo journal (``repro.storage.wal``) must bound the loss of
  flush-on-deactivate actors to the configured ``redo_lag``
  (``wal.replayed_records`` > 0, per-channel deficit within the redo
  bound).

Every scenario runs across several seeds; the simulator is deterministic,
so the committed ``BENCH_partition.json`` reproduces bit for bit and the CI
gate replays the smoke sweep.  Invariant violations raise
:class:`PartitionInvariantError`, failing the run loudly.
"""

from __future__ import annotations

from ..errors import ReproError
from ..net.faults import PartitionInjector
from ..runtime.persistence import WritePolicy
from ..storage.system_store import SystemStore
from .chaos import CHAOS_CALL_DEADLINE, CHAOS_RETRY_POLICY
from .instances import M5_LARGE
from .workload import build_deployment, provision, synth_value

#: Scenario timeline (virtual seconds, relative to the post-provision t0).
PARTITION_START = 6.0
PARTITION_END = 14.0
RUN_DURATION = 24.0
CRASH_AT = 7.0
LEASE_SECONDS = 2.0
REDO_LAG = 1.0

#: The silo split away from the system store; provisioning pins ``org-2``
#: (one third of the tenants) to it.
MINORITY_SILO = "silo-2"
MAJORITY_SILOS = ("silo-0", "silo-1")
MINORITY_ORG = "org-2"

#: Seed sweep: the acceptance bar is deterministic invariants across >= 2
#: seeds; full mode adds a third.
FULL_SEEDS = (101, 202, 303)
SMOKE_SEEDS = (101, 202, 303)

SCENARIOS = ("netsplit", "zombie", "crash")

#: Crash-scenario loss bound: the redo journal trails live state by at most
#: one ``redo_lag`` window, plus one wave in flight on either side.
REDO_DEFICIT_BOUND = 3


class PartitionInvariantError(RuntimeError):
    """A partition-tolerance safety invariant was violated."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise PartitionInvariantError(message)


def run_partition_scenario(scenario: str, sensors: int, seed: int) -> dict:
    """Run one scenario at one seed and return its audited metrics row.

    All scenarios pin write-through durability on the Sensor (its dedup
    watermark must survive re-placement); channels keep the paper's
    flush-on-deactivate policy — the redo journal is what protects them —
    except the zombie scenario, which switches them to a short interval
    flush so the stale silo keeps writing (and getting fenced) after the
    majority moved on.
    """
    from ..shm.channel import PhysicalSensorChannel, VirtualSensorChannel
    from ..shm.sensor import Sensor

    if scenario not in SCENARIOS:
        raise ValueError(f"unknown partition scenario {scenario!r}")
    saved = [
        (cls, cls.write_policy, cls.write_interval_seconds)
        for cls in (Sensor, PhysicalSensorChannel, VirtualSensorChannel)
    ]
    Sensor.write_policy = WritePolicy.WRITE_THROUGH
    if scenario == "zombie":
        for cls in (PhysicalSensorChannel, VirtualSensorChannel):
            cls.write_policy = WritePolicy.INTERVAL
            cls.write_interval_seconds = 0.5
    try:
        return _run(scenario, sensors, seed)
    finally:
        for cls, policy, interval in saved:
            cls.write_policy = policy
            cls.write_interval_seconds = interval


def _run(scenario: str, sensors: int, seed: int) -> dict:
    deployment = build_deployment(
        [M5_LARGE, M5_LARGE, M5_LARGE], seed=seed, dedup_ingest=True
    )
    scheduler = deployment.scheduler
    runtime = deployment.runtime
    platform = deployment.platform

    # Short-lease membership (the chaos-bench pattern): swap the system
    # store before provisioning so fences and leases come from it.
    system_store = SystemStore(scheduler, lease_seconds=LEASE_SECONDS)
    runtime.system_store = system_store
    for silo in runtime.silos():
        system_store.announce(silo.silo_id, instance_type=silo.instance_type)
    config = runtime.config
    config.default_call_deadline = CHAOS_CALL_DEADLINE
    config.default_retry_policy = CHAOS_RETRY_POLICY
    config.enable_failure_detection = True
    config.failure_detection_interval = 0.5
    config.suspicion_grace = 0.5
    config.quarantine_on_lease_loss = scenario != "zombie"
    config.redo_lag = REDO_LAG
    runtime.enable_redo_journal()

    scheduler.run_until_complete(
        provision(deployment, sensors, sensors_per_org=max(1, sensors // 3))
    )
    runtime.start()
    t0 = scheduler.now

    # The zombie scenario leaves the client able to reach the minority silo
    # (that is what makes it a zombie: it keeps serving and acking); the
    # other two cut the client off with the rest of the majority side.
    majority_group = {*MAJORITY_SILOS, "system-store"}
    if scenario != "zombie":
        majority_group.add("client")
    runtime.network.inject_partitions(
        PartitionInjector(
            [
                (
                    [majority_group, {MINORITY_SILO}],
                    t0 + PARTITION_START,
                    t0 + PARTITION_END,
                )
            ]
        )
    )

    sensor_ids = deployment.report.sensor_ids
    acked_waves = {sensor_id: 0 for sensor_id in sensor_ids}
    counters = {
        "attempted": 0,
        "succeeded": 0,
        "majority_attempted": 0,
        "majority_succeeded": 0,
    }
    errors_by_type: dict[str, int] = {}

    from ..shm.platform import channel_id_for

    async def one_insert(sensor_id: str, wave_time: float) -> None:
        batches = {
            channel_id_for(sensor_id, channel): [
                (wave_time, synth_value(channel, wave_time))
            ]
            for channel in (0, 1)
        }
        majority = not sensor_id.startswith(f"{MINORITY_ORG}/")
        counters["attempted"] += 1
        counters["majority_attempted"] += majority
        try:
            await platform.ingest(sensor_id, batches)
        except ReproError as exc:
            name = type(exc).__name__
            errors_by_type[name] = errors_by_type.get(name, 0) + 1
        else:
            counters["succeeded"] += 1
            counters["majority_succeeded"] += majority
            acked_waves[sensor_id] += 1

    async def fleet() -> None:
        stop = t0 + RUN_DURATION
        while scheduler.now < stop:
            wave_time = scheduler.now
            tasks = [
                scheduler.spawn(one_insert(sensor_id, wave_time))
                for sensor_id in sensor_ids
            ]
            await scheduler.gather(tasks)
            next_wave = wave_time + 1.0
            if scheduler.now < next_wave:
                await scheduler.sleep(next_wave - scheduler.now)

    async def crash() -> None:
        await scheduler.at(t0 + CRASH_AT)
        runtime.crash_silo(MINORITY_SILO, detected=False)

    async def drive() -> None:
        tasks = [scheduler.spawn(fleet(), name="partition-fleet")]
        if scenario == "crash":
            tasks.append(scheduler.spawn(crash(), name="partition-crash"))
        await scheduler.gather(tasks)

    scheduler.run_until_complete(drive())
    stats = runtime.stats
    metrics = runtime.metrics.cluster_totals()
    scheduler.run_until_complete(runtime.stop())

    stored = scheduler.run_until_complete(
        _audit_storage(runtime, sensor_ids)
    )
    row = _check_invariants(
        scenario, sensor_ids, acked_waves, stored, counters, stats, runtime
    )
    availability = (
        counters["succeeded"] / counters["attempted"] if counters["attempted"] else 0.0
    )
    row.update(
        {
            "sensors": sensors,
            "seed": seed,
            "scenario": scenario,
            "throughput_rps": round(counters["succeeded"] / RUN_DURATION, 2),
            "availability": round(availability, 4),
            "attempted": counters["attempted"],
            "succeeded": counters["succeeded"],
            "errors": dict(sorted(errors_by_type.items())),
            "fenced_writes": int(metrics.get("storage.fenced_writes", 0.0)),
            "wal_replayed": int(metrics.get("wal.replayed_records", 0.0)),
            "wal_appends": int(metrics.get("wal.appends", 0.0)),
            "partitioned_messages": runtime.network.stats.partitioned_messages,
            "membership_epoch": runtime.system_store.epoch,
            "silos_quarantined": stats.silos_quarantined,
            "silos_rejoined": stats.silos_rejoined,
            "silos_evicted": stats.silos_evicted,
        }
    )
    return row


async def _audit_storage(runtime, sensor_ids: list[str]) -> dict[str, int]:
    """Read back every physical channel's persisted window after the run.

    Also asserts the no-duplicates half of the lost-update invariant: a
    dual-writer commit or a failed dedup would show up as a repeated
    timestamp inside one window.
    """
    from ..shm.platform import channel_id_for
    from ..storage.tsblocks import TieredSeries

    stored: dict[str, int] = {}
    for sensor_id in sensor_ids:
        for channel in (0, 1):
            channel_id = channel_id_for(sensor_id, channel)
            item = await runtime.grain_storage.try_get(
                f"state/PhysicalSensorChannel/{channel_id}"
            )
            tsdoc = (item.value or {}).get("tsdoc") if item else None
            window = (
                TieredSeries.from_document(tsdoc).all_pairs() if tsdoc else []
            )
            timestamps = [point[0] for point in window]
            _require(
                len(set(timestamps)) == len(timestamps),
                f"channel {channel_id}: duplicate timestamps persisted "
                "(dual-writer commit or dedup failure)",
            )
            stored[channel_id] = len(window)
    return stored


def _check_invariants(
    scenario: str,
    sensor_ids: list[str],
    acked_waves: dict[str, int],
    stored: dict[str, int],
    counters: dict[str, int],
    stats,
    runtime,
) -> dict:
    """Assert the per-scenario safety contract; return audit aggregates."""
    from ..shm.platform import channel_id_for

    max_deficit = 0
    min_deficit = 0
    zombie_bound = int(PARTITION_END - PARTITION_START) + 3
    for sensor_id in sensor_ids:
        minority = sensor_id.startswith(f"{MINORITY_ORG}/")
        for channel in (0, 1):
            channel_id = channel_id_for(sensor_id, channel)
            deficit = acked_waves[sensor_id] - stored[channel_id]
            max_deficit = max(max_deficit, deficit)
            min_deficit = min(min_deficit, deficit)
            if not minority or scenario == "netsplit":
                _require(
                    deficit == 0,
                    f"{scenario} channel {channel_id}: stored "
                    f"{stored[channel_id]} points but {acked_waves[sensor_id]} "
                    "waves were acked (lost update or phantom write)",
                )
            elif scenario == "zombie":
                _require(
                    -2 <= deficit <= zombie_bound,
                    f"zombie channel {channel_id}: deficit {deficit} outside "
                    f"the partition-window bound [-2, {zombie_bound}]",
                )
            else:  # crash: loss bounded by the redo lag
                _require(
                    abs(deficit) <= REDO_DEFICIT_BOUND,
                    f"crash channel {channel_id}: deficit {deficit} exceeds "
                    f"the redo-lag bound {REDO_DEFICIT_BOUND}",
                )
    majority_availability = (
        counters["majority_succeeded"] / counters["majority_attempted"]
        if counters["majority_attempted"]
        else 0.0
    )
    _require(
        majority_availability == 1.0,
        f"{scenario}: majority-side availability {majority_availability:.4f} "
        "< 1.0 (the partition must not take down the majority)",
    )
    availability = (
        counters["succeeded"] / counters["attempted"] if counters["attempted"] else 0.0
    )
    metrics = runtime.metrics.cluster_totals()
    if scenario == "netsplit":
        _require(
            availability == 1.0,
            f"netsplit: availability {availability:.4f} < 1.0 "
            "(every insert must eventually succeed)",
        )
        _require(stats.silos_quarantined >= 1, "netsplit: no silo quarantined")
        _require(stats.silos_rejoined >= 1, "netsplit: no silo rejoined after heal")
        _require(stats.silos_evicted >= 1, "netsplit: majority never evicted")
    elif scenario == "zombie":
        _require(
            int(metrics.get("storage.fenced_writes", 0.0)) > 0,
            "zombie: no fenced writes — stale-writer rejection never fired",
        )
        _require(stats.silos_quarantined == 0, "zombie: quarantine was disabled")
        _require(stats.silos_rejoined >= 1, "zombie: silo never rejoined")
        _require(
            availability >= 0.6,
            f"zombie: availability {availability:.4f} collapsed below 0.6",
        )
    else:  # crash
        _require(
            int(metrics.get("wal.replayed_records", 0.0)) > 0,
            "crash: no redo-journal records replayed",
        )
        _require(stats.silos_evicted >= 1, "crash: dead silo never evicted")
        _require(
            availability >= 0.95,
            f"crash: availability {availability:.4f} below the 0.95 floor",
        )
    _require(
        runtime.system_store.epoch >= 4,
        f"{scenario}: membership epoch {runtime.system_store.epoch} never "
        "advanced through the view change",
    )
    return {
        "majority_availability": round(majority_availability, 4),
        "max_deficit": max_deficit,
        "min_deficit": min_deficit,
    }


def build_partition(smoke: bool = False) -> dict:
    """The ``BENCH_partition.json`` payload: every scenario x seed row.

    Micro-shaped (one row per ``scenario@seed`` variant) so the baseline
    gate compares throughput per variant.  Raises
    :class:`PartitionInvariantError` on any safety violation, so both the
    baseline writer and the CI gate fail loudly.
    """
    sensors = 12 if smoke else 36
    seeds = SMOKE_SEEDS if smoke else FULL_SEEDS
    series: dict[str, dict] = {}
    for scenario in SCENARIOS:
        for seed in seeds:
            series[f"{scenario}@{seed}"] = run_partition_scenario(
                scenario, sensors, seed
            )
    rows = list(series.values())
    return {
        "bench": "partition",
        "mode": "smoke" if smoke else "full",
        "title": "Partition tolerance: fenced epochs, quarantine and redo log",
        "series": series,
        "summary": {
            "scenarios": len(SCENARIOS),
            "seeds": len(seeds),
            "min_availability": min(row["availability"] for row in rows),
            "netsplit_availability": min(
                row["availability"]
                for row in rows
                if row["scenario"] == "netsplit"
            ),
            "fenced_writes": sum(
                row["fenced_writes"] for row in rows if row["scenario"] == "zombie"
            ),
            "wal_replayed": sum(
                row["wal_replayed"] for row in rows if row["scenario"] == "crash"
            ),
        },
    }
