"""Analytical tier: star-schema export of archived sensor data."""

from .star_schema import (
    AggregateRow,
    ChannelDimension,
    FactRow,
    StarSchema,
    parse_channel_id,
    time_key_of,
)

__all__ = [
    "AggregateRow",
    "ChannelDimension",
    "FactRow",
    "StarSchema",
    "parse_channel_id",
    "time_key_of",
]
