"""The analytical tier: a star schema loaded from the archive log.

The paper's architecture (§5) has three components: the actor runtime, the
cloud storage system, and "an analytical database system ... data recorded
in the storage system can be exported into a classic star schema".  The
paper declares the analytical queries out of scope; we build the component
anyway so the architecture is complete end to end:

- dimension tables: organization, sensor, channel, time (hour grain);
- one fact table of sensor readings;
- a loader from :class:`~repro.storage.archive.ArchiveLog` streams;
- a small aggregation surface (group-by over dimension attributes).

Everything is in-memory and columnar-ish (parallel lists), which is plenty
for the historical queries the case studies need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..storage.archive import ArchiveLog


@dataclass(frozen=True)
class ChannelDimension:
    """One row of the channel dimension."""

    channel_id: str
    sensor_id: str
    org_id: str
    sensor_type: str = "unknown"
    is_virtual: bool = False


@dataclass
class FactRow:
    """One sensor reading in the fact table (ids are dimension keys)."""

    channel_key: int
    time_key: int
    timestamp: float
    value: float


def time_key_of(timestamp: float, grain_seconds: float = 3600.0) -> int:
    """Map a timestamp to its time-dimension key (hour grain by default)."""
    return int(timestamp // grain_seconds)


def parse_channel_id(channel_id: str) -> ChannelDimension:
    """Derive dimension attributes from the platform's id scheme.

    Channel ids look like ``org-0/s-3/c-1`` or ``org-0/s-3/vc``.
    """
    parts = channel_id.split("/")
    if len(parts) < 3:
        return ChannelDimension(channel_id, channel_id, "unknown")
    org_id = parts[0]
    sensor_id = "/".join(parts[:-1])
    leaf = parts[-1]
    return ChannelDimension(
        channel_id=channel_id,
        sensor_id=sensor_id,
        org_id=org_id,
        is_virtual=leaf.startswith("vc"),
    )


@dataclass
class AggregateRow:
    """One group of an aggregation query."""

    group: tuple
    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class StarSchema:
    """An in-memory star schema over sensor readings."""

    def __init__(self, time_grain_seconds: float = 3600.0) -> None:
        self.time_grain_seconds = time_grain_seconds
        self._channel_rows: list[ChannelDimension] = []
        self._channel_keys: dict[str, int] = {}
        self._facts: list[FactRow] = []

    # -- dimensions ----------------------------------------------------------

    def channel_key(self, channel_id: str) -> int:
        """Get-or-create the dimension key for a channel."""
        key = self._channel_keys.get(channel_id)
        if key is None:
            key = len(self._channel_rows)
            self._channel_rows.append(parse_channel_id(channel_id))
            self._channel_keys[channel_id] = key
        return key

    def channel(self, key: int) -> ChannelDimension:
        """The channel dimension row for a key."""
        return self._channel_rows[key]

    @property
    def channel_count(self) -> int:
        return len(self._channel_rows)

    @property
    def fact_count(self) -> int:
        return len(self._facts)

    # -- loading --------------------------------------------------------------

    def load_fact(self, channel_id: str, timestamp: float, value: float) -> None:
        """Insert one reading."""
        self._facts.append(
            FactRow(
                channel_key=self.channel_key(channel_id),
                time_key=time_key_of(timestamp, self.time_grain_seconds),
                timestamp=timestamp,
                value=float(value),
            )
        )

    def load_archive(
        self, archive: ArchiveLog, streams: Iterable[str] | None = None
    ) -> int:
        """Bulk-load archived channel streams; returns rows loaded.

        This is the export path of the paper's architecture: windows
        evicted from actor memory landed in the archive; the warehouse
        loader turns them into facts.
        """
        names = list(streams) if streams is not None else archive.streams()
        loaded = 0
        for stream in names:
            for record in archive.export(stream):
                self.load_fact(stream, record.timestamp, float(record.payload))
                loaded += 1
        return loaded

    # -- queries ----------------------------------------------------------------

    def aggregate(
        self,
        group_by: tuple[str, ...] = ("org_id",),
        where: Callable[[ChannelDimension, FactRow], bool] | None = None,
    ) -> list[AggregateRow]:
        """Group facts by dimension attributes and aggregate values.

        ``group_by`` names attributes of the channel dimension plus the
        pseudo-attribute ``time_key``.  Results are sorted by group.
        """
        valid = {"channel_id", "sensor_id", "org_id", "sensor_type", "is_virtual"}
        for attribute in group_by:
            if attribute != "time_key" and attribute not in valid:
                raise ValueError(f"unknown group-by attribute {attribute!r}")
        groups: dict[tuple, AggregateRow] = {}
        for fact in self._facts:
            dimension = self._channel_rows[fact.channel_key]
            if where is not None and not where(dimension, fact):
                continue
            key = tuple(
                fact.time_key
                if attribute == "time_key"
                else getattr(dimension, attribute)
                for attribute in group_by
            )
            row = groups.get(key)
            if row is None:
                groups[key] = AggregateRow(key, 1, fact.value, fact.value, fact.value)
            else:
                row.count += 1
                row.total += fact.value
                row.minimum = min(row.minimum, fact.value)
                row.maximum = max(row.maximum, fact.value)
        return [groups[key] for key in sorted(groups)]

    def time_series(self, channel_id: str) -> list[tuple[int, float]]:
        """Per-time-bucket means for one channel (a plotting query)."""
        key = self._channel_keys.get(channel_id)
        if key is None:
            return []
        rows = self.aggregate(
            group_by=("channel_id", "time_key"),
            where=lambda dim, _fact: dim.channel_id == channel_id,
        )
        return [(row.group[1], row.mean) for row in rows]
