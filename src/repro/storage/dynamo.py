"""DynamoDB-like provisioned-capacity key-value store.

The paper provisions "DynamoDB with 200 writes and 200 reads per second" for
Orleans grain storage and discusses how naive write-through durability would
consume exactly that budget.  This store reproduces those operational
characteristics:

- read and write **capacity units** (RCU/WCU) with token-bucket accounting
  (1 unit per 4 KiB read, 1 unit per 1 KiB written, matching DynamoDB's
  pricing model closely enough for the durability ablation);
- a per-request latency model;
- two overload behaviours: ``throttle`` (raise
  :class:`~repro.errors.ThrottledError` carrying the suggested
  ``retry_after``, as the AWS SDK surfaces throttling with retry hints) or
  ``delay`` (wait for capacity, modeling a client with retries/backoff).
"""

from __future__ import annotations

from typing import Any

from ..errors import ThrottledError
from ..kernel.resources import TokenBucket
from ..kernel.rng import RngRegistry
from ..kernel.scheduler import Scheduler
from ..net.latency import ConstantLatency, LatencyModel
from .kv import InMemoryKVStore, Item, KeyValueStore
from .serde import estimate_size

READ_UNIT_BYTES = 4096
WRITE_UNIT_BYTES = 1024


class ProvisionedKVStore(KeyValueStore):
    """A latency- and capacity-modeled wrapper over an in-memory store."""

    def __init__(
        self,
        scheduler: Scheduler,
        read_capacity_units: float = 200.0,
        write_capacity_units: float = 200.0,
        latency: LatencyModel | None = None,
        on_overload: str = "throttle",
        rng: RngRegistry | None = None,
    ) -> None:
        if on_overload not in ("throttle", "delay"):
            raise ValueError("on_overload must be 'throttle' or 'delay'")
        self._scheduler = scheduler
        self._inner = InMemoryKVStore()
        self._latency = latency or ConstantLatency(0.005)
        self._rng = (rng or RngRegistry(0)).stream("dynamo")
        self._read_bucket = TokenBucket(scheduler, read_capacity_units)
        self._write_bucket = TokenBucket(scheduler, write_capacity_units)
        self.on_overload = on_overload
        self.throttled_reads = 0
        self.throttled_writes = 0
        # Capacity-unit consumption and stall totals, for the metrics layer
        # (the paper's operational cost conversation is in these numbers).
        self.rcu_consumed = 0.0
        self.wcu_consumed = 0.0
        self.throttle_stall_seconds = 0.0
        # Group-commit accounting: batched puts pay full capacity units but
        # share one latency round trip (DynamoDB BatchWriteItem).
        self.write_batches = 0
        self.batched_round_trips_saved = 0

    # -- helpers ---------------------------------------------------------------

    async def _charge(self, bucket: TokenBucket, units: float, kind: str) -> None:
        if self.on_overload == "delay":
            started = self._scheduler.now
            await bucket.consume(units)
            stalled = self._scheduler.now - started
            if stalled > 0:
                self.throttle_stall_seconds += stalled
                if kind == "read":
                    self.throttled_reads += 1
                else:
                    self.throttled_writes += 1
            self._record_units(kind, units)
            return
        wait = bucket.try_consume(units)
        if wait > 0:
            if kind == "read":
                self.throttled_reads += 1
            else:
                self.throttled_writes += 1
            raise ThrottledError(
                f"provisioned {kind} capacity exceeded "
                f"(need {units:.2f} units, retry in {wait:.3f}s)",
                retry_after=wait,
            )
        self._record_units(kind, units)

    def _record_units(self, kind: str, units: float) -> None:
        if kind == "read":
            self.rcu_consumed += units
        else:
            self.wcu_consumed += units

    async def _network_round_trip(self) -> None:
        delay = self._latency.sample(self._rng)
        if delay > 0:
            await self._scheduler.sleep(delay)

    @staticmethod
    def _read_units(value: Any) -> float:
        size = estimate_size(value)
        return max(1.0, -(-size // READ_UNIT_BYTES))  # ceil division

    @staticmethod
    def _write_units(value: Any) -> float:
        size = estimate_size(value)
        return max(1.0, -(-size // WRITE_UNIT_BYTES))

    # -- KeyValueStore API ------------------------------------------------------

    async def get(self, key: str) -> Item:
        item = await self._inner.get(key)
        await self._charge(self._read_bucket, self._read_units(item.value), "read")
        await self._network_round_trip()
        return item

    async def put(self, key: str, value: Any, expected_etag: int | None = None) -> int:
        await self._charge(self._write_bucket, self._write_units(value), "write")
        await self._network_round_trip()
        return await self._inner.put(key, value, expected_etag)

    async def put_many(
        self, entries: list[tuple[str, Any, int | None]]
    ) -> list[int | BaseException]:
        """Batched puts: full WCU for every item, ONE network round trip.

        Capacity is honest — a 10-item batch consumes 10 items' worth of
        write units — but the per-request latency (and in the real system,
        the per-request overhead) is paid once.  A capacity shortfall
        rejects the whole batch, like a throttled ``BatchWriteItem``;
        conditional-check failures are isolated per entry.
        """
        if not entries:
            return []
        units = sum(self._write_units(value) for _key, value, _etag in entries)
        await self._charge(self._write_bucket, units, "write")
        await self._network_round_trip()
        self.write_batches += 1
        if len(entries) > 1:
            self.batched_round_trips_saved += len(entries) - 1
        results: list[int | BaseException] = []
        for key, value, expected_etag in entries:
            try:
                results.append(await self._inner.put(key, value, expected_etag))
            except Exception as exc:  # noqa: BLE001 - isolated per entry
                results.append(exc)
        return results

    async def fenced_put(
        self,
        key: str,
        value: Any,
        expected_etag: int | None = None,
        fence: int | None = None,
    ) -> int:
        await self._charge(self._write_bucket, self._write_units(value), "write")
        await self._network_round_trip()
        return await self._inner.fenced_put(key, value, expected_etag, fence)

    async def fenced_put_many(
        self, entries: list[tuple[str, Any, int | None, int | None]]
    ) -> list[int | BaseException]:
        """Fenced batch: capacity/latency as :meth:`put_many`, fences checked
        per entry in the backing store (isolated, like conditional checks)."""
        if not entries:
            return []
        units = sum(self._write_units(value) for _key, value, _etag, _f in entries)
        await self._charge(self._write_bucket, units, "write")
        await self._network_round_trip()
        self.write_batches += 1
        if len(entries) > 1:
            self.batched_round_trips_saved += len(entries) - 1
        results: list[int | BaseException] = []
        for key, value, expected_etag, fence in entries:
            try:
                results.append(
                    await self._inner.fenced_put(key, value, expected_etag, fence)
                )
            except Exception as exc:  # noqa: BLE001 - isolated per entry
                results.append(exc)
        return results

    async def advance_fence(self, key: str, fence: int | None) -> None:
        # Fence metadata is a control-plane CAS against the item's attribute,
        # not a document write: no capacity units, no round trip charged.
        await self._inner.advance_fence(key, fence)

    async def delete(self, key: str) -> bool:
        await self._charge(self._write_bucket, 1.0, "write")
        await self._network_round_trip()
        return await self._inner.delete(key)

    async def scan(self, prefix: str = "") -> list[tuple[str, Item]]:
        rows = await self._inner.scan(prefix)
        units = sum(self._read_units(item.value) for _key, item in rows) or 1.0
        await self._charge(self._read_bucket, units, "read")
        await self._network_round_trip()
        return rows

    # -- introspection -----------------------------------------------------------

    def register_metrics(self, registry: "object", **labels: str) -> None:
        """Export capacity counters as pull-probes on ``registry``.

        Loosely typed to keep the storage layer free of an
        :mod:`repro.obs` import; ``labels`` distinguishes multiple stores
        (e.g. ``store="grain"``).
        """
        registry.register_probe(
            "storage.rcu_consumed", lambda: self.rcu_consumed, **labels
        )
        registry.register_probe(
            "storage.wcu_consumed", lambda: self.wcu_consumed, **labels
        )
        registry.register_probe(
            "storage.throttled_reads", lambda: self.throttled_reads, **labels
        )
        registry.register_probe(
            "storage.throttled_writes", lambda: self.throttled_writes, **labels
        )
        registry.register_probe(
            "storage.throttle_stall_seconds",
            lambda: self.throttle_stall_seconds,
            **labels,
        )
        registry.register_probe("storage.reads", lambda: self.reads, **labels)
        registry.register_probe("storage.writes", lambda: self.writes, **labels)
        registry.register_probe(
            "storage.write_batches", lambda: self.write_batches, **labels
        )
        registry.register_probe(
            "storage.batched_round_trips_saved",
            lambda: self.batched_round_trips_saved,
            **labels,
        )
        registry.register_probe(
            "storage.fenced_writes", lambda: self.fenced_writes, **labels
        )

    @property
    def reads(self) -> int:
        """Successful reads against the backing store."""
        return self._inner.reads

    @property
    def writes(self) -> int:
        """Successful writes against the backing store."""
        return self._inner.writes

    @property
    def fenced_writes(self) -> int:
        """Stale writes rejected by the backing store's fence floors."""
        return self._inner.fenced_writes

    def __len__(self) -> int:
        return len(self._inner)
