"""Storage fault injection for the chaos harness.

:class:`ChaosKVStore` decorates any :class:`~repro.storage.kv.KeyValueStore`
with scripted and probabilistic faults:

- **throttle windows** — between two virtual times, reads and/or writes fail
  with :class:`~repro.errors.ThrottledError` carrying a ``retry_after``
  hint, reproducing a DynamoDB capacity burst without draining real token
  buckets;
- **random faults** — a seeded per-operation probability of failing with
  :class:`~repro.errors.InjectedFaultError`, modeling flaky connectivity to
  the storage service.

The wrapper is transparent when no faults are scripted, so deployments can
keep it permanently in the stack and only arm it for chaos runs.
"""

from __future__ import annotations

import math
import random
from typing import Any

from ..errors import InjectedFaultError, ThrottledError
from ..kernel.scheduler import Scheduler
from .kv import Item, KeyValueStore

__all__ = ["ChaosKVStore"]


class ChaosKVStore(KeyValueStore):
    """A fault-injecting decorator over another key-value store."""

    def __init__(
        self,
        scheduler: Scheduler,
        inner: KeyValueStore,
        rng: random.Random | None = None,
        read_fault_rate: float = 0.0,
        write_fault_rate: float = 0.0,
        retry_after: float = 0.05,
    ) -> None:
        for name, rate in (
            ("read_fault_rate", read_fault_rate),
            ("write_fault_rate", write_fault_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._scheduler = scheduler
        self._inner = inner
        self._rng = rng or random.Random(0)
        self.read_fault_rate = read_fault_rate
        self.write_fault_rate = write_fault_rate
        self.retry_after = retry_after
        self._throttle_windows: list[tuple[float, float, frozenset[str]]] = []
        self.injected_read_faults = 0
        self.injected_write_faults = 0
        self.injected_throttles = 0

    # -- scripting ----------------------------------------------------------

    def throttle_between(
        self,
        start: float,
        end: float = math.inf,
        kinds: tuple[str, ...] = ("read", "write"),
    ) -> None:
        """Fail every ``kinds`` operation with ThrottledError in [start, end)."""
        for kind in kinds:
            if kind not in ("read", "write"):
                raise ValueError("kinds must be 'read' and/or 'write'")
        self._throttle_windows.append((start, end, frozenset(kinds)))

    def clear_faults(self) -> None:
        """Drop all scripted windows and probabilistic rates."""
        self._throttle_windows.clear()
        self.read_fault_rate = 0.0
        self.write_fault_rate = 0.0

    # -- fault checks -------------------------------------------------------

    def _check(self, kind: str) -> None:
        now = self._scheduler.now
        for start, end, kinds in self._throttle_windows:
            if kind in kinds and start <= now < end:
                self.injected_throttles += 1
                remaining = min(end - now, self.retry_after)
                raise ThrottledError(
                    f"injected {kind} throttle window [{start:g}, {end:g})",
                    retry_after=remaining,
                )
        rate = self.read_fault_rate if kind == "read" else self.write_fault_rate
        if rate > 0 and self._rng.random() < rate:
            if kind == "read":
                self.injected_read_faults += 1
            else:
                self.injected_write_faults += 1
            raise InjectedFaultError(f"injected {kind} fault")

    # -- KeyValueStore API --------------------------------------------------

    async def get(self, key: str) -> Item:
        self._check("read")
        return await self._inner.get(key)

    async def put(self, key: str, value: Any, expected_etag: int | None = None) -> int:
        self._check("write")
        return await self._inner.put(key, value, expected_etag)

    async def put_many(
        self, entries: list[tuple[str, Any, int | None]]
    ) -> list[int | BaseException]:
        """Batched writes roll the fault dice once, like the round trip they
        share: a throttle window or injected fault fails the *whole* batch
        (every group-commit ticket), matching a lost ``BatchWriteItem``."""
        self._check("write")
        return await self._inner.put_many(entries)

    async def fenced_put(
        self,
        key: str,
        value: Any,
        expected_etag: int | None = None,
        fence: int | None = None,
    ) -> int:
        self._check("write")
        return await self._inner.fenced_put(key, value, expected_etag, fence)

    async def fenced_put_many(
        self, entries: list[tuple[str, Any, int | None, int | None]]
    ) -> list[int | BaseException]:
        self._check("write")
        return await self._inner.fenced_put_many(entries)

    async def advance_fence(self, key: str, fence: int | None) -> None:
        # Fence-floor advancement is control-plane metadata; chaos windows
        # target data-plane round trips, so it passes through unfaulted.
        await self._inner.advance_fence(key, fence)

    @property
    def fenced_writes(self) -> int:
        return self._inner.fenced_writes

    async def delete(self, key: str) -> bool:
        self._check("write")
        return await self._inner.delete(key)

    async def scan(self, prefix: str = "") -> list[tuple[str, Item]]:
        self._check("read")
        return await self._inner.scan(prefix)

    def __len__(self) -> int:
        return len(self._inner)
