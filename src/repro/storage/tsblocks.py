"""Compressed, tiered time-series blocks (the TritanDB direction).

Per-sensor history in actor state was raw ``DataPoint`` objects — ~300
bytes of Python per 16 bytes of information — so history depth, not CPU,
capped experiment scale.  This module is the storage engine that fixes
that: each stream keeps a small mutable *hot head*, and points evicted
from the head are sealed into immutable compressed blocks.

The codec is the classic time-series pair (pure Python, bit-level):

- **Timestamps** — delta-of-delta.  Floats are first mapped through the
  IEEE-754 total-order bijection to ``uint64`` (sign bit set for
  positives, all bits flipped for negatives), so the integer arithmetic
  is *exact* — any float sequence round-trips bit-identically, and
  monotone sequences (the only kind windows accept) produce small,
  compressible deltas.  A regular-interval stream costs one bit per
  point.
- **Values** — Gorilla-style XOR: each value's bits are XORed with the
  previous value's; a zero XOR costs one bit, otherwise only the
  meaningful (non-zero) window is stored, reusing the previous window
  when it fits.  NaN payloads, infinities and ``-0.0`` all round-trip
  exactly because nothing ever leaves bit space.

Every sealed block carries a :class:`BlockSummary` (count / first & last
timestamp / min / max / sum), so range queries skip non-overlapping
blocks without decompression and aggregate folds over fully-covered
blocks are answered from the summary alone.

:class:`TieredSeries` is the engine: a ``DataWindow``-shaped surface
(append / range / tail / eviction-on-capacity) whose interior is
head + blocks.  Blocks are plain ``bytes`` + floats, so they ride the
ordinary actor-state path — group-commit flushes, fencing, the redo
journal and live migration all hold with no special cases.
"""

from __future__ import annotations

import bisect
import struct
import sys
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "BlockSummary",
    "BlockStats",
    "SealedBlock",
    "TieredSeries",
    "decode_floats",
    "decode_uints",
    "encode_floats",
    "encode_uints",
    "summarize",
]

_MASK64 = (1 << 64) - 1
_SIGN = 1 << 63

_pack_d = struct.Struct(">d").pack
_unpack_d = struct.Struct(">d").unpack


def _float_to_ordered(x: float) -> int:
    """Map a float to a uint64 preserving IEEE-754 total order."""
    bits = struct.unpack(">Q", _pack_d(x))[0]
    if bits & _SIGN:
        return bits ^ _MASK64
    return bits | _SIGN


def _ordered_to_float(i: int) -> float:
    bits = (i ^ _SIGN) if (i & _SIGN) else (i ^ _MASK64)
    return _unpack_d(struct.pack(">Q", bits))[0]


class _BitWriter:
    """Append bits MSB-first; flushes whole bytes out of the accumulator."""

    __slots__ = ("_acc", "_nbits", "_chunks")

    def __init__(self) -> None:
        self._acc = 0
        self._nbits = 0
        self._chunks = bytearray()

    def write(self, value: int, nbits: int) -> None:
        self._acc = (self._acc << nbits) | (value & ((1 << nbits) - 1))
        self._nbits += nbits
        if self._nbits >= 1024:
            keep = self._nbits & 7
            flush_bits = self._nbits - keep
            self._chunks += (self._acc >> keep).to_bytes(flush_bits // 8, "big")
            self._acc &= (1 << keep) - 1
            self._nbits = keep

    def getvalue(self) -> bytes:
        pad = (-self._nbits) % 8
        acc, nbits = self._acc << pad, self._nbits + pad
        tail = acc.to_bytes(nbits // 8, "big") if nbits else b""
        return bytes(self._chunks) + tail


class _BitReader:
    """Read bits MSB-first from a bytes buffer."""

    __slots__ = ("_acc", "_total", "_pos")

    def __init__(self, data: bytes) -> None:
        self._acc = int.from_bytes(data, "big")
        self._total = len(data) * 8
        self._pos = 0

    def read(self, nbits: int) -> int:
        shift = self._total - self._pos - nbits
        self._pos += nbits
        return (self._acc >> shift) & ((1 << nbits) - 1)


def _zigzag(v: int) -> int:
    return (v << 1) if v >= 0 else ((-v) << 1) - 1


def _unzigzag(n: int) -> int:
    return (n >> 1) if not (n & 1) else -((n + 1) >> 1)


def _write_dod(writer: _BitWriter, dod: int) -> None:
    # Bucketed variable-length encoding; the final bucket is 68 bits
    # because a dod of two uint64 deltas spans up to ±2^65, which
    # zigzags into 67 bits.
    n = _zigzag(dod)
    if n == 0:
        writer.write(0b0, 1)
    elif n < (1 << 7):
        writer.write(0b10, 2)
        writer.write(n, 7)
    elif n < (1 << 12):
        writer.write(0b110, 3)
        writer.write(n, 12)
    elif n < (1 << 20):
        writer.write(0b1110, 4)
        writer.write(n, 20)
    elif n < (1 << 32):
        writer.write(0b11110, 5)
        writer.write(n, 32)
    else:
        writer.write(0b11111, 5)
        writer.write(n, 68)


def _read_dod(reader: _BitReader) -> int:
    if reader.read(1) == 0:
        return 0
    if reader.read(1) == 0:
        return _unzigzag(reader.read(7))
    if reader.read(1) == 0:
        return _unzigzag(reader.read(12))
    if reader.read(1) == 0:
        return _unzigzag(reader.read(20))
    if reader.read(1) == 0:
        return _unzigzag(reader.read(32))
    return _unzigzag(reader.read(68))


def encode_uints(values: Sequence[int]) -> bytes:
    """Delta-of-delta encode a sequence of non-negative integers."""
    if not values:
        return b""
    writer = _BitWriter()
    writer.write(values[0], 64)
    prev = values[0]
    prev_delta = 0
    for value in values[1:]:
        delta = value - prev
        _write_dod(writer, delta - prev_delta)
        prev, prev_delta = value, delta
    return writer.getvalue()


def decode_uints(data: bytes, count: int) -> list[int]:
    """Inverse of :func:`encode_uints` for ``count`` integers."""
    if count == 0:
        return []
    reader = _BitReader(data)
    value = reader.read(64)
    out = [value]
    delta = 0
    for _ in range(count - 1):
        delta += _read_dod(reader)
        value += delta
        out.append(value)
    return out


def encode_floats(values: Sequence[float]) -> bytes:
    """Delta-of-delta encode floats via the total-order uint64 mapping.

    Exact for *any* float sequence (the mapping is a bijection and the
    delta arithmetic is integer), but sized for monotone timestamps:
    a fixed-interval stream costs ~1 bit per point after the header.
    """
    return encode_uints([_float_to_ordered(v) for v in values])


def decode_floats(data: bytes, count: int) -> list[float]:
    """Inverse of :func:`encode_floats`."""
    return [_ordered_to_float(i) for i in decode_uints(data, count)]


def encode_values(values: Sequence[float]) -> bytes:
    """Gorilla XOR-encode a sequence of float values."""
    if not values:
        return b""
    writer = _BitWriter()
    prev = struct.unpack(">Q", _pack_d(values[0]))[0]
    writer.write(prev, 64)
    prev_leading = -1
    prev_meaningful = 0
    for value in values[1:]:
        bits = struct.unpack(">Q", _pack_d(value))[0]
        xor = bits ^ prev
        prev = bits
        if xor == 0:
            writer.write(0b0, 1)
            continue
        leading = 64 - xor.bit_length()
        if leading > 31:
            leading = 31
        trailing = (xor & -xor).bit_length() - 1
        meaningful = 64 - leading - trailing
        if (
            prev_leading >= 0
            and leading >= prev_leading
            and 64 - prev_leading - prev_meaningful <= trailing
        ):
            # Fits the previous window: '10' + bits in that window.
            writer.write(0b10, 2)
            prev_trailing = 64 - prev_leading - prev_meaningful
            writer.write(xor >> prev_trailing, prev_meaningful)
        else:
            writer.write(0b11, 2)
            writer.write(leading, 5)
            writer.write(meaningful - 1, 6)
            writer.write(xor >> trailing, meaningful)
            prev_leading = leading
            prev_meaningful = meaningful
    return writer.getvalue()


def decode_values(data: bytes, count: int) -> list[float]:
    """Inverse of :func:`encode_values` for ``count`` floats."""
    if count == 0:
        return []
    reader = _BitReader(data)
    bits = reader.read(64)
    out = [_unpack_d(struct.pack(">Q", bits))[0]]
    leading = 0
    meaningful = 64
    for _ in range(count - 1):
        if reader.read(1):
            if reader.read(1):
                leading = reader.read(5)
                meaningful = reader.read(6) + 1
            trailing = 64 - leading - meaningful
            bits ^= reader.read(meaningful) << trailing
        out.append(_unpack_d(struct.pack(">Q", bits))[0])
    return out


# -- summaries -----------------------------------------------------------------


@dataclass(frozen=True)
class BlockSummary:
    """Per-block fold: what a range/aggregate query can answer decode-free.

    ``v_min``/``v_max`` are ``None`` when every value in the block is NaN
    (NaN readings count toward ``count`` and poison ``v_sum``, matching a
    straight fold over the decoded points — see :func:`summarize`).
    """

    count: int
    t_first: float
    t_last: float
    v_min: float | None
    v_max: float | None
    v_sum: float

    def as_tuple(self) -> tuple:
        return (
            self.count, self.t_first, self.t_last,
            self.v_min, self.v_max, self.v_sum,
        )

    @classmethod
    def from_tuple(cls, doc: tuple) -> "BlockSummary":
        return cls(*doc)


def summarize(pairs: Sequence[tuple[float, float]]) -> BlockSummary:
    """Fold ``(timestamp, value)`` pairs into a :class:`BlockSummary`.

    This is *the* fold algebra: seal-time summaries and query-time folds
    over decoded points both call it, so summary-answered aggregates are
    consistent with decompress-and-fold by construction.
    """
    if not pairs:
        raise ValueError("cannot summarize an empty block")
    v_min: float | None = None
    v_max: float | None = None
    v_sum = 0.0
    for _ts, value in pairs:
        v_sum += value
        if value == value:  # skip NaN for extents
            if v_min is None or value < v_min:
                v_min = value
            if v_max is None or value > v_max:
                v_max = value
    return BlockSummary(
        count=len(pairs),
        t_first=pairs[0][0],
        t_last=pairs[-1][0],
        v_min=v_min,
        v_max=v_max,
        v_sum=v_sum,
    )


def merge_folds(folds: Iterable[BlockSummary]) -> dict:
    """Combine block folds into one aggregate dict (commutative monoid)."""
    count = 0
    v_min: float | None = None
    v_max: float | None = None
    v_sum = 0.0
    for fold in folds:
        count += fold.count
        v_sum += fold.v_sum
        if fold.v_min is not None and (v_min is None or fold.v_min < v_min):
            v_min = fold.v_min
        if fold.v_max is not None and (v_max is None or fold.v_max > v_max):
            v_max = fold.v_max
    return {
        "count": count,
        "min": v_min,
        "max": v_max,
        "sum": v_sum,
        "mean": (v_sum / count) if count else None,
    }


# -- sealed blocks -------------------------------------------------------------


@dataclass(frozen=True)
class SealedBlock:
    """An immutable compressed run of points with its summary.

    Contents are plain ``bytes`` + scalars, so a block is serializable
    as-is into actor state documents, the redo journal and the archive.
    """

    ts_bytes: bytes
    val_bytes: bytes
    summary: BlockSummary

    @classmethod
    def seal(cls, pairs: Sequence[tuple[float, float]]) -> "SealedBlock":
        """Compress a time-ordered run of ``(timestamp, value)`` pairs."""
        summary = summarize(pairs)
        return cls(
            ts_bytes=encode_floats([p[0] for p in pairs]),
            val_bytes=encode_values([p[1] for p in pairs]),
            summary=summary,
        )

    @property
    def count(self) -> int:
        return self.summary.count

    @property
    def t_first(self) -> float:
        return self.summary.t_first

    @property
    def t_last(self) -> float:
        return self.summary.t_last

    @property
    def nbytes(self) -> int:
        """Compressed payload size (the memory the block actually holds)."""
        return len(self.ts_bytes) + len(self.val_bytes)

    def decode(self) -> list[tuple[float, float]]:
        """Decompress back to the exact ``(timestamp, value)`` pairs."""
        count = self.summary.count
        timestamps = decode_floats(self.ts_bytes, count)
        values = decode_values(self.val_bytes, count)
        return list(zip(timestamps, values))

    def as_document(self) -> tuple:
        """A flat, picklable representation for state documents."""
        return (self.ts_bytes, self.val_bytes) + self.summary.as_tuple()

    @classmethod
    def from_document(cls, doc: tuple) -> "SealedBlock":
        return cls(
            ts_bytes=doc[0],
            val_bytes=doc[1],
            summary=BlockSummary.from_tuple(tuple(doc[2:])),
        )


# -- shared counters -----------------------------------------------------------

#: Nominal live-memory cost of one raw buffered point: the pair tuple, two
#: float objects and the parallel bisect stamp.  Measured once per process
#: so the head-memory probes track real CPython layout.
RAW_POINT_BYTES = (
    sys.getsizeof((0.0, 0.0)) + 2 * sys.getsizeof(0.0) + sys.getsizeof(0.0)
)


class BlockStats:
    """Cluster-wide tsblocks counters, exported as ``storage.*`` probes.

    One instance per runtime (``runtime.tsblock_stats``); every
    :class:`TieredSeries` the runtime's actors create feeds it, so the
    probes aggregate across all sensors like the other storage metrics.
    """

    __slots__ = (
        "blocks_sealed", "blocks_evicted", "blocks_decoded",
        "blocks_skipped", "blocks_considered", "summary_answers",
        "block_bytes", "sealed_points", "head_points",
    )

    def __init__(self) -> None:
        self.blocks_sealed = 0
        self.blocks_evicted = 0
        self.blocks_decoded = 0
        self.blocks_skipped = 0
        self.blocks_considered = 0
        self.summary_answers = 0
        self.block_bytes = 0
        self.sealed_points = 0
        self.head_points = 0

    @property
    def head_bytes(self) -> int:
        """Estimated live memory of all mutable hot heads."""
        return self.head_points * RAW_POINT_BYTES

    @property
    def compression_ratio(self) -> float:
        """Raw wire bytes (16/point) over compressed bytes, sealed tier."""
        if self.block_bytes == 0:
            return 0.0
        return (16.0 * self.sealed_points) / self.block_bytes

    @property
    def block_skip_rate(self) -> float:
        """Fraction of blocks range queries skipped without decoding."""
        if self.blocks_considered == 0:
            return 0.0
        return self.blocks_skipped / self.blocks_considered

    def register_metrics(self, registry) -> None:
        """Export the tsblocks probes on a metrics registry."""
        registry.register_probe("storage.block_bytes", lambda: self.block_bytes)
        registry.register_probe("storage.head_bytes", lambda: self.head_bytes)
        registry.register_probe("storage.blocks_sealed", lambda: self.blocks_sealed)
        registry.register_probe(
            "storage.blocks_evicted", lambda: self.blocks_evicted
        )
        registry.register_probe(
            "storage.blocks_decoded", lambda: self.blocks_decoded
        )
        registry.register_probe(
            "storage.compression_ratio", lambda: self.compression_ratio
        )
        registry.register_probe(
            "storage.block_skip_rate", lambda: self.block_skip_rate
        )
        registry.register_probe(
            "storage.summary_answers", lambda: self.summary_answers
        )


# -- the tiered engine ---------------------------------------------------------


class TieredSeries:
    """A bounded, time-ordered series tiered into hot head + sealed blocks.

    The contract mirrors :class:`~repro.shm.timeseries.DataWindow` —
    appends must be non-decreasing in time, ``capacity`` bounds the total
    retained points, and whatever falls off the old end is returned from
    ``append_many`` so callers can archive it — but the interior is
    tiered: the newest ``< block_size`` points stay raw (the mutable hot
    head); each time the head reaches ``block_size`` its points are
    sealed into an immutable compressed block.

    Capacity eviction is *point-exact* (so a capacity-15 series retains
    exactly 15 points, like the raw window): whole blocks are evicted
    as :class:`SealedBlock` objects — callers archive them without a
    decode — and when the boundary falls inside a block, that block is
    decoded once into a small "old side" buffer that serves subsequent
    evictions and reads until drained.

    ``block_size=0`` disables sealing entirely, degenerating to a raw
    pair window (the A-side of the tsbench A/B).
    """

    #: Shared empty-eviction result; treat as read-only.
    _NO_EVICTIONS: list = []

    def __init__(
        self,
        capacity: int = 4096,
        block_size: int = 256,
        stats: BlockStats | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        if block_size < 0:
            raise ValueError("block_size must be >= 0")
        self.capacity = capacity
        self.block_size = block_size
        self.stats = stats
        # Oldest → newest: _old (decoded remainder of a part-evicted
        # block) → _blocks → head.
        self._old: list[tuple[float, float]] = []
        self._blocks: list[SealedBlock] = []
        self._block_last: list[float] = []  # parallel t_last, for bisect
        self._head: list[tuple[float, float]] = []
        self._head_stamps: list[float] = []
        self.total_appended = 0
        # Single-slot decode cache: recent-range queries that cross into
        # the newest sealed block decode it once, not per query.
        self._cache_block: SealedBlock | None = None
        self._cache_pairs: list[tuple[float, float]] | None = None

    def __len__(self) -> int:
        return (
            len(self._old)
            + sum(block.count for block in self._blocks)
            + len(self._head)
        )

    @property
    def sealed_blocks(self) -> int:
        return len(self._blocks)

    @property
    def last_timestamp(self) -> float | None:
        if self._head:
            return self._head_stamps[-1]
        if self._blocks:
            return self._blocks[-1].t_last
        if self._old:
            return self._old[-1][0]
        return None

    # -- writes ----------------------------------------------------------------

    def append(self, timestamp: float, value: float) -> list:
        """Add one point; returns evicted items (pairs and/or blocks)."""
        return self.append_many([(timestamp, value)])

    def append_many(self, pairs: Sequence[tuple[float, float]]) -> list:
        """Append a time-ordered batch; returns everything evicted.

        The result interleaves raw ``(timestamp, value)`` pairs and whole
        :class:`SealedBlock` objects, oldest first — a block appears
        whenever the eviction boundary swallowed it entirely, so archival
        never decodes what it is about to recompress.
        """
        if not pairs:
            return self._NO_EVICTIONS
        last = self.last_timestamp
        for pair in pairs:
            timestamp = pair[0]
            if last is not None and timestamp < last:
                raise ValueError(
                    f"out-of-order point: {timestamp} after {last}"
                )
            last = timestamp
        self._head.extend(pairs)
        self._head_stamps.extend(pair[0] for pair in pairs)
        self.total_appended += len(pairs)
        stats = self.stats
        if stats is not None:
            stats.head_points += len(pairs)
        if self.block_size:
            while len(self._head) >= self.block_size:
                self._seal_head_prefix(self.block_size)
        if len(self) <= self.capacity:
            return self._NO_EVICTIONS
        return self._evict(len(self) - self.capacity)

    def _seal_head_prefix(self, count: int) -> None:
        run = self._head[:count]
        del self._head[:count]
        del self._head_stamps[:count]
        block = SealedBlock.seal(run)
        self._blocks.append(block)
        self._block_last.append(block.t_last)
        stats = self.stats
        if stats is not None:
            stats.blocks_sealed += 1
            stats.block_bytes += block.nbytes
            stats.sealed_points += block.count
            stats.head_points -= block.count

    def _evict(self, need: int) -> list:
        evicted: list = []
        stats = self.stats
        while need > 0:
            if self._old:
                take = min(need, len(self._old))
                evicted.extend(self._old[:take])
                del self._old[:take]
                need -= take
                if stats is not None:
                    stats.head_points -= take
            elif self._blocks:
                block = self._blocks[0]
                if block.count <= need:
                    evicted.append(block)
                    del self._blocks[0]
                    del self._block_last[0]
                    need -= block.count
                    if stats is not None:
                        stats.blocks_evicted += 1
                        stats.block_bytes -= block.nbytes
                        stats.sealed_points -= block.count
                else:
                    # Boundary falls inside the oldest block: decode it
                    # once; its remainder becomes the old-side buffer.
                    self._old = self._decode(block)
                    del self._blocks[0]
                    del self._block_last[0]
                    if stats is not None:
                        stats.blocks_evicted += 1
                        stats.block_bytes -= block.nbytes
                        stats.sealed_points -= block.count
                        stats.head_points += block.count
            else:
                take = min(need, len(self._head))
                evicted.extend(self._head[:take])
                del self._head[:take]
                del self._head_stamps[:take]
                need -= take
                if stats is not None:
                    stats.head_points -= take
        return evicted

    def _decode(self, block: SealedBlock) -> list[tuple[float, float]]:
        if block is self._cache_block:
            return list(self._cache_pairs)
        pairs = block.decode()
        if self.stats is not None:
            self.stats.blocks_decoded += 1
        self._cache_block = block
        self._cache_pairs = pairs
        return list(pairs)

    # -- reads -----------------------------------------------------------------

    def latest(self) -> tuple[float, float] | None:
        """The most recent ``(timestamp, value)``, or None when empty."""
        if self._head:
            return self._head[-1]
        if self._blocks:
            return self._decode(self._blocks[-1])[-1]
        if self._old:
            return self._old[-1]
        return None

    def range(self, start: float, end: float) -> list[tuple[float, float]]:
        """Pairs with start <= timestamp < end, stitched across tiers.

        Blocks whose summary window misses ``[start, end)`` are skipped
        without decoding (counted in the block-skip-rate probe).
        """
        if end <= start:
            return []
        out: list[tuple[float, float]] = []
        if self._old and self._old[-1][0] >= start and self._old[0][0] < end:
            out.extend(p for p in self._old if start <= p[0] < end)
        blocks = self._blocks
        if blocks:
            stats = self.stats
            # First block that can overlap: t_last >= start.
            lo = bisect.bisect_left(self._block_last, start)
            hi = lo
            while hi < len(blocks) and blocks[hi].t_first < end:
                hi += 1
            if stats is not None:
                stats.blocks_considered += len(blocks)
                stats.blocks_skipped += len(blocks) - (hi - lo)
            for block in blocks[lo:hi]:
                if start <= block.t_first and block.t_last < end:
                    out.extend(self._decode(block))
                else:
                    out.extend(
                        p for p in self._decode(block) if start <= p[0] < end
                    )
        stamps = self._head_stamps
        lo = bisect.bisect_left(stamps, start)
        hi = bisect.bisect_left(stamps, end, lo)
        out.extend(self._head[lo:hi])
        return out

    def tail(self, count: int) -> list[tuple[float, float]]:
        """The most recent ``count`` pairs (head-resident when possible)."""
        if count <= 0:
            return []
        if count <= len(self._head):
            return self._head[len(self._head) - count:]
        out = list(self._head)
        need = count - len(out)
        for block in reversed(self._blocks):
            if need <= 0:
                break
            pairs = self._decode(block)
            take = pairs[-need:] if need < len(pairs) else pairs
            out = take + out
            need -= len(take)
        if need > 0 and self._old:
            out = self._old[-need:] + out
        return out

    def all_pairs(self) -> list[tuple[float, float]]:
        """Every retained pair, oldest first (decodes every block)."""
        out = list(self._old)
        for block in self._blocks:
            out.extend(self._decode(block))
        out.extend(self._head)
        return out

    def aggregate(self, start: float, end: float) -> dict:
        """Fold count/min/max/sum/mean over [start, end).

        Blocks fully inside the range contribute their summary without
        decompression (counted in ``storage.summary_answers``); partially
        overlapping blocks decode and fold only the matching points, via
        the same :func:`summarize` algebra — so the answer is identical
        to folding the decoded range.
        """
        folds: list[BlockSummary] = []
        edges: list[tuple[float, float]] = []
        if end > start:
            if self._old and self._old[-1][0] >= start and self._old[0][0] < end:
                edges.extend(p for p in self._old if start <= p[0] < end)
            blocks = self._blocks
            if blocks:
                stats = self.stats
                lo = bisect.bisect_left(self._block_last, start)
                hi = lo
                while hi < len(blocks) and blocks[hi].t_first < end:
                    hi += 1
                if stats is not None:
                    stats.blocks_considered += len(blocks)
                    stats.blocks_skipped += len(blocks) - (hi - lo)
                for block in blocks[lo:hi]:
                    if start <= block.t_first and block.t_last < end:
                        folds.append(block.summary)
                        if stats is not None:
                            stats.summary_answers += 1
                    else:
                        edges.extend(
                            p for p in self._decode(block)
                            if start <= p[0] < end
                        )
            stamps = self._head_stamps
            lo = bisect.bisect_left(stamps, start)
            hi = bisect.bisect_left(stamps, end, lo)
            edges.extend(self._head[lo:hi])
        if edges:
            folds.append(summarize(edges))
        return merge_folds(folds)

    # -- accounting & persistence ----------------------------------------------

    def memory_stats(self) -> dict:
        """Live-memory accounting of this series (estimated bytes)."""
        head_points = len(self._head) + len(self._old)
        block_bytes = sum(block.nbytes for block in self._blocks)
        sealed_points = sum(block.count for block in self._blocks)
        raw_equivalent = RAW_POINT_BYTES * (head_points + sealed_points)
        live = head_points * RAW_POINT_BYTES + block_bytes
        return {
            "points": head_points + sealed_points,
            "head_points": head_points,
            "sealed_points": sealed_points,
            "blocks": len(self._blocks),
            "block_bytes": block_bytes,
            "live_bytes": live,
            "raw_equivalent_bytes": raw_equivalent,
            "compression_ratio": (
                (16.0 * sealed_points) / block_bytes if block_bytes else 0.0
            ),
        }

    def detach_stats(self) -> None:
        """Unregister this series from the shared :class:`BlockStats`.

        Called when the owning actor deactivates (or migrates away): the
        cluster-wide probes must stop counting a series whose points are
        about to be re-counted by the re-opened copy on another silo.
        """
        stats = self.stats
        if stats is None:
            return
        stats.head_points -= len(self._head) + len(self._old)
        for block in self._blocks:
            stats.block_bytes -= block.nbytes
            stats.sealed_points -= block.count
        self.stats = None

    def to_document(self) -> dict:
        """Serialize for an actor-state document.

        A partially-evicted old side is re-sealed into a (smaller) head
        block so the document is always ``blocks + head`` — immutable
        compressed runs plus the raw hot head.
        """
        blocks = [block.as_document() for block in self._blocks]
        if self._old:
            blocks.insert(0, SealedBlock.seal(self._old).as_document())
        return {
            "capacity": self.capacity,
            "block_size": self.block_size,
            "blocks": blocks,
            "head": list(self._head),
        }

    @classmethod
    def from_document(
        cls, doc: dict, stats: BlockStats | None = None
    ) -> "TieredSeries":
        """Re-open a series from its document (e.g. after migration)."""
        series = cls(
            capacity=doc.get("capacity", 4096),
            block_size=doc.get("block_size", 256),
            stats=stats,
        )
        for block_doc in doc.get("blocks", ()):
            block = SealedBlock.from_document(tuple(block_doc))
            series._blocks.append(block)
            series._block_last.append(block.t_last)
            if stats is not None:
                stats.block_bytes += block.nbytes
                stats.sealed_points += block.count
        head = [tuple(pair) for pair in doc.get("head", ())]
        series._head.extend(head)
        series._head_stamps.extend(pair[0] for pair in head)
        if stats is not None:
            stats.head_points += len(head)
        return series
