"""Block-compressed, append-only archive log for historical data export.

The paper's architecture (§5) exports data recorded in cloud storage into an
analytical database (star schema) for historical queries, which it declares
out of scope.  We keep the boundary honest: platforms *append* immutable
records here (sensor windows evicted from actor state, supply-chain events),
and a minimal query surface supports the kind of time-range retrieval a
downstream warehouse loader would perform.

Since the tsblocks engine landed, the cold path is no longer a stub holding
raw per-record lists: numeric streams tier into sealed
:class:`~repro.storage.tsblocks.SealedBlock` runs (delta-of-delta timestamps
+ XOR-compressed values, plus a compressed sequence-number column so decoded
records keep their exact global sequence), with a small raw head per stream
that seals every ``block_size`` appends.  Sensor channels hand whole evicted
blocks over via :meth:`ArchiveLog.append_block` — eviction never decodes
what it is about to archive.  Streams with non-float payloads (supply-chain
events, test fixtures) keep the legacy raw-record representation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .tsblocks import SealedBlock, decode_uints, encode_uints


@dataclass(frozen=True)
class ArchiveRecord:
    """One immutable archived record."""

    stream: str
    timestamp: float
    payload: Any
    sequence: int


@dataclass
class _Stream:
    """One stream's tiers: sealed compressed runs plus a raw head."""

    #: (block, compressed global-sequence column) pairs, oldest first.
    sealed: list[tuple[SealedBlock, bytes]] = field(default_factory=list)
    sealed_last: list[float] = field(default_factory=list)
    head: list[ArchiveRecord] = field(default_factory=list)
    head_stamps: list[float] = field(default_factory=list)
    #: Set once a non-float payload arrives; the stream then stays raw.
    raw_only: bool = False
    last_ts: float | None = None
    count: int = 0


class ArchiveLog:
    """Per-stream append-only logs with time-range reads.

    Records within a stream must be appended with non-decreasing timestamps
    (enforced), which is what makes binary-searched range reads — and the
    per-block summary skipping — valid.
    """

    def __init__(self, block_size: int = 512) -> None:
        if block_size < 0:
            raise ValueError("block_size must be >= 0")
        self.block_size = block_size
        self._streams: dict[str, _Stream] = {}
        self._sequence = 0
        self.blocks_sealed = 0
        self.records_decoded = 0

    # -- writes ----------------------------------------------------------------

    def append(self, stream: str, timestamp: float, payload: Any) -> ArchiveRecord:
        """Append one record; timestamps per stream must not go backwards."""
        entry = self._streams.setdefault(stream, _Stream())
        if entry.last_ts is not None and timestamp < entry.last_ts:
            raise ValueError(
                f"archive stream {stream!r}: timestamp {timestamp} is older "
                f"than last appended {entry.last_ts}"
            )
        self._sequence += 1
        record = ArchiveRecord(stream, timestamp, payload, self._sequence)
        entry.head.append(record)
        entry.head_stamps.append(timestamp)
        entry.last_ts = timestamp
        entry.count += 1
        if not entry.raw_only and type(payload) is not float:
            entry.raw_only = True
        if (
            not entry.raw_only
            and self.block_size
            and len(entry.head) >= self.block_size
        ):
            self._seal_head(entry)
        return record

    def _seal_head(self, entry: _Stream) -> None:
        records = entry.head
        block = SealedBlock.seal([(r.timestamp, r.payload) for r in records])
        seq_bytes = encode_uints([r.sequence for r in records])
        entry.sealed.append((block, seq_bytes))
        entry.sealed_last.append(block.t_last)
        entry.head = []
        entry.head_stamps = []
        self.blocks_sealed += 1

    def append_block(self, stream: str, block: SealedBlock) -> int:
        """Archive a whole sealed block (e.g. a window-evicted run).

        The block's points get a fresh contiguous run of global sequence
        numbers.  A pending raw head is sealed first (numeric streams) or
        the block is unrolled into records (raw-fallback streams), so the
        oldest-to-newest tier order always holds.
        """
        entry = self._streams.setdefault(stream, _Stream())
        if entry.last_ts is not None and block.t_first < entry.last_ts:
            raise ValueError(
                f"archive stream {stream!r}: block starting {block.t_first} "
                f"is older than last appended {entry.last_ts}"
            )
        if entry.raw_only:
            for timestamp, value in block.decode():
                self.append(stream, timestamp, value)
            return block.count
        if entry.head:
            self._seal_head(entry)
        first_seq = self._sequence + 1
        self._sequence += block.count
        seq_bytes = encode_uints(list(range(first_seq, self._sequence + 1)))
        entry.sealed.append((block, seq_bytes))
        entry.sealed_last.append(block.t_last)
        entry.last_ts = block.t_last
        entry.count += block.count
        return block.count

    def extend(
        self, stream: str, items: Iterable[tuple[float, Any]]
    ) -> list[ArchiveRecord]:
        """Append many (timestamp, payload) pairs; returns the records."""
        return [self.append(stream, ts, payload) for ts, payload in items]

    # -- accounting ------------------------------------------------------------

    def streams(self) -> list[str]:
        """Names of all streams with at least one record."""
        return sorted(name for name, s in self._streams.items() if s.count)

    def __len__(self) -> int:
        return sum(entry.count for entry in self._streams.values())

    @property
    def block_bytes(self) -> int:
        """Total compressed bytes across all sealed archive blocks."""
        return sum(
            block.nbytes + len(seq)
            for entry in self._streams.values()
            for block, seq in entry.sealed
        )

    @property
    def sealed_records(self) -> int:
        """How many records live in sealed (compressed) blocks."""
        return sum(
            block.count
            for entry in self._streams.values()
            for block, _seq in entry.sealed
        )

    # -- reads -----------------------------------------------------------------

    def _decode(
        self, stream: str, block: SealedBlock, seq_bytes: bytes
    ) -> list[ArchiveRecord]:
        sequences = decode_uints(seq_bytes, block.count)
        self.records_decoded += block.count
        return [
            ArchiveRecord(stream, timestamp, value, sequence)
            for (timestamp, value), sequence in zip(block.decode(), sequences)
        ]

    def read_range(
        self, stream: str, start: float, end: float
    ) -> list[ArchiveRecord]:
        """Records in ``stream`` with start <= timestamp < end.

        Sealed blocks whose summary window misses the range are skipped
        without decompression.
        """
        entry = self._streams.get(stream)
        if entry is None or end <= start:
            return []
        out: list[ArchiveRecord] = []
        if entry.sealed:
            lo = bisect.bisect_left(entry.sealed_last, start)
            for block, seq_bytes in entry.sealed[lo:]:
                if block.t_first >= end:
                    break
                records = self._decode(stream, block, seq_bytes)
                if start <= block.t_first and block.t_last < end:
                    out.extend(records)
                else:
                    out.extend(
                        r for r in records if start <= r.timestamp < end
                    )
        lo = bisect.bisect_left(entry.head_stamps, start)
        hi = bisect.bisect_left(entry.head_stamps, end, lo)
        out.extend(entry.head[lo:hi])
        return out

    def tail(self, stream: str, count: int) -> list[ArchiveRecord]:
        """The most recent ``count`` records of a stream."""
        if count < 0:
            raise ValueError("count must be >= 0")
        entry = self._streams.get(stream)
        if count == 0 or entry is None:
            return []
        if count <= len(entry.head):
            return entry.head[len(entry.head) - count:]
        out = list(entry.head)
        need = count - len(out)
        for block, seq_bytes in reversed(entry.sealed):
            if need <= 0:
                break
            records = self._decode(stream, block, seq_bytes)
            take = records[-need:] if need < len(records) else records
            out = take + out
            need -= len(take)
        return out

    def export(
        self,
        stream: str,
        transform: Callable[[ArchiveRecord], Any] | None = None,
    ) -> list[Any]:
        """Export a full stream, optionally mapping each record.

        This is the hook a star-schema loader would use; the default
        transform returns the records unchanged.
        """
        entry = self._streams.get(stream)
        if entry is None:
            return []
        records: list[ArchiveRecord] = []
        for block, seq_bytes in entry.sealed:
            records.extend(self._decode(stream, block, seq_bytes))
        records.extend(entry.head)
        if transform is None:
            return records
        return [transform(record) for record in records]
