"""Append-only archive log for historical data export.

The paper's architecture (§5) exports data recorded in cloud storage into an
analytical database (star schema) for historical queries, which it declares
out of scope.  We keep the boundary honest: platforms *append* immutable
records here (sensor windows evicted from actor state, supply-chain events),
and a minimal query surface supports the kind of time-range retrieval a
downstream warehouse loader would perform.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class ArchiveRecord:
    """One immutable archived record."""

    stream: str
    timestamp: float
    payload: Any
    sequence: int


class ArchiveLog:
    """Per-stream append-only logs with time-range reads.

    Records within a stream must be appended with non-decreasing timestamps
    (enforced), which is what makes binary-searched range reads valid.
    """

    def __init__(self) -> None:
        self._streams: dict[str, list[ArchiveRecord]] = {}
        self._timestamps: dict[str, list[float]] = {}
        self._sequence = 0

    def append(self, stream: str, timestamp: float, payload: Any) -> ArchiveRecord:
        """Append one record; timestamps per stream must not go backwards."""
        timestamps = self._timestamps.setdefault(stream, [])
        if timestamps and timestamp < timestamps[-1]:
            raise ValueError(
                f"archive stream {stream!r}: timestamp {timestamp} is older "
                f"than last appended {timestamps[-1]}"
            )
        self._sequence += 1
        record = ArchiveRecord(stream, timestamp, payload, self._sequence)
        self._streams.setdefault(stream, []).append(record)
        timestamps.append(timestamp)
        return record

    def extend(
        self, stream: str, items: Iterable[tuple[float, Any]]
    ) -> list[ArchiveRecord]:
        """Append many (timestamp, payload) pairs; returns the records."""
        return [self.append(stream, ts, payload) for ts, payload in items]

    def streams(self) -> list[str]:
        """Names of all streams with at least one record."""
        return sorted(self._streams)

    def __len__(self) -> int:
        return sum(len(records) for records in self._streams.values())

    def read_range(
        self, stream: str, start: float, end: float
    ) -> list[ArchiveRecord]:
        """Records in ``stream`` with start <= timestamp < end."""
        records = self._streams.get(stream, [])
        timestamps = self._timestamps.get(stream, [])
        lo = bisect.bisect_left(timestamps, start)
        hi = bisect.bisect_left(timestamps, end)
        return records[lo:hi]

    def tail(self, stream: str, count: int) -> list[ArchiveRecord]:
        """The most recent ``count`` records of a stream."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return []
        return self._streams.get(stream, [])[-count:]

    def export(
        self,
        stream: str,
        transform: Callable[[ArchiveRecord], Any] | None = None,
    ) -> list[Any]:
        """Export a full stream, optionally mapping each record.

        This is the hook a star-schema loader would use; the default
        transform returns the records unchanged.
        """
        records = self._streams.get(stream, [])
        if transform is None:
            return list(records)
        return [transform(record) for record in records]
