"""Cluster system storage: membership and reminders (the paper's RDS role).

Orleans keeps "silo instances, reminders, and general system state" in a
relational system store (Amazon RDS in the paper's deployment).  This module
provides the same two tables:

- a **membership table** with lease-style liveness (silos announce
  themselves, refresh a lease, and are suspected dead when it lapses);
- a **reminder table** for durable timers that must survive actor
  deactivation (re-read by silos on activation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConditionalCheckFailedError, SiloUnavailableError
from ..kernel.scheduler import Scheduler

DEFAULT_LEASE_SECONDS = 30.0


@dataclass
class MembershipEntry:
    """One silo's row in the membership table."""

    silo_id: str
    joined_at: float
    lease_expires_at: float
    status: str = "active"  # active | suspected | dead
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Reminder:
    """A durable timer registration."""

    actor_key: str
    name: str
    period: float
    first_due: float


class SystemStore:
    """Membership + reminders, with virtual-time lease expiry."""

    def __init__(
        self, scheduler: Scheduler, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> None:
        self._scheduler = scheduler
        self.lease_seconds = lease_seconds
        self._members: dict[str, MembershipEntry] = {}
        self._reminders: dict[tuple[str, str], Reminder] = {}
        # Membership view version: bumped on every view *change* (a silo
        # joining or being retired), never on lease refreshes.  Eviction is
        # a compare-and-swap against this epoch, so two detectors racing to
        # evict resolve deterministically: one wins, the other observes the
        # epoch moved and re-reads the view.
        self.epoch = 0
        # Monotonic fence tokens, one sequence per grain storage key.
        self._fences: dict[str, int] = {}

    # -- membership ----------------------------------------------------------

    def announce(self, silo_id: str, **metadata: object) -> MembershipEntry:
        """Insert or revive a silo row with a fresh lease (a view change)."""
        now = self._scheduler.now
        entry = MembershipEntry(
            silo_id=silo_id,
            joined_at=now,
            lease_expires_at=now + self.lease_seconds,
            metadata=dict(metadata),
        )
        self._members[silo_id] = entry
        self.epoch += 1
        return entry

    def refresh_lease(self, silo_id: str) -> None:
        """Extend a silo's lease; raises if the silo never announced.

        A row already marked ``dead`` cannot be resurrected by a refresh:
        the silo was evicted (view change) while it could not reach this
        table, and must re-:meth:`announce` to rejoin — this is what stops a
        healed zombie from silently re-entering the membership view with a
        stale epoch.
        """
        entry = self._members.get(silo_id)
        if entry is None:
            raise SiloUnavailableError(f"silo {silo_id!r} not in membership table")
        if entry.status == "dead":
            raise SiloUnavailableError(
                f"silo {silo_id!r} was evicted from membership; re-announce to rejoin"
            )
        entry.lease_expires_at = self._scheduler.now + self.lease_seconds
        entry.status = "active"

    def retire(self, silo_id: str, expected_epoch: int | None = None) -> None:
        """Mark a silo dead (graceful shutdown or eviction) — a view change.

        With ``expected_epoch`` the retirement is a compare-and-swap on the
        membership epoch: if another view change landed since the caller
        read the view, :class:`~repro.errors.ConditionalCheckFailedError` is
        raised and nothing changes (the caller should re-read and re-decide).
        """
        if expected_epoch is not None and expected_epoch != self.epoch:
            raise ConditionalCheckFailedError(
                f"membership epoch moved: expected {expected_epoch}, now {self.epoch}"
            )
        entry = self._members.get(silo_id)
        if entry is not None and entry.status != "dead":
            entry.status = "dead"
            self.epoch += 1

    def acquire_fence(self, storage_key: str) -> int:
        """Issue the next fence token for one grain's storage key.

        Tokens are monotonically increasing per key; a new activation
        acquires one at load time and stamps every flush with it, so stores
        can reject writes from any older (zombie) activation.
        """
        fence = self._fences.get(storage_key, 0) + 1
        self._fences[storage_key] = fence
        return fence

    def _effective_status(self, entry: MembershipEntry) -> str:
        if entry.status == "dead":
            return "dead"
        if entry.lease_expires_at < self._scheduler.now:
            return "suspected"
        return entry.status

    def active_silos(self) -> list[str]:
        """Silo ids currently alive (announced, lease not lapsed)."""
        return [
            silo_id
            for silo_id, entry in sorted(self._members.items())
            if self._effective_status(entry) == "active"
        ]

    def status_of(self, silo_id: str) -> str:
        """Return 'active', 'suspected', 'dead' — or raise if unknown."""
        entry = self._members.get(silo_id)
        if entry is None:
            raise SiloUnavailableError(f"silo {silo_id!r} not in membership table")
        return self._effective_status(entry)

    def members(self) -> Iterable[MembershipEntry]:
        """All membership rows (for operator tooling and tests)."""
        return list(self._members.values())

    # -- reminders -------------------------------------------------------------

    def register_reminder(
        self, actor_key: str, name: str, period: float, first_due: float | None = None
    ) -> Reminder:
        """Create or replace a durable reminder for an actor."""
        if period <= 0:
            raise ValueError("reminder period must be positive")
        due = first_due if first_due is not None else self._scheduler.now + period
        reminder = Reminder(actor_key, name, period, due)
        self._reminders[(actor_key, name)] = reminder
        return reminder

    def unregister_reminder(self, actor_key: str, name: str) -> bool:
        """Remove a reminder; return True if it existed."""
        return self._reminders.pop((actor_key, name), None) is not None

    def reminders_for(self, actor_key: str) -> list[Reminder]:
        """All reminders registered for one actor."""
        return [r for (key, _name), r in self._reminders.items() if key == actor_key]

    def all_reminders(self) -> list[Reminder]:
        """Every reminder in the table."""
        return list(self._reminders.values())
