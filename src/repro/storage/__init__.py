"""Storage substrates: key-value stores, system store, archive log, serde."""

from ..errors import FencedWriteError, ThrottledError
from .archive import ArchiveLog, ArchiveRecord
from .chaos import ChaosKVStore
from .dynamo import ProvisionedKVStore
from .kv import InMemoryKVStore, Item, KeyValueStore
from .serde import NotSerializableError, ensure_serializable, estimate_size, snapshot
from .system_store import MembershipEntry, Reminder, SystemStore
from .tsblocks import (
    BlockStats,
    BlockSummary,
    SealedBlock,
    TieredSeries,
    decode_floats,
    decode_uints,
    encode_floats,
    encode_uints,
    summarize,
)
from .wal import RedoJournal, RedoRecord

__all__ = [
    "ArchiveLog",
    "ArchiveRecord",
    "BlockStats",
    "BlockSummary",
    "SealedBlock",
    "TieredSeries",
    "ChaosKVStore",
    "FencedWriteError",
    "InMemoryKVStore",
    "Item",
    "KeyValueStore",
    "MembershipEntry",
    "NotSerializableError",
    "ProvisionedKVStore",
    "RedoJournal",
    "RedoRecord",
    "Reminder",
    "SystemStore",
    "ThrottledError",
    "decode_floats",
    "decode_uints",
    "encode_floats",
    "encode_uints",
    "ensure_serializable",
    "estimate_size",
    "snapshot",
    "summarize",
]
