"""Storage substrates: key-value stores, system store, archive log, serde."""

from ..errors import ThrottledError
from .archive import ArchiveLog, ArchiveRecord
from .chaos import ChaosKVStore
from .dynamo import ProvisionedKVStore
from .kv import InMemoryKVStore, Item, KeyValueStore
from .serde import NotSerializableError, ensure_serializable, estimate_size, snapshot
from .system_store import MembershipEntry, Reminder, SystemStore

__all__ = [
    "ArchiveLog",
    "ArchiveRecord",
    "ChaosKVStore",
    "InMemoryKVStore",
    "Item",
    "KeyValueStore",
    "MembershipEntry",
    "NotSerializableError",
    "ProvisionedKVStore",
    "Reminder",
    "SystemStore",
    "ThrottledError",
    "ensure_serializable",
    "estimate_size",
    "snapshot",
]
