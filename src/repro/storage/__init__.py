"""Storage substrates: key-value stores, system store, archive log, serde."""

from .archive import ArchiveLog, ArchiveRecord
from .dynamo import ProvisionedKVStore
from .kv import InMemoryKVStore, Item, KeyValueStore
from .serde import NotSerializableError, ensure_serializable, estimate_size, snapshot
from .system_store import MembershipEntry, Reminder, SystemStore

__all__ = [
    "ArchiveLog",
    "ArchiveRecord",
    "InMemoryKVStore",
    "Item",
    "KeyValueStore",
    "MembershipEntry",
    "NotSerializableError",
    "ProvisionedKVStore",
    "Reminder",
    "SystemStore",
    "ensure_serializable",
    "estimate_size",
    "snapshot",
]
