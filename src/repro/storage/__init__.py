"""Storage substrates: key-value stores, system store, archive log, serde."""

from ..errors import FencedWriteError, ThrottledError
from .archive import ArchiveLog, ArchiveRecord
from .chaos import ChaosKVStore
from .dynamo import ProvisionedKVStore
from .kv import InMemoryKVStore, Item, KeyValueStore
from .serde import NotSerializableError, ensure_serializable, estimate_size, snapshot
from .system_store import MembershipEntry, Reminder, SystemStore
from .wal import RedoJournal, RedoRecord

__all__ = [
    "ArchiveLog",
    "ArchiveRecord",
    "ChaosKVStore",
    "FencedWriteError",
    "InMemoryKVStore",
    "Item",
    "KeyValueStore",
    "MembershipEntry",
    "NotSerializableError",
    "ProvisionedKVStore",
    "RedoJournal",
    "RedoRecord",
    "Reminder",
    "SystemStore",
    "ThrottledError",
    "ensure_serializable",
    "estimate_size",
    "snapshot",
]
