"""Serialization helpers enforcing message and state isolation.

Actors must not share mutable state.  The runtime deep-copies every message
payload and every stored state document at the boundary, which is the
in-process equivalent of serializing over the wire.  ``snapshot`` also
verifies that a value is *serializable at all* (no open files, no lambdas),
so code that would break in a real deployment breaks here too.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any


class NotSerializableError(TypeError):
    """The value cannot cross an actor or storage boundary."""


def ensure_serializable(value: Any) -> None:
    """Raise :class:`NotSerializableError` if ``value`` cannot be pickled."""
    try:
        pickle.dumps(value)
    except Exception as exc:  # noqa: BLE001 - pickle raises many types
        raise NotSerializableError(
            f"value of type {type(value).__name__} cannot cross an actor "
            f"boundary: {exc}"
        ) from exc


def snapshot(value: Any) -> Any:
    """Return an isolated deep copy of ``value``.

    Deep copy rather than pickle round-trip: copy preserves object graphs
    (shared references within one message stay shared) and is substantially
    faster, which matters for high-rate ingestion in simulations.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes, frozenset)):
        return value
    if isinstance(value, tuple) and all(
        item is None or isinstance(item, (bool, int, float, str, bytes))
        for item in value
    ):
        return value
    return copy.deepcopy(value)


def estimate_size(value: Any) -> int:
    """Rough byte size of a value, used for storage capacity accounting."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # noqa: BLE001
        raise NotSerializableError(
            f"cannot size value of type {type(value).__name__}: {exc}"
        ) from exc
