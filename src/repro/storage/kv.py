"""Key-value store interface and a plain in-memory implementation.

The actor runtime persists grain state through this interface (the paper's
DynamoDB role).  All operations are asynchronous so that implementations can
charge latency and capacity; the in-memory store here is the zero-latency
baseline used by unit tests.

Versioning: every item carries a monotonically increasing integer *etag*.
Conditional writes (``expected_etag``) give optimistic concurrency, which the
runtime uses to detect split-brain double activations of the same grain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import ConditionalCheckFailedError, FencedWriteError, KeyNotFoundError
from .serde import snapshot


@dataclass(frozen=True)
class Item:
    """A stored document plus its version tag."""

    value: Any
    etag: int


class KeyValueStore:
    """Abstract asynchronous key-value store.

    Keys are strings; values are arbitrary serializable documents.  Concrete
    stores may raise :class:`~repro.errors.ThrottlingError` on overload.
    """

    async def get(self, key: str) -> Item:
        """Return the item for ``key`` or raise KeyNotFoundError."""
        raise NotImplementedError

    async def try_get(self, key: str) -> Item | None:
        """Return the item for ``key``, or None if absent."""
        try:
            return await self.get(key)
        except KeyNotFoundError:
            return None

    async def put(self, key: str, value: Any, expected_etag: int | None = None) -> int:
        """Store ``value`` under ``key``; return the new etag.

        With ``expected_etag`` the write succeeds only if the current etag
        matches (0 means "must not exist"), else raises
        :class:`~repro.errors.ConditionalCheckFailedError`.
        """
        raise NotImplementedError

    async def put_many(
        self, entries: list[tuple[str, Any, int | None]]
    ) -> list[int | BaseException]:
        """Store several ``(key, value, expected_etag)`` entries.

        Returns one result per entry *positionally*: the new etag on
        success, or the exception that write raised (conditional-check
        failures are isolated per entry, never poisoning the batch).  The
        base implementation loops over :meth:`put` — one round trip per
        entry; capacity-modeled stores override it to charge a single round
        trip for the whole batch (DynamoDB ``BatchWriteItem``), which is the
        storage half of the ingestion fast path's group commit.
        """
        results: list[int | BaseException] = []
        for key, value, expected_etag in entries:
            try:
                results.append(await self.put(key, value, expected_etag))
            except Exception as exc:  # noqa: BLE001 - isolated per entry
                results.append(exc)
        return results

    async def delete(self, key: str) -> bool:
        """Delete ``key``; return True if it existed."""
        raise NotImplementedError

    async def scan(self, prefix: str = "") -> list[tuple[str, Item]]:
        """Return all (key, item) pairs whose key starts with ``prefix``."""
        raise NotImplementedError

    # -- fenced writes -------------------------------------------------------
    #
    # Fence tokens (monotonic per grain, issued by the membership store)
    # piggyback on conditional writes: the store remembers the highest fence
    # admitted per key and rejects anything older with FencedWriteError.
    # The fence check lives in a *separate* commit API rather than a ``put``
    # kwarg so that existing KeyValueStore subclasses — including test fakes
    # that override ``put`` — keep working unmodified: ``fenced_put`` admits
    # the fence, then delegates to whatever ``put`` the subclass provides.

    fenced_writes = 0  # stale writes rejected; shadowed per instance on first use
    #: Optional flight-recorder ring (duck-typed — see repro.obs.recorder;
    #: storage never imports obs).  Fence bounces are recorded.
    journal = None

    def _admit_fence(self, key: str, fence: int | None) -> None:
        """Record ``fence`` as the floor for ``key``; reject older tokens."""
        if fence is None:
            return
        floors = self.__dict__.setdefault("_fence_floors", {})
        floor = floors.get(key)
        if floor is not None and fence < floor:
            self.fenced_writes = self.fenced_writes + 1
            journal = self.journal
            if journal is not None:
                journal.record("fenced-bounce", key, fence)
            raise FencedWriteError(
                f"key {key!r}: fence {fence} is older than admitted fence {floor}"
            )
        floors[key] = fence

    async def advance_fence(self, key: str, fence: int | None) -> None:
        """Raise the fence floor for ``key`` without writing.

        Called by a successor activation at load time, so that a zombie
        predecessor's in-flight flush is rejected even if it lands before
        the successor's first write.
        """
        self._admit_fence(key, fence)

    async def fenced_put(
        self,
        key: str,
        value: Any,
        expected_etag: int | None = None,
        fence: int | None = None,
    ) -> int:
        """Conditional write that additionally checks the fence token."""
        self._admit_fence(key, fence)
        return await self.put(key, value, expected_etag)

    async def fenced_put_many(
        self, entries: list[tuple[str, Any, int | None, int | None]]
    ) -> list[int | BaseException]:
        """Fenced variant of :meth:`put_many` over 4-tuples with fences.

        Per-entry isolation matches :meth:`put_many`: a fence rejection
        surfaces positionally as :class:`~repro.errors.FencedWriteError`
        without poisoning the batch.
        """
        results: list[int | BaseException] = []
        for key, value, expected_etag, fence in entries:
            try:
                results.append(
                    await self.fenced_put(key, value, expected_etag, fence)
                )
            except Exception as exc:  # noqa: BLE001 - isolated per entry
                results.append(exc)
        return results


class InMemoryKVStore(KeyValueStore):
    """Dictionary-backed store with etags; zero latency, never throttles."""

    def __init__(self) -> None:
        self._items: dict[str, Item] = {}
        self.reads = 0
        self.writes = 0
        self.deletes = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    async def get(self, key: str) -> Item:
        self.reads += 1
        item = self._items.get(key)
        if item is None:
            raise KeyNotFoundError(key)
        return Item(snapshot(item.value), item.etag)

    async def put(self, key: str, value: Any, expected_etag: int | None = None) -> int:
        self.writes += 1
        current = self._items.get(key)
        current_etag = current.etag if current is not None else 0
        if expected_etag is not None and expected_etag != current_etag:
            raise ConditionalCheckFailedError(
                f"key {key!r}: expected etag {expected_etag}, found {current_etag}"
            )
        new_etag = current_etag + 1
        self._items[key] = Item(snapshot(value), new_etag)
        return new_etag

    async def delete(self, key: str) -> bool:
        self.deletes += 1
        return self._items.pop(key, None) is not None

    async def scan(self, prefix: str = "") -> list[tuple[str, Item]]:
        self.reads += 1
        return [
            (key, Item(snapshot(item.value), item.etag))
            for key, item in sorted(self._items.items())
            if key.startswith(prefix)
        ]

    def keys(self) -> Iterable[str]:
        """All stored keys (test/introspection helper, not part of the API)."""
        return self._items.keys()
