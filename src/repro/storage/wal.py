"""Per-silo write-ahead redo journal: bounded-loss durability for lazy writers.

The paper's benchmarked ``ON_DEACTIVATE`` policy (and the cheaper
``INTERVAL`` policy) trade durability for write capacity: a crash loses
everything since the last flush.  The :class:`RedoJournal` turns that
unbounded window into a configurable one — a background pump snapshots
dirty durable actors every ``redo_lag`` virtual seconds and appends their
state documents here, and :class:`~repro.runtime.persistence.StateCell`
replays the journal suffix on re-activation.

Replay is *fenced*: each record carries the appending activation's fence
token and the etag its document was based on, and a successor only applies
a record when

- ``base_etag`` matches the etag it just loaded from the store (the record
  really is the missing suffix, not a stale divergent branch), and
- the record's fence is not newer than the successor's own (a record from
  the future would mean the journal outlived a later activation — apply
  nothing rather than guess).

Journal appends ride the existing group-commit path when a writer is
supplied, so WAL traffic coalesces with state flushes instead of doubling
round trips.  The in-memory index is authoritative for replay (a redo log
is only read after a failure, and this simulation's "disk" is the process);
durable copies land under the ``wal/`` key prefix for inspection.  Records
are truncated on successful state flush; garbage-collecting the durable
copies is deliberately out of scope (real systems recycle segments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .serde import snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernel.scheduler import Scheduler
    from .groupcommit import GroupCommitWriter
    from .kv import KeyValueStore

__all__ = ["RedoJournal", "RedoRecord"]


@dataclass(frozen=True)
class RedoRecord:
    """One journaled state document: enough to redo a lost flush."""

    key: str
    seq: int
    fence: int | None
    base_etag: int
    document: Any
    appended_at: float


class RedoJournal:
    """An append-only redo log indexed by grain storage key."""

    def __init__(
        self,
        scheduler: "Scheduler",
        store: "KeyValueStore | None" = None,
        writer: "GroupCommitWriter | None" = None,
    ) -> None:
        self._scheduler = scheduler
        self._store = store
        self._writer = writer
        self._records: dict[str, list[RedoRecord]] = {}
        self._seq = 0
        self._fence_floors: dict[str, int] = {}
        self.appends = 0
        self.skipped_appends = 0
        self.replayed_records = 0
        self.truncated_records = 0
        #: Optional flight-recorder ring (duck-typed; obs never imported here).
        self.journal = None

    # -- writing -------------------------------------------------------------

    async def append(
        self, key: str, document: Any, base_etag: int, fence: int | None = None
    ) -> RedoRecord | None:
        """Journal one dirty state document; returns the record, or None.

        Consecutive identical documents are deduplicated (the pump runs on a
        timer, not on change notifications, so an idle-but-dirty actor would
        otherwise re-journal the same bytes every tick).
        """
        floor = self._fence_floors.get(key)
        if fence is not None and floor is not None and fence < floor:
            # A successor already took over this grain; the zombie's journal
            # entry must not become its resurrection vector.
            self.skipped_appends += 1
            return None
        tail = self._records.get(key)
        if tail and tail[-1].document == document and tail[-1].fence == fence:
            self.skipped_appends += 1
            return None
        self._seq += 1
        record = RedoRecord(
            key=key,
            seq=self._seq,
            fence=fence,
            base_etag=base_etag,
            document=snapshot(document),
            appended_at=self._scheduler.now,
        )
        self._records.setdefault(key, []).append(record)
        self.appends += 1
        journal = self.journal
        if journal is not None:
            journal.record("wal-append", key, record.seq)
        await self._persist(record)
        return record

    async def _persist(self, record: RedoRecord) -> None:
        payload = {
            "key": record.key,
            "seq": record.seq,
            "fence": record.fence,
            "base_etag": record.base_etag,
            "document": record.document,
            "appended_at": record.appended_at,
        }
        wal_key = f"wal/{record.key}/{record.seq}"
        if self._writer is not None:
            await self._writer.put(wal_key, payload)
        elif self._store is not None:
            await self._store.put(wal_key, payload)

    # -- recovery ------------------------------------------------------------

    def advance_fence(self, key: str, fence: int | None) -> None:
        """Raise the journal's fence floor for ``key`` (successor took over)."""
        if fence is None:
            return
        floor = self._fence_floors.get(key)
        if floor is None or fence > floor:
            self._fence_floors[key] = fence

    def replay_for(
        self, key: str, stored_etag: int, fence: int | None
    ) -> RedoRecord | None:
        """The newest record a re-activating cell may safely apply.

        ``stored_etag`` is the etag the cell just loaded (0 when the key is
        absent); ``fence`` is the successor's own token.  Records based on a
        different etag are stale branches; records fenced *newer* than the
        caller are from a later activation and are never applied.
        """
        best: RedoRecord | None = None
        for record in self._records.get(key, ()):
            if record.base_etag != stored_etag:
                continue
            if fence is not None and record.fence is not None and record.fence > fence:
                continue
            if best is None or record.seq > best.seq:
                best = record
        if best is not None:
            self.replayed_records += 1
            journal = self.journal
            if journal is not None:
                journal.record("wal-replay", key, best.seq)
        return best

    def truncate(self, key: str) -> int:
        """Drop every in-memory record for ``key`` (its state just flushed)."""
        dropped = len(self._records.pop(key, ()))
        self.truncated_records += dropped
        if dropped:
            journal = self.journal
            if journal is not None:
                journal.record("wal-truncate", key, dropped)
        return dropped

    def pending_records(self, key: str | None = None) -> int:
        """Journal depth, overall or for one key (introspection helper)."""
        if key is not None:
            return len(self._records.get(key, ()))
        return sum(len(records) for records in self._records.values())

    def register_metrics(self, registry: "object") -> None:
        """Export journal counters as pull-probes on ``registry``."""
        registry.register_probe("wal.appends", lambda: self.appends)
        registry.register_probe("wal.skipped_appends", lambda: self.skipped_appends)
        registry.register_probe(
            "wal.replayed_records", lambda: self.replayed_records
        )
        registry.register_probe(
            "wal.truncated_records", lambda: self.truncated_records
        )
        registry.register_probe("wal.pending_records", self.pending_records)
