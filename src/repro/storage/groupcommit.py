"""Group-commit write-behind: coalesce state flushes into one round trip.

Under ingestion load many activations flush state within the same scheduler
window; each flush is an independent :meth:`KeyValueStore.put` round trip.
The :class:`GroupCommitWriter` sits between :class:`StateCell` and the
store: puts issued within a bounded window (``max_delay`` virtual seconds,
``max_batch`` entries) collapse into a single :meth:`put_many` call — one
storage round trip for N writes (TritanDB's write batching; the classic WAL
group commit).

Durability semantics are *unchanged*: a caller's future resolves only after
the batch landed in the store, so a write-through ack still means durable,
and under ``crash_silo`` an unflushed write is lost exactly like a write the
crashed silo never issued (the caller never got its ack).  Per-entry
conditional-check failures surface on exactly the caller that conflicted.
"""

from __future__ import annotations

from typing import Any

from ..kernel.futures import Future
from ..kernel.scheduler import Scheduler
from .kv import KeyValueStore


class GroupCommitWriter:
    """Coalesces puts issued within a window into one ``put_many`` batch."""

    def __init__(
        self,
        store: KeyValueStore,
        scheduler: Scheduler,
        max_batch: int = 64,
        max_delay: float = 0.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.store = store
        self.scheduler = scheduler
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: list[tuple[str, Any, int | None, int | None, Future[int]]] = []
        self._window_open = False
        self.batches = 0
        self.batched_writes = 0
        self.largest_batch = 0
        self.round_trips_saved = 0
        #: Optional flight-recorder ring (duck-typed; obs never imported here).
        self.journal = None

    def put(
        self,
        key: str,
        value: Any,
        expected_etag: int | None = None,
        fence: int | None = None,
    ) -> Future[int]:
        """Join the open commit window; resolves with the new etag.

        The returned future rejects with the entry's own error on a
        conditional-check conflict (or a stale ``fence`` rejected by the
        store), or with the batch's error when the whole round trip failed
        (e.g. storage throttling).
        """
        ticket: Future[int] = Future(f"groupcommit:{key}")
        self._pending.append((key, value, expected_etag, fence, ticket))
        if len(self._pending) >= self.max_batch:
            batch = self._pending
            self._pending = []
            self.scheduler.spawn(self._flush(batch), name="groupcommit-full")
        elif not self._window_open:
            self._window_open = True
            self.scheduler.spawn(self._window(), name="groupcommit-window")
        return ticket

    async def _window(self) -> None:
        if self.max_delay > 0:
            await self.scheduler.sleep(self.max_delay)
        else:
            # One trip through the scheduler: every flush issued at this
            # same virtual instant (one scheduler turn's worth of writes)
            # joins the batch, and nothing waits longer than "now".
            await self.scheduler.sleep(0)
        self._window_open = False
        batch = self._pending
        self._pending = []
        if batch:
            await self._flush(batch)

    async def _flush(
        self, batch: list[tuple[str, Any, int | None, int | None, Future[int]]]
    ) -> None:
        self.batches += 1
        size = len(batch)
        self.largest_batch = max(self.largest_batch, size)
        journal = self.journal
        if journal is not None:
            journal.record("group-commit", size)
        if size > 1:
            self.batched_writes += size
            self.round_trips_saved += size - 1
        try:
            if any(fence is not None for _k, _v, _e, fence, _t in batch):
                results = await self.store.fenced_put_many(
                    [(key, value, etag, fence) for key, value, etag, fence, _t in batch]
                )
            else:
                results = await self.store.put_many(
                    [(key, value, etag) for key, value, etag, _fence, _t in batch]
                )
        except BaseException as exc:  # noqa: BLE001 - whole-batch failure
            for *_entry, ticket in batch:
                if not ticket.done():
                    ticket.set_exception(exc)
            return
        for (*_entry, ticket), result in zip(batch, results):
            if ticket.done():
                continue
            if isinstance(result, BaseException):
                ticket.set_exception(result)
            else:
                ticket.set_result(result)

    def register_metrics(self, registry: "object") -> None:
        """Export group-commit counters as pull-probes on ``registry``."""
        registry.register_probe("groupcommit.batches", lambda: self.batches)
        registry.register_probe(
            "groupcommit.batched_writes", lambda: self.batched_writes
        )
        registry.register_probe(
            "groupcommit.largest_batch", lambda: self.largest_batch
        )
        registry.register_probe(
            "groupcommit.round_trips_saved", lambda: self.round_trips_saved
        )
