"""The Cow actor.

Cows are active entities: their collars continuously update their state, and
farmers and slaughterhouses consume their information services (§4.1 — the
collar is *not* a separate actor; its readings are non-actor objects
encapsulated in the cow, per the paper's aggregation relationship).

Indexed attributes (``owner_id``, ``status``) support the AODB queries
farmers and slaughterhouses need ("cows of farmer X", "cows ready for
slaughter").
"""

from __future__ import annotations

from ..errors import LifecycleError
from ..runtime.actor import Actor, actor_method
from .geo import GeoFence, trajectory_length_meters
from .model import CowStatus, EventKind

TRAJECTORY_CAPACITY = 2048
HISTORY_CAPACITY = 512


class Cow(Actor):
    """One traceable animal and its encapsulated collar data."""

    durable = True
    indexed_attributes = ("owner_id", "status")

    async def register(
        self,
        farmer_id: str,
        breed: str = "angus",
        born_at: float = 0.0,
    ) -> dict:
        """Enter the cow into the platform under its first owner."""
        if self.state.get("owner_id") is not None:
            raise LifecycleError(f"cow {self.actor_id} already registered")
        self.set_indexed("owner_id", farmer_id)
        self.set_indexed("status", CowStatus.ALIVE.value)
        self.state["breed"] = breed
        self.state["born_at"] = born_at
        self.state["trajectory"] = []
        self.state["fence"] = None
        self.state["history"] = []
        self._record_event(EventKind.BIRTH, born_at, farmer_id, {"breed": breed})
        self.mark_dirty()
        return {"cow_id": self.actor_id, "owner_id": farmer_id}

    def _record_event(
        self, kind: EventKind, timestamp: float, actor: str, details: dict
    ) -> None:
        history = self.state.setdefault("history", [])
        history.append(
            {
                "kind": kind.value,
                "timestamp": timestamp,
                "actor": actor,
                "subject": self.actor_id,
                "details": details,
            }
        )
        if len(history) > HISTORY_CAPACITY:
            del history[: len(history) - HISTORY_CAPACITY]
        self.mark_dirty()

    def _require_alive(self) -> None:
        if self.state.get("status") != CowStatus.ALIVE.value:
            raise LifecycleError(
                f"cow {self.actor_id} is {self.state.get('status')}, not alive"
            )

    # -- collar ingestion (the IoT hot path) -----------------------------------------

    async def record_reading(self, reading: dict) -> dict:
        """Ingest one collar reading; returns geo-fence evaluation.

        The trajectory is a bounded window of readings; a breach of the
        assigned pasture fence is reported one-way to the owning farmer.
        """
        self._require_alive()
        trajectory = self.state.setdefault("trajectory", [])
        trajectory.append(reading)
        if len(trajectory) > TRAJECTORY_CAPACITY:
            del trajectory[: len(trajectory) - TRAJECTORY_CAPACITY]
        self.mark_dirty()
        inside = None
        fence_payload = self.state.get("fence")
        if fence_payload is not None:
            fence = GeoFence.from_dict(fence_payload)
            inside = fence.contains(reading["latitude"], reading["longitude"])
            if not inside:
                owner = self.state.get("owner_id")
                if owner:
                    self.context.actor("Farmer", owner).tell(
                        "record_breach",
                        {
                            "cow_id": self.actor_id,
                            "timestamp": reading["timestamp"],
                            "latitude": reading["latitude"],
                            "longitude": reading["longitude"],
                            "fence": fence_payload["name"],
                        },
                    )
        return {"stored": len(trajectory), "inside_fence": inside}

    async def set_fence(self, fence: dict | None) -> bool:
        """Assign (or clear) the pasture geo-fence for this cow."""
        if fence is not None:
            GeoFence.from_dict(fence)  # validate
        self.state["fence"] = fence
        self.mark_dirty()
        return True

    # -- ownership and lifecycle --------------------------------------------------------

    async def set_owner(self, farmer_id: str, timestamp: float = 0.0) -> str:
        """Change ownership (call inside a transaction for consistency)."""
        self._require_alive()
        previous = self.state.get("owner_id")
        self.set_indexed("owner_id", farmer_id)
        self._record_event(
            EventKind.TRANSFER, timestamp, farmer_id, {"from": previous}
        )
        return farmer_id

    async def slaughter(self, slaughterhouse_id: str, timestamp: float) -> dict:
        """Terminal transition; a cow can be slaughtered exactly once."""
        self._require_alive()
        self.set_indexed("status", CowStatus.SLAUGHTERED.value)
        self.state["slaughtered_by"] = slaughterhouse_id
        self.state["slaughtered_at"] = timestamp
        self._record_event(
            EventKind.SLAUGHTER, timestamp, slaughterhouse_id, {}
        )
        return {
            "cow_id": self.actor_id,
            "owner_id": self.state.get("owner_id"),
            "breed": self.state.get("breed"),
            "born_at": self.state.get("born_at"),
            "slaughtered_at": timestamp,
        }

    # -- information services ---------------------------------------------------------

    @actor_method(read_only=True)
    async def current_location(self) -> dict | None:
        """Latest collar position, or None before any reading."""
        trajectory = self.state.get("trajectory", ())
        return dict(trajectory[-1]) if trajectory else None

    @actor_method(read_only=True)
    async def trajectory(
        self, start: float = 0.0, end: float = float("inf")
    ) -> list[dict]:
        """Collar readings with start <= timestamp < end."""
        return [
            dict(r)
            for r in self.state.get("trajectory", ())
            if start <= r["timestamp"] < end
        ]

    @actor_method(read_only=True)
    async def travelled_meters(self) -> float:
        """Length of the recorded trajectory (behavior tracking)."""
        points = [
            (r["latitude"], r["longitude"]) for r in self.state.get("trajectory", ())
        ]
        return trajectory_length_meters(points)

    @actor_method(read_only=True)
    async def history(self) -> list[dict]:
        """The cow's full provenance event log."""
        return [dict(event) for event in self.state.get("history", ())]

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Identity, ownership and lifecycle summary."""
        return {
            "cow_id": self.actor_id,
            "owner_id": self.state.get("owner_id"),
            "status": self.state.get("status"),
            "breed": self.state.get("breed"),
            "born_at": self.state.get("born_at"),
            "readings": len(self.state.get("trajectory", ())),
            "slaughtered_by": self.state.get("slaughtered_by"),
        }
