"""Case study 2: beef cattle tracking & tracing (models A and B)."""

from .chain import Delivery, Distributor, Retailer, Slaughterhouse
from .cow import Cow
from .epcis import cow_events, cut_events, export_product_document
from .farmer import Farmer
from .geo import GeoFence, haversine_meters, rectangle_fence, trajectory_length_meters
from .meat import MeatCut, MeatProduct
from .model import (
    CollarReading,
    CowStatus,
    DeliveryStatus,
    EventKind,
    MeatCutStatus,
    TraceEvent,
    cut_id_for,
    gln,
    gtin,
    product_id_for,
)
from .platform import MODEL_A_ACTORS, CattlePlatform
from .tracing import (
    build_product_trace_graph,
    chain_path,
    origin_farms,
    summarize_trace,
)
from .versions import (
    MODEL_B_ACTORS,
    DistributorB,
    RetailerB,
    SlaughterhouseB,
    new_version,
)

__all__ = [
    "CattlePlatform",
    "CollarReading",
    "Cow",
    "CowStatus",
    "Delivery",
    "DeliveryStatus",
    "Distributor",
    "DistributorB",
    "EventKind",
    "Farmer",
    "GeoFence",
    "MODEL_A_ACTORS",
    "MODEL_B_ACTORS",
    "MeatCut",
    "MeatCutStatus",
    "MeatProduct",
    "Retailer",
    "RetailerB",
    "Slaughterhouse",
    "SlaughterhouseB",
    "TraceEvent",
    "build_product_trace_graph",
    "chain_path",
    "cow_events",
    "cut_events",
    "cut_id_for",
    "export_product_document",
    "gln",
    "gtin",
    "haversine_meters",
    "new_version",
    "origin_farms",
    "product_id_for",
    "rectangle_fence",
    "summarize_trace",
    "trajectory_length_meters",
]
