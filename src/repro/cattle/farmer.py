"""The Farmer actor — one farm unit (a farmer or a cooperative, §4.1)."""

from __future__ import annotations

from ..errors import UnknownEntityError
from ..runtime.actor import Actor, actor_method

BREACH_CAPACITY = 512


class Farmer(Actor):
    """A farm unit owning and managing cows."""

    durable = True

    async def setup(self, name: str, location_gln: str | None = None) -> dict:
        """Initialize the farm unit (idempotent)."""
        self.state.setdefault("name", name)
        self.state.setdefault("location_gln", location_gln)
        self.state.setdefault("herd", [])
        self.state.setdefault("breaches", [])
        self.state.setdefault("fences", {})
        self.mark_dirty()
        return {"farmer_id": self.actor_id, "name": self.state["name"]}

    # -- herd management -----------------------------------------------------------

    async def add_cow(self, cow_id: str) -> int:
        """Record ownership of a cow; returns herd size."""
        herd = self.state.setdefault("herd", [])
        if cow_id not in herd:
            herd.append(cow_id)
            self.mark_dirty()
        return len(herd)

    async def remove_cow(self, cow_id: str) -> int:
        """Drop a cow (sold or slaughtered); returns herd size."""
        herd = self.state.setdefault("herd", [])
        if cow_id not in herd:
            raise UnknownEntityError(
                f"farmer {self.actor_id} does not own {cow_id}"
            )
        herd.remove(cow_id)
        self.mark_dirty()
        return len(herd)

    @actor_method(read_only=True)
    async def herd(self) -> list[str]:
        """Cow ids this farm unit owns."""
        return list(self.state.get("herd", ()))

    # -- pasture management -------------------------------------------------------------

    async def define_fence(self, fence: dict) -> str:
        """Register a named pasture fence for later assignment."""
        self.state.setdefault("fences", {})[fence["name"]] = fence
        self.mark_dirty()
        return fence["name"]

    async def assign_fence(self, cow_id: str, fence_name: str) -> bool:
        """Rotate a cow onto a pasture (pushes the fence to the cow actor)."""
        fences = self.state.get("fences", {})
        if fence_name not in fences:
            raise UnknownEntityError(f"no fence {fence_name!r} at {self.actor_id}")
        if cow_id not in self.state.get("herd", ()):
            raise UnknownEntityError(f"farmer {self.actor_id} does not own {cow_id}")
        return await self.context.actor("Cow", cow_id).set_fence(fences[fence_name])

    async def record_breach(self, breach: dict) -> None:
        """Receive a geo-fence breach from one of the herd's cows."""
        breaches = self.state.setdefault("breaches", [])
        breaches.append(breach)
        if len(breaches) > BREACH_CAPACITY:
            del breaches[: len(breaches) - BREACH_CAPACITY]
        self.mark_dirty()

    @actor_method(read_only=True)
    async def breaches(self, limit: int = 100) -> list[dict]:
        """Recent geo-fence breaches across the herd."""
        return [dict(b) for b in self.state.get("breaches", ())[-limit:]]

    # -- herd information services ---------------------------------------------------

    @actor_method(read_only=True)
    async def herd_locations(self) -> dict:
        """Latest position of every cow in the herd (fan-out query)."""
        herd = list(self.state.get("herd", ()))
        futures = [
            self.context.actor("Cow", cow_id).ask("current_location")
            for cow_id in herd
        ]
        locations = await self.context.runtime.scheduler.gather(futures)
        return dict(zip(herd, locations))

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Farm unit summary."""
        return {
            "farmer_id": self.actor_id,
            "name": self.state.get("name"),
            "location_gln": self.state.get("location_gln"),
            "herd_size": len(self.state.get("herd", ())),
            "fences": sorted(self.state.get("fences", {})),
            "breaches": len(self.state.get("breaches", ())),
        }
