"""Geospatial primitives: distance, trajectories and geo-fences.

Functional requirement 2 of the cattle case study: "Farmers need to track
each cow's trajectory and behavior ... Geo-fencing can help identify
whether a cow is in an appropriate area (e.g., when rotating pasture
grounds)."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_METERS = 6_371_000.0


def haversine_meters(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance between two WGS-84 points, in meters."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    )
    return 2 * EARTH_RADIUS_METERS * math.asin(math.sqrt(min(1.0, a)))


@dataclass(frozen=True)
class GeoFence:
    """A polygonal pasture boundary (vertices as (lat, lon) pairs)."""

    name: str
    vertices: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a geo-fence needs at least three vertices")

    def contains(self, latitude: float, longitude: float) -> bool:
        """Point-in-polygon by ray casting (boundary counts as inside)."""
        inside = False
        count = len(self.vertices)
        for i in range(count):
            lat1, lon1 = self.vertices[i]
            lat2, lon2 = self.vertices[(i + 1) % count]
            # Point exactly on a vertex counts as inside.
            if latitude == lat1 and longitude == lon1:
                return True
            if (lon1 > longitude) != (lon2 > longitude):
                numerator = (longitude - lon1) * (lat2 - lat1)
                intersect_lat = lat1 + numerator / (lon2 - lon1)
                if latitude < intersect_lat:
                    inside = not inside
                elif latitude == intersect_lat:
                    return True  # on an edge
        return inside

    def as_dict(self) -> dict:
        return {"name": self.name, "vertices": [list(v) for v in self.vertices]}

    @classmethod
    def from_dict(cls, payload: dict) -> "GeoFence":
        return cls(payload["name"], tuple(tuple(v) for v in payload["vertices"]))


def rectangle_fence(
    name: str, lat_min: float, lon_min: float, lat_max: float, lon_max: float
) -> GeoFence:
    """Convenience: an axis-aligned rectangular pasture."""
    if lat_max <= lat_min or lon_max <= lon_min:
        raise ValueError("rectangle must have positive extent")
    return GeoFence(
        name,
        (
            (lat_min, lon_min),
            (lat_min, lon_max),
            (lat_max, lon_max),
            (lat_max, lon_min),
        ),
    )


def trajectory_length_meters(points: list[tuple[float, float]]) -> float:
    """Total path length of a (lat, lon) trajectory."""
    total = 0.0
    for (lat1, lon1), (lat2, lon2) in zip(points, points[1:]):
        total += haversine_meters(lat1, lon1, lat2, lon2)
    return total
