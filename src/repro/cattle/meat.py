"""Meat Cut and Meat Product actors (model A, Figure 3).

In the paper's primary model these inanimate entities are actors that
"only encapsulate state and manage corresponding queries and updates
originating from active entities" (§4.3).  The alternative representation
as versioned non-actor objects lives in :mod:`repro.cattle.versions`.
"""

from __future__ import annotations

from ..errors import LifecycleError
from ..runtime.actor import Actor, actor_method
from .model import EventKind, MeatCutStatus


class MeatCut(Actor):
    """A unit of beef distributed as a whole, traceable to its cow."""

    durable = True
    indexed_attributes = ("status", "holder")

    async def create(
        self,
        cow_id: str,
        slaughterhouse_id: str,
        timestamp: float,
        weight_kg: float = 20.0,
        cut_kind: str = "rib",
    ) -> dict:
        """Derive the cut at a slaughterhouse from a slaughtered cow."""
        if self.state.get("cow_id") is not None:
            raise LifecycleError(f"meat cut {self.actor_id} already created")
        self.state["cow_id"] = cow_id
        self.state["slaughterhouse_id"] = slaughterhouse_id
        self.state["created_at"] = timestamp
        self.state["weight_kg"] = weight_kg
        self.state["cut_kind"] = cut_kind
        self.set_indexed("status", MeatCutStatus.AT_SLAUGHTERHOUSE.value)
        self.set_indexed("holder", slaughterhouse_id)
        self.state["itinerary"] = [
            {
                "kind": EventKind.TRANSFORMATION.value,
                "timestamp": timestamp,
                "holder": slaughterhouse_id,
                "details": {"from_cow": cow_id},
            }
        ]
        self.state["product_ids"] = []
        self.mark_dirty()
        return {"cut_id": self.actor_id, "cow_id": cow_id}

    def _require_not_transformed(self) -> None:
        if self.state.get("status") == MeatCutStatus.TRANSFORMED.value:
            raise LifecycleError(
                f"meat cut {self.actor_id} was already transformed into products"
            )

    async def start_transit(
        self, delivery_id: str, distributor_id: str, timestamp: float
    ) -> str:
        """A delivery picked this cut up."""
        self._require_not_transformed()
        self.set_indexed("status", MeatCutStatus.IN_TRANSIT.value)
        self.set_indexed("holder", distributor_id)
        self.state.setdefault("itinerary", []).append(
            {
                "kind": EventKind.DELIVERY_START.value,
                "timestamp": timestamp,
                "holder": distributor_id,
                "details": {"delivery_id": delivery_id},
            }
        )
        self.mark_dirty()
        return self.state["status"]

    async def end_transit(
        self, delivery_id: str, destination_id: str, timestamp: float
    ) -> str:
        """A delivery dropped this cut at its destination (a retailer)."""
        if self.state.get("status") != MeatCutStatus.IN_TRANSIT.value:
            raise LifecycleError(
                f"meat cut {self.actor_id} is not in transit"
            )
        self.set_indexed("status", MeatCutStatus.AT_RETAILER.value)
        self.set_indexed("holder", destination_id)
        self.state.setdefault("itinerary", []).append(
            {
                "kind": EventKind.DELIVERY_END.value,
                "timestamp": timestamp,
                "holder": destination_id,
                "details": {"delivery_id": delivery_id},
            }
        )
        self.mark_dirty()
        return self.state["status"]

    async def mark_transformed(
        self, product_ids: list[str], retailer_id: str, timestamp: float
    ) -> str:
        """The retailer turned this cut into consumer products."""
        if self.state.get("status") != MeatCutStatus.AT_RETAILER.value:
            raise LifecycleError(
                f"meat cut {self.actor_id} is not at a retailer "
                f"(status {self.state.get('status')!r})"
            )
        self.set_indexed("status", MeatCutStatus.TRANSFORMED.value)
        self.state.setdefault("product_ids", []).extend(product_ids)
        self.state.setdefault("itinerary", []).append(
            {
                "kind": EventKind.TRANSFORMATION.value,
                "timestamp": timestamp,
                "holder": retailer_id,
                "details": {"into_products": list(product_ids)},
            }
        )
        self.mark_dirty()
        return self.state["status"]

    # -- tracing -------------------------------------------------------------------

    @actor_method(read_only=True)
    async def trace(self) -> dict:
        """This cut's full tracking record (requirements 3-4)."""
        return {
            "cut_id": self.actor_id,
            "cow_id": self.state.get("cow_id"),
            "slaughterhouse_id": self.state.get("slaughterhouse_id"),
            "status": self.state.get("status"),
            "holder": self.state.get("holder"),
            "weight_kg": self.state.get("weight_kg"),
            "cut_kind": self.state.get("cut_kind"),
            "itinerary": [dict(e) for e in self.state.get("itinerary", ())],
            "product_ids": list(self.state.get("product_ids", ())),
        }

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Short status summary."""
        return {
            "cut_id": self.actor_id,
            "status": self.state.get("status"),
            "holder": self.state.get("holder"),
        }


class MeatProduct(Actor):
    """A consumer product composed from one or more meat cuts (many-to-many)."""

    durable = True
    indexed_attributes = ("retailer_id",)

    async def create(
        self,
        retailer_id: str,
        cut_ids: list[str],
        timestamp: float,
        product_kind: str = "steak-pack",
    ) -> dict:
        """Compose the product at a retailer."""
        if self.state.get("retailer_id") is not None:
            raise LifecycleError(f"product {self.actor_id} already created")
        if not cut_ids:
            raise ValueError("a meat product needs at least one cut")
        self.set_indexed("retailer_id", retailer_id)
        self.state["cut_ids"] = list(cut_ids)
        self.state["created_at"] = timestamp
        self.state["product_kind"] = product_kind
        self.state["sold_at"] = None
        self.mark_dirty()
        return {"product_id": self.actor_id, "cut_ids": list(cut_ids)}

    async def sell(self, timestamp: float) -> dict:
        """Final sale to a consumer."""
        if self.state.get("sold_at") is not None:
            raise LifecycleError(f"product {self.actor_id} already sold")
        self.state["sold_at"] = timestamp
        self.mark_dirty()
        return {"product_id": self.actor_id, "sold_at": timestamp}

    @actor_method(read_only=True)
    async def trace(self) -> dict:
        """Consumer-facing trace: the product plus each cut's full trace."""
        cut_ids = list(self.state.get("cut_ids", ()))
        futures = [
            self.context.actor("MeatCut", cut_id).ask("trace") for cut_id in cut_ids
        ]
        cut_traces = await self.context.runtime.scheduler.gather(futures)
        return {
            "product_id": self.actor_id,
            "retailer_id": self.state.get("retailer_id"),
            "product_kind": self.state.get("product_kind"),
            "created_at": self.state.get("created_at"),
            "sold_at": self.state.get("sold_at"),
            "cuts": cut_traces,
        }
