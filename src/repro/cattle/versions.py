"""Model B (Figure 5): meat cuts and products as versioned non-actor objects.

The paper's §4.3 trade-off: frequently accessed inanimate entities can be
modeled as non-actor objects whose *versions* are copied between the actors
responsible for each supply-chain stage.  "Upon transfer, the object
representing the meat cut will be copied from the Slaughterhouse actor to
the Distributor actor, where this new object version can be updated. ...
communication to obtain meat cut information is obviated", at the price of
copying and redundancy.

This module provides the versioned-object machinery and the stage actors
(registered as ``SlaughterhouseB`` etc. so both models coexist in one
runtime for the §4.3 ablation benchmark).
"""

from __future__ import annotations

from ..errors import LifecycleError, UnknownEntityError
from ..runtime.actor import Actor, actor_method
from .model import cut_id_for, product_id_for


def new_version(
    entity_id: str, holder: str, timestamp: float, payload: dict, parent: dict | None
) -> dict:
    """Create the next object version of an entity at a new holder.

    Versions form a chain: each embeds its provenance (prior holders), so a
    holder can answer trace queries from purely local state.
    """
    version = 1 if parent is None else parent["version"] + 1
    chain = list(parent["chain"]) if parent is not None else []
    chain.append({"holder": holder, "timestamp": timestamp, "version": version})
    return {
        "entity_id": entity_id,
        "version": version,
        "holder": holder,
        "timestamp": timestamp,
        "payload": dict(payload),
        "chain": chain,
    }


class _VersionHolder(Actor):
    """Shared machinery: a stage actor holding object versions locally."""

    durable = True

    async def setup(self, name: str, location_gln: str | None = None) -> dict:
        """Initialize the stage actor (idempotent)."""
        self.state.setdefault("name", name)
        self.state.setdefault("location_gln", location_gln)
        self.state.setdefault("versions", {})
        self.mark_dirty()
        return {"actor_id": self.actor_id, "name": self.state["name"]}

    def _versions(self) -> dict:
        return self.state.setdefault("versions", {})

    def _hold(self, version: dict) -> None:
        self._versions()[version["entity_id"]] = version
        self.mark_dirty()

    def _release(self, entity_id: str) -> dict:
        versions = self._versions()
        version = versions.pop(entity_id, None)
        if version is None:
            raise UnknownEntityError(
                f"{self.actor_id} holds no version of {entity_id}"
            )
        self.mark_dirty()
        return version

    async def accept_version(self, version: dict) -> int:
        """Receive a copied object version from the previous stage."""
        self._hold(
            new_version(
                version["entity_id"],
                self.actor_id,
                version["timestamp"],
                version["payload"],
                parent=version,
            )
        )
        return self._versions()[version["entity_id"]]["version"]

    @actor_method(read_only=True)
    async def local_info(self, entity_id: str) -> dict:
        """Answer an information request from purely local state — the
        §4.3 payoff: no cross-actor message needed."""
        versions = self._versions()
        if entity_id not in versions:
            raise UnknownEntityError(
                f"{self.actor_id} holds no version of {entity_id}"
            )
        return dict(versions[entity_id])

    @actor_method(read_only=True)
    async def held_entities(self) -> list[str]:
        """Ids of all entities whose current version lives here."""
        return sorted(self._versions())


class SlaughterhouseB(_VersionHolder):
    """Model-B slaughterhouse: creates first versions of cut objects."""

    async def slaughter_cow(
        self, cow_id: str, timestamp: float, cuts: int = 4, weight_kg: float = 20.0
    ) -> list[str]:
        """Slaughter a cow; cut objects are local state, not actors."""
        cow = self.context.actor("Cow", cow_id)
        provenance = await cow.slaughter(self.actor_id, timestamp)
        owner = provenance.get("owner_id")
        if owner:
            self.context.actor("Farmer", owner).tell("remove_cow", cow_id)
        cut_ids = []
        for index in range(cuts):
            cut_id = cut_id_for(cow_id, index)
            payload = {
                "cow_id": cow_id,
                "slaughterhouse_id": self.actor_id,
                "weight_kg": weight_kg,
                "status": "at_slaughterhouse",
            }
            self._hold(new_version(cut_id, self.actor_id, timestamp, payload, None))
            cut_ids.append(cut_id)
        return cut_ids

    async def ship_cuts(
        self, cut_ids: list[str], distributor_id: str, timestamp: float
    ) -> int:
        """Hand the cuts' versions to a distributor (copy + local release)."""
        distributor = self.context.actor("DistributorB", distributor_id)
        for cut_id in cut_ids:
            version = self._release(cut_id)
            version = dict(version)
            version["timestamp"] = timestamp
            version["payload"] = dict(version["payload"], status="in_transit")
            await distributor.accept_version(version)
        return len(cut_ids)


class DistributorB(_VersionHolder):
    """Model-B distributor: updates its local cut versions in transit."""

    async def deliver_cuts(
        self, cut_ids: list[str], retailer_id: str, timestamp: float
    ) -> int:
        """Complete transportation: copy versions onward to the retailer."""
        retailer = self.context.actor("RetailerB", retailer_id)
        for cut_id in cut_ids:
            version = self._release(cut_id)
            version = dict(version)
            version["timestamp"] = timestamp
            version["payload"] = dict(version["payload"], status="at_retailer")
            await retailer.accept_version(version)
        return len(cut_ids)


class RetailerB(_VersionHolder):
    """Model-B retailer: transforms local cut versions into product objects."""

    async def create_product(
        self, cut_ids: list[str], timestamp: float, product_kind: str = "steak-pack"
    ) -> str:
        """Compose a product object from locally-held cut versions."""
        versions = self._versions()
        missing = [cut_id for cut_id in cut_ids if cut_id not in versions]
        if missing:
            raise UnknownEntityError(f"{self.actor_id} does not hold {missing}")
        index = self.state.setdefault("next_product", 0)
        self.state["next_product"] = index + 1
        product_id = product_id_for(self.actor_id, index)
        cut_versions = []
        for cut_id in cut_ids:
            version = versions[cut_id]
            version["payload"]["status"] = "transformed"
            version["payload"]["product_id"] = product_id
            cut_versions.append(dict(version))
        payload = {
            "product_kind": product_kind,
            "cuts": cut_versions,  # embedded provenance: trace is local
            "sold_at": None,
        }
        self._hold(new_version(product_id, self.actor_id, timestamp, payload, None))
        self.mark_dirty()
        return product_id

    async def sell_product(self, product_id: str, timestamp: float) -> dict:
        """Final sale; the product version stays here as the sale record."""
        versions = self._versions()
        if product_id not in versions:
            raise UnknownEntityError(f"{self.actor_id} does not offer {product_id}")
        payload = versions[product_id]["payload"]
        if payload.get("sold_at") is not None:
            raise LifecycleError(f"product {product_id} already sold")
        payload["sold_at"] = timestamp
        self.mark_dirty()
        return {"product_id": product_id, "sold_at": timestamp}

    @actor_method(read_only=True)
    async def trace_product(self, product_id: str) -> dict:
        """Consumer trace served entirely from local state (no fan-out)."""
        versions = self._versions()
        if product_id not in versions:
            raise UnknownEntityError(f"{self.actor_id} does not offer {product_id}")
        version = versions[product_id]
        return {
            "product_id": product_id,
            "retailer_id": self.actor_id,
            "product_kind": version["payload"]["product_kind"],
            "sold_at": version["payload"]["sold_at"],
            "cuts": [dict(cut) for cut in version["payload"]["cuts"]],
        }


MODEL_B_ACTORS = (SlaughterhouseB, DistributorB, RetailerB)
