"""Slaughterhouse, Distributor, Delivery and Retailer actors (model A).

These are the active supply-chain parties of Figure 3: a slaughterhouse
derives Meat Cut actors from cows, a distributor manages Delivery actors
(each one transportation process), and a retailer transforms cuts into Meat
Product actors.
"""

from __future__ import annotations

from ..errors import LifecycleError, UnknownEntityError
from ..runtime.actor import Actor, actor_method
from .model import DeliveryStatus, cut_id_for, product_id_for


class Slaughterhouse(Actor):
    """Slaughters cows and derives meat cuts."""

    durable = True

    async def setup(self, name: str, location_gln: str | None = None) -> dict:
        """Initialize (idempotent)."""
        self.state.setdefault("name", name)
        self.state.setdefault("location_gln", location_gln)
        self.state.setdefault("processed_cows", [])
        self.state.setdefault("produced_cuts", [])
        self.mark_dirty()
        return {"slaughterhouse_id": self.actor_id}

    async def slaughter_cow(
        self, cow_id: str, timestamp: float, cuts: int = 4, weight_kg: float = 20.0
    ) -> list[str]:
        """Slaughter one cow and create its Meat Cut actors.

        The cow actor enforces single-slaughter; the cut actors record
        provenance.  Also removes the cow from its owner's herd.
        """
        if cuts < 1:
            raise ValueError("a slaughter must produce at least one cut")
        cow = self.context.actor("Cow", cow_id)
        provenance = await cow.slaughter(self.actor_id, timestamp)
        owner = provenance.get("owner_id")
        if owner:
            # The herd membership is eventually consistent with the cow's
            # terminal status (a one-way update, per the paper's workflow
            # discussion in §4.4).
            self.context.actor("Farmer", owner).tell("remove_cow", cow_id)
        cut_ids = []
        for index in range(cuts):
            cut_id = cut_id_for(cow_id, index)
            await self.context.actor("MeatCut", cut_id).create(
                cow_id, self.actor_id, timestamp, weight_kg=weight_kg
            )
            cut_ids.append(cut_id)
        self.state.setdefault("processed_cows", []).append(cow_id)
        self.state.setdefault("produced_cuts", []).extend(cut_ids)
        self.mark_dirty()
        return cut_ids

    @actor_method(read_only=True)
    async def processed(self) -> dict:
        """Throughput summary: cows processed, cuts produced."""
        return {
            "slaughterhouse_id": self.actor_id,
            "cows": list(self.state.get("processed_cows", ())),
            "cuts": list(self.state.get("produced_cuts", ())),
        }

    @actor_method(read_only=True)
    async def incoming_cow_info(self, cow_id: str) -> dict:
        """Requirement 3: provenance of a cow that will be slaughtered."""
        cow = self.context.actor("Cow", cow_id)
        description = await cow.describe()
        history = await cow.history()
        return {"cow": description, "history": history}


class Delivery(Actor):
    """One transportation process: cuts from a source to a destination."""

    durable = True
    indexed_attributes = ("status",)

    async def schedule(
        self,
        distributor_id: str,
        cut_ids: list[str],
        source_id: str,
        destination_id: str,
        vehicle: str = "truck",
    ) -> dict:
        """Plan the delivery."""
        if self.state.get("distributor_id") is not None:
            raise LifecycleError(f"delivery {self.actor_id} already scheduled")
        if not cut_ids:
            raise ValueError("a delivery needs at least one cut")
        self.state["distributor_id"] = distributor_id
        self.state["cut_ids"] = list(cut_ids)
        self.state["source_id"] = source_id
        self.state["destination_id"] = destination_id
        self.state["vehicle"] = vehicle
        self.set_indexed("status", DeliveryStatus.PLANNED.value)
        self.state["started_at"] = None
        self.state["completed_at"] = None
        self.mark_dirty()
        return {"delivery_id": self.actor_id, "cuts": len(cut_ids)}

    async def start(self, timestamp: float) -> str:
        """Pick the cuts up: they enter transit under the distributor."""
        if self.state.get("status") != DeliveryStatus.PLANNED.value:
            raise LifecycleError(f"delivery {self.actor_id} is not planned")
        futures = [
            self.context.actor("MeatCut", cut_id).ask(
                "start_transit",
                self.actor_id,
                self.state["distributor_id"],
                timestamp,
            )
            for cut_id in self.state.get("cut_ids", ())
        ]
        await self.context.runtime.scheduler.gather(futures)
        self.set_indexed("status", DeliveryStatus.IN_TRANSIT.value)
        self.state["started_at"] = timestamp
        self.mark_dirty()
        return self.state["status"]

    async def complete(self, timestamp: float) -> str:
        """Drop the cuts at the destination and notify it."""
        if self.state.get("status") != DeliveryStatus.IN_TRANSIT.value:
            raise LifecycleError(f"delivery {self.actor_id} is not in transit")
        destination = self.state["destination_id"]
        futures = [
            self.context.actor("MeatCut", cut_id).ask(
                "end_transit", self.actor_id, destination, timestamp
            )
            for cut_id in self.state.get("cut_ids", ())
        ]
        await self.context.runtime.scheduler.gather(futures)
        self.context.actor("Retailer", destination).tell(
            "receive_cuts", list(self.state.get("cut_ids", ())), timestamp
        )
        self.set_indexed("status", DeliveryStatus.COMPLETED.value)
        self.state["completed_at"] = timestamp
        self.mark_dirty()
        return self.state["status"]

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Tracking info for this transportation process."""
        return {
            "delivery_id": self.actor_id,
            "distributor_id": self.state.get("distributor_id"),
            "cut_ids": list(self.state.get("cut_ids", ())),
            "source_id": self.state.get("source_id"),
            "destination_id": self.state.get("destination_id"),
            "vehicle": self.state.get("vehicle"),
            "status": self.state.get("status"),
            "started_at": self.state.get("started_at"),
            "completed_at": self.state.get("completed_at"),
        }


class Distributor(Actor):
    """A logistics company managing many Delivery actors."""

    durable = True

    async def setup(self, name: str) -> dict:
        """Initialize (idempotent)."""
        self.state.setdefault("name", name)
        self.state.setdefault("delivery_ids", [])
        self.state.setdefault("next_delivery", 0)
        self.mark_dirty()
        return {"distributor_id": self.actor_id}

    async def create_delivery(
        self,
        cut_ids: list[str],
        source_id: str,
        destination_id: str,
        vehicle: str = "truck",
    ) -> str:
        """Create and schedule a new Delivery actor; returns its id."""
        index = self.state.setdefault("next_delivery", 0)
        self.state["next_delivery"] = index + 1
        delivery_id = f"{self.actor_id}/delivery-{index}"
        await self.context.actor("Delivery", delivery_id).schedule(
            self.actor_id, cut_ids, source_id, destination_id, vehicle
        )
        self.state.setdefault("delivery_ids", []).append(delivery_id)
        self.mark_dirty()
        return delivery_id

    @actor_method(read_only=True)
    async def deliveries(self) -> list[str]:
        """Ids of this distributor's transportation processes."""
        return list(self.state.get("delivery_ids", ()))

    @actor_method(read_only=True)
    async def cut_tracking(self, cut_id: str) -> dict:
        """Requirement 4: where a cut came from and where it is going."""
        return await self.context.actor("MeatCut", cut_id).ask("trace")


class Retailer(Actor):
    """Receives meat cuts and transforms them into consumer products."""

    durable = True

    async def setup(self, name: str, location_gln: str | None = None) -> dict:
        """Initialize (idempotent)."""
        self.state.setdefault("name", name)
        self.state.setdefault("location_gln", location_gln)
        self.state.setdefault("stock", [])
        self.state.setdefault("product_ids", [])
        self.state.setdefault("next_product", 0)
        self.mark_dirty()
        return {"retailer_id": self.actor_id}

    async def receive_cuts(self, cut_ids: list[str], timestamp: float) -> int:
        """Take delivered cuts into stock; returns stock size."""
        stock = self.state.setdefault("stock", [])
        for cut_id in cut_ids:
            if cut_id not in stock:
                stock.append(cut_id)
        self.mark_dirty()
        return len(stock)

    async def create_product(
        self,
        cut_ids: list[str],
        timestamp: float,
        product_kind: str = "steak-pack",
    ) -> str:
        """Requirement 5: transform stocked cuts into a consumer product."""
        stock = self.state.setdefault("stock", [])
        missing = [cut_id for cut_id in cut_ids if cut_id not in stock]
        if missing:
            raise UnknownEntityError(
                f"retailer {self.actor_id} does not stock {missing}"
            )
        index = self.state.setdefault("next_product", 0)
        self.state["next_product"] = index + 1
        product_id = product_id_for(self.actor_id, index)
        await self.context.actor("MeatProduct", product_id).create(
            self.actor_id, cut_ids, timestamp, product_kind=product_kind
        )
        futures = [
            self.context.actor("MeatCut", cut_id).ask(
                "mark_transformed", [product_id], self.actor_id, timestamp
            )
            for cut_id in cut_ids
        ]
        await self.context.runtime.scheduler.gather(futures)
        for cut_id in cut_ids:
            stock.remove(cut_id)
        self.state.setdefault("product_ids", []).append(product_id)
        self.mark_dirty()
        return product_id

    async def sell_product(self, product_id: str, timestamp: float) -> dict:
        """Final sale of a product to a consumer."""
        if product_id not in self.state.get("product_ids", ()):
            raise UnknownEntityError(
                f"retailer {self.actor_id} does not offer {product_id}"
            )
        return await self.context.actor("MeatProduct", product_id).sell(timestamp)

    @actor_method(read_only=True)
    async def stock(self) -> list[str]:
        """Cut ids currently in stock."""
        return list(self.state.get("stock", ()))

    @actor_method(read_only=True)
    async def products(self) -> list[str]:
        """Product ids created by this retailer."""
        return list(self.state.get("product_ids", ()))
