"""EPCIS-style event-document export for supply-chain traces.

The case study assumes "a global standard for supply chain messages, GS1,
is adopted by participants" (§2.2).  This module exports a model-A product
trace as an EPCIS-2.0-shaped event document — the interchange format a
certification authority or a partner system would consume:

- ObjectEvents for birth, ownership transfers and the final sale;
- a TransformationEvent for slaughter (cow → cuts) and another for retail
  transformation (cuts → product);
- AggregationEvents for delivery pickup/drop-off (cuts ↔ transport).

The vocabulary uses CBV-style business steps (``commissioning``,
``slaughtering``, ``transporting`` …) without claiming full standard
conformance — the shapes and ordering are what the tests pin down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..aodb.database import AodbDatabase

CBV = "urn:epcglobal:cbv:bizstep"


def _event(kind: str, biz_step: str, timestamp: float, **fields: object) -> dict:
    event = {
        "type": kind,
        "bizStep": f"{CBV}:{biz_step}",
        "eventTime": timestamp,
    }
    event.update(fields)
    return event


def cow_events(history: list[dict]) -> list[dict]:
    """EPCIS events for one cow's recorded history."""
    events: list[dict] = []
    for record in history:
        if record["kind"] == "birth":
            events.append(
                _event(
                    "ObjectEvent",
                    "commissioning",
                    record["timestamp"],
                    action="ADD",
                    epcList=[record["subject"]],
                    bizLocation=record["actor"],
                )
            )
        elif record["kind"] == "transfer":
            events.append(
                _event(
                    "ObjectEvent",
                    "shipping",
                    record["timestamp"],
                    action="OBSERVE",
                    epcList=[record["subject"]],
                    source=record["details"].get("from"),
                    destination=record["actor"],
                )
            )
        elif record["kind"] == "slaughter":
            # The TransformationEvent itself is emitted from the cut data
            # (which knows the outputs); record the terminal observation.
            events.append(
                _event(
                    "ObjectEvent",
                    "slaughtering",
                    record["timestamp"],
                    action="DELETE",
                    epcList=[record["subject"]],
                    bizLocation=record["actor"],
                )
            )
    return events


def cut_events(cut_trace: dict) -> list[dict]:
    """EPCIS events for one meat cut's itinerary."""
    events: list[dict] = []
    for leg in cut_trace.get("itinerary", ()):
        if leg["kind"] == "transformation" and "from_cow" in leg["details"]:
            events.append(
                _event(
                    "TransformationEvent",
                    "slaughtering",
                    leg["timestamp"],
                    inputEPCList=[leg["details"]["from_cow"]],
                    outputEPCList=[cut_trace["cut_id"]],
                    bizLocation=leg["holder"],
                )
            )
        elif leg["kind"] == "delivery_start":
            events.append(
                _event(
                    "AggregationEvent",
                    "transporting",
                    leg["timestamp"],
                    action="ADD",
                    parentID=leg["details"].get("delivery_id"),
                    childEPCs=[cut_trace["cut_id"]],
                    bizLocation=leg["holder"],
                )
            )
        elif leg["kind"] == "delivery_end":
            events.append(
                _event(
                    "AggregationEvent",
                    "receiving",
                    leg["timestamp"],
                    action="DELETE",
                    parentID=leg["details"].get("delivery_id"),
                    childEPCs=[cut_trace["cut_id"]],
                    bizLocation=leg["holder"],
                )
            )
        elif leg["kind"] == "transformation" and "into_products" in leg["details"]:
            events.append(
                _event(
                    "TransformationEvent",
                    "commissioning",
                    leg["timestamp"],
                    inputEPCList=[cut_trace["cut_id"]],
                    outputEPCList=list(leg["details"]["into_products"]),
                    bizLocation=leg["holder"],
                )
            )
    return events


async def export_product_document(
    database: "AodbDatabase", product_id: str
) -> dict:
    """Assemble the full EPCIS event document for one meat product.

    Events are gathered from the product's trace (cuts and their source
    cows) and sorted by event time, yielding the chronological chain a
    consumer-facing trace service would render.
    """
    trace = await database.ref("MeatProduct", product_id).trace()
    events: list[dict] = []
    seen_cows: set[str] = set()
    for cut in trace["cuts"]:
        cow_id = cut.get("cow_id")
        if cow_id and cow_id not in seen_cows:
            seen_cows.add(cow_id)
            history = await database.ref("Cow", cow_id).history()
            events.extend(cow_events(history))
        events.extend(cut_events(cut))
    if trace.get("sold_at") is not None:
        events.append(
            _event(
                "ObjectEvent",
                "retail_selling",
                trace["sold_at"],
                action="DELETE",
                epcList=[product_id],
                bizLocation=trace["retailer_id"],
            )
        )
    events.sort(key=lambda event: (event["eventTime"], event["type"]))
    return {
        "@context": "https://ref.gs1.org/standards/epcis/epcis-context.jsonld",
        "type": "EPCISDocument",
        "schemaVersion": "2.0",
        "epcisBody": {"eventList": events},
        "subject": product_id,
    }
