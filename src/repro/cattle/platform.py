"""The Beef Cattle Tracking & Tracing platform facade.

Wires both models over one actor-oriented database:

- **Model A** (Figure 3): meat cuts and products are actors.
- **Model B** (Figure 5): cuts/products are versioned non-actor objects
  copied between stage actors.

The facade also implements the §4.4 ownership-transfer constraint in all
three recommended flavours: a multi-actor **transaction**, a compensable
**workflow**, and direct (unsafe) updates for comparison.
"""

from __future__ import annotations

from ..aodb.database import AodbDatabase
from ..errors import PlatformError, TransactionError
from .chain import Delivery, Distributor, Retailer, Slaughterhouse
from .cow import Cow
from .farmer import Farmer
from .meat import MeatCut, MeatProduct
from .versions import MODEL_B_ACTORS

MODEL_A_ACTORS = (
    Farmer,
    Cow,
    Slaughterhouse,
    MeatCut,
    MeatProduct,
    Distributor,
    Delivery,
    Retailer,
)


class CattlePlatform:
    """End-to-end beef tracking & tracing over an AODB."""

    def __init__(self, database: AodbDatabase, with_model_b: bool = True) -> None:
        self.db = database
        self.runtime = database.runtime
        for actor_class in MODEL_A_ACTORS:
            self.db.register_actor(actor_class)
        if with_model_b:
            for actor_class in MODEL_B_ACTORS:
                self.db.register_actor(actor_class)

    # -- provisioning ------------------------------------------------------------

    async def register_farmer(self, farmer_id: str, name: str, gln: str | None = None):
        """Create a farm unit tenant."""
        return await self.runtime.ref("Farmer", farmer_id).setup(name, gln)

    async def register_cow(
        self, cow_id: str, farmer_id: str, breed: str = "angus", born_at: float = 0.0
    ):
        """Register a cow under its first owner (both sides updated)."""
        result = await self.runtime.ref("Cow", cow_id).register(
            farmer_id, breed=breed, born_at=born_at
        )
        await self.runtime.ref("Farmer", farmer_id).add_cow(cow_id)
        return result

    async def register_slaughterhouse(self, sid: str, name: str, gln=None):
        """Create a slaughterhouse tenant (model A)."""
        return await self.runtime.ref("Slaughterhouse", sid).setup(name, gln)

    async def register_distributor(self, did: str, name: str):
        """Create a distributor tenant (model A)."""
        return await self.runtime.ref("Distributor", did).setup(name)

    async def register_retailer(self, rid: str, name: str, gln=None):
        """Create a retailer tenant (model A)."""
        return await self.runtime.ref("Retailer", rid).setup(name, gln)

    # -- ownership transfer, three ways (§4.4) -------------------------------------

    async def sell_cow_transactional(
        self, cow_id: str, from_farmer: str, to_farmer: str, timestamp: float
    ) -> bool:
        """Atomically move a cow between farm units (2PL transaction).

        Returns True on commit; any failure (lock conflict, seller does not
        own the cow, cow not alive) aborts, rolls back every participant and
        returns False.
        """
        try:
            async with self.db.transaction() as txn:
                await txn.call("Farmer", from_farmer, "remove_cow", cow_id)
                await txn.call("Farmer", to_farmer, "add_cow", cow_id)
                await txn.call("Cow", cow_id, "set_owner", to_farmer, timestamp)
            return True
        except (TransactionError, PlatformError):
            return False

    async def sell_cow_workflow(
        self, cow_id: str, from_farmer: str, to_farmer: str, timestamp: float
    ):
        """The same constraint as a compensable saga (eventual consistency)."""
        seller = self.runtime.ref("Farmer", from_farmer)
        buyer = self.runtime.ref("Farmer", to_farmer)
        cow = self.runtime.ref("Cow", cow_id)
        workflow = (
            self.db.workflow(f"sell-{cow_id}")
            .step(
                "remove-from-seller",
                lambda: seller.ask("remove_cow", cow_id),
                lambda: seller.ask("add_cow", cow_id),
            )
            .step(
                "add-to-buyer",
                lambda: buyer.ask("add_cow", cow_id),
                lambda: buyer.ask("remove_cow", cow_id),
            )
            .step(
                "update-cow",
                lambda: cow.ask("set_owner", to_farmer, timestamp),
            )
        )
        return await workflow.run()

    # -- queries across the chain ----------------------------------------------------

    async def cows_of(self, farmer_id: str) -> list[str]:
        """Indexed AODB query: all cows owned by one farm unit."""
        return self.db.indexes.lookup("Cow", "owner_id", farmer_id)

    async def cows_with_status(self, status: str) -> list[str]:
        """Indexed AODB query: all cows in a lifecycle state."""
        return self.db.indexes.lookup("Cow", "status", status)

    async def cuts_held_by(self, holder_id: str) -> list[str]:
        """Indexed AODB query: all meat cuts under one custodian."""
        return self.db.indexes.lookup("MeatCut", "holder", holder_id)

    async def trace_product(self, product_id: str) -> dict:
        """Consumer trace (model A): product → cuts → cows."""
        return await self.runtime.ref("MeatProduct", product_id).trace()
