"""Trace-graph assembly for the beef supply chain.

Consumers "wish to get tracing information about meat products over the
whole supply chain" (requirement 6).  This module assembles a product's
provenance into a :mod:`networkx` directed graph — farm → cow → cut →
delivery → product — which applications can render or query (paths,
ancestors, dwell times).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from ..aodb.database import AodbDatabase


async def build_product_trace_graph(
    database: "AodbDatabase", product_id: str
) -> nx.DiGraph:
    """Assemble the full provenance graph of one meat product (model A).

    Nodes carry a ``kind`` attribute (farmer, cow, slaughterhouse, cut,
    product); edges a ``relation`` (owned, slaughtered_into, derived,
    composed_into) and, where known, a ``timestamp``.
    """
    graph = nx.DiGraph()
    product = database.ref("MeatProduct", product_id)
    trace = await product.trace()
    graph.add_node(
        product_id,
        kind="product",
        product_kind=trace["product_kind"],
        sold_at=trace["sold_at"],
    )
    retailer_id = trace["retailer_id"]
    graph.add_node(retailer_id, kind="retailer")
    graph.add_edge(retailer_id, product_id, relation="produced")
    for cut in trace["cuts"]:
        cut_id = cut["cut_id"]
        graph.add_node(cut_id, kind="cut", cut_kind=cut.get("cut_kind"))
        graph.add_edge(cut_id, product_id, relation="composed_into")
        slaughterhouse_id = cut["slaughterhouse_id"]
        graph.add_node(slaughterhouse_id, kind="slaughterhouse")
        graph.add_edge(slaughterhouse_id, cut_id, relation="derived")
        for leg in cut.get("itinerary", ()):
            if leg["kind"] == "delivery_start":
                delivery_id = leg["details"].get("delivery_id")
                if delivery_id:
                    graph.add_node(delivery_id, kind="delivery")
                    graph.add_edge(
                        cut_id,
                        delivery_id,
                        relation="transported_by",
                        timestamp=leg["timestamp"],
                    )
        cow_id = cut["cow_id"]
        if cow_id is not None and not graph.has_node(cow_id):
            graph.add_node(cow_id, kind="cow")
            history = await database.ref("Cow", cow_id).history()
            for event in history:
                if event["kind"] == "birth":
                    farmer_id = event["actor"]
                    graph.add_node(farmer_id, kind="farmer")
                    graph.add_edge(
                        farmer_id,
                        cow_id,
                        relation="owned",
                        timestamp=event["timestamp"],
                    )
                elif event["kind"] == "transfer":
                    farmer_id = event["actor"]
                    graph.add_node(farmer_id, kind="farmer")
                    graph.add_edge(
                        farmer_id,
                        cow_id,
                        relation="owned",
                        timestamp=event["timestamp"],
                    )
        if cow_id is not None:
            graph.add_edge(cow_id, cut_id, relation="slaughtered_into")
    return graph


def origin_farms(graph: nx.DiGraph, product_id: str) -> list[str]:
    """Every farm that ever owned an animal behind this product."""
    ancestors = nx.ancestors(graph, product_id)
    return sorted(
        node for node in ancestors if graph.nodes[node].get("kind") == "farmer"
    )


def chain_path(graph: nx.DiGraph, product_id: str, cow_id: str) -> list[str]:
    """One provenance path from a cow to the product (for display)."""
    return nx.shortest_path(graph, cow_id, product_id)


def summarize_trace(graph: nx.DiGraph, product_id: str) -> dict:
    """Counts by node kind plus the origin farms — the consumer summary."""
    kinds: dict[str, int] = {}
    for node in nx.ancestors(graph, product_id) | {product_id}:
        kind = graph.nodes[node].get("kind", "unknown")
        kinds[kind] = kinds.get(kind, 0) + 1
    return {
        "product_id": product_id,
        "entities": kinds,
        "origin_farms": origin_farms(graph, product_id),
    }
