"""Value objects of the beef cattle tracking & tracing domain.

Identifiers follow the GS1 conventions the paper assumes ("a global
standard for supply chain messages, GS1, is adopted by participants"):
locations are GLNs (Global Location Numbers), trade items are GTINs, and
supply-chain happenings are EPCIS-style events (object / transformation /
aggregation), simplified to what the case study needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """EPCIS-style event vocabulary (simplified)."""

    BIRTH = "birth"
    SENSOR_READING = "sensor_reading"
    TRANSFER = "transfer"  # change of ownership/custody
    SLAUGHTER = "slaughter"
    TRANSFORMATION = "transformation"  # cow -> cuts, cuts -> products
    DELIVERY_START = "delivery_start"
    DELIVERY_END = "delivery_end"
    SALE = "sale"


class CowStatus(enum.Enum):
    """Lifecycle of a cow in the chain."""

    ALIVE = "alive"
    IN_TRANSIT = "in_transit"
    SLAUGHTERED = "slaughtered"


class MeatCutStatus(enum.Enum):
    """Lifecycle of a meat cut."""

    AT_SLAUGHTERHOUSE = "at_slaughterhouse"
    IN_TRANSIT = "in_transit"
    AT_RETAILER = "at_retailer"
    TRANSFORMED = "transformed"  # became part of meat products


class DeliveryStatus(enum.Enum):
    """Lifecycle of one transportation process."""

    PLANNED = "planned"
    IN_TRANSIT = "in_transit"
    COMPLETED = "completed"


@dataclass(frozen=True)
class TraceEvent:
    """One immutable supply-chain event attached to an entity's history."""

    kind: str
    timestamp: float
    actor: str  # qualified actor key of the responsible party
    subject: str  # entity the event is about (cow id, cut id, ...)
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "timestamp": self.timestamp,
            "actor": self.actor,
            "subject": self.subject,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class CollarReading:
    """One reading from a cow's collar sensor (non-actor object, Fig. 3)."""

    timestamp: float
    latitude: float
    longitude: float
    activity: float = 0.0  # movement intensity
    temperature: float | None = None

    def as_dict(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "latitude": self.latitude,
            "longitude": self.longitude,
            "activity": self.activity,
            "temperature": self.temperature,
        }


def gln(index: int, kind: str = "loc") -> str:
    """A fake-but-well-formed GS1 Global Location Number."""
    return f"urn:gs1:gln:{kind}:{index:07d}"


def gtin(index: int) -> str:
    """A fake-but-well-formed GS1 Global Trade Item Number."""
    return f"urn:gs1:gtin:{index:012d}"


def cut_id_for(cow_id: str, index: int) -> str:
    """Meat-cut identifier derived from its source cow."""
    return f"{cow_id}/cut-{index}"


def product_id_for(retailer_id: str, index: int) -> str:
    """Meat-product identifier scoped to the producing retailer."""
    return f"{retailer_id}/product-{index}"
