"""Deterministic discrete-event scheduling kernel.

The kernel provides everything the actor runtime and simulators need to run
concurrent coroutines over *virtual* time: futures, tasks, a scheduler,
synchronization primitives, contended-resource models (CPUs, token buckets)
and seeded random streams.  No wall-clock time and no :mod:`asyncio`.
"""

from .futures import Future, all_of, any_of, completed, failed
from .pool import FreeList
from .resources import CpuResource, TokenBucket
from .rng import RngRegistry, derive_seed
from .scheduler import Scheduler, Task, TimerHandle, run
from .sync import Event, Lock, Queue, Semaphore
from .timerwheel import TimerWheel

__all__ = [
    "CpuResource",
    "Event",
    "FreeList",
    "Future",
    "Lock",
    "Queue",
    "RngRegistry",
    "Scheduler",
    "Semaphore",
    "Task",
    "TimerHandle",
    "TimerWheel",
    "TokenBucket",
    "all_of",
    "any_of",
    "completed",
    "derive_seed",
    "failed",
    "run",
]
