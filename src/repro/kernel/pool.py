"""A tiny bounded freelist for recycling hot-path objects.

CPython allocates every ``__slots__`` object on the heap; at hundreds of
thousands of messages per second that allocation (and the matching
deallocation) shows up as a measurable fraction of the dispatch loop.  A
:class:`FreeList` lets a subsystem recycle its per-message carrier objects
(the runtime recycles :class:`~repro.runtime.messages.Invocation`) instead
of round-tripping through the allocator.

Safety contract — the pool enforces none of this, the *user* must:

- only ``release`` an object once every reference to it is provably dead
  (the runtime releases an invocation only on the two paths that are last
  to touch it, and never releases deadline-expired asks at all);
- provide a ``reset`` that clears **every** field, so no state can leak
  from one use into the next (property-tested in the kernel test suite);
- stop releasing entirely when aliasing becomes possible (the runtime
  latches pooling off the moment a fault injector is installed, because
  duplicated deliveries alias one carrier object).

The capacity bound keeps a traffic burst from pinning memory forever.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")


class FreeList(Generic[T]):
    """Bounded LIFO recycler: ``acquire`` pops, ``release`` resets and pushes."""

    __slots__ = (
        "_items", "_factory", "_reset", "_capacity", "hits", "misses",
        "journal",
    )

    def __init__(
        self,
        factory: Callable[[], T],
        reset: Callable[[T], None],
        capacity: int = 1024,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._items: list[T] = []
        self._factory = factory
        self._reset = reset
        self._capacity = capacity
        #: Recycled / freshly-allocated acquisition counters (observability).
        self.hits = 0
        self.misses = 0
        #: Optional flight-recorder ring (duck-typed; never imported here).
        #: Pool misses are recorded — a miss burst is the signature of a
        #: traffic spike outrunning the recycler.
        self.journal = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        return self._capacity

    def acquire(self) -> T:
        """Return a recycled object, or a fresh one from the factory."""
        if self._items:
            self.hits += 1
            return self._items.pop()
        self.misses += 1
        journal = self.journal
        if journal is not None:
            journal.record("pool-miss", self.misses)
        return self._factory()

    def release(self, item: T) -> bool:
        """Reset ``item`` and shelve it; returns False when at capacity.

        The reset runs even when the pool is full, so a released object is
        always scrubbed — a dropped one simply goes to the allocator clean.

        A consecutive double release of the same object (the catastrophic
        misuse: two later acquires would alias it) is absorbed — the LIFO
        top is checked by identity before pushing.
        """
        self._reset(item)
        items = self._items
        if items and items[-1] is item:
            return False
        if len(items) >= self._capacity:
            return False
        items.append(item)
        return True

    def clear(self) -> None:
        """Drop every shelved object (tests / latch-off path)."""
        self._items.clear()

    def stats(self) -> dict[str, Any]:
        """Counters for metrics probes."""
        total = self.hits + self.misses
        return {
            "size": len(self._items),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }
