"""Seeded, named random-number streams.

Every stochastic component (network jitter, workload arrival offsets, data
synthesis) draws from its own named stream derived from one master seed, so
that adding randomness to one component never perturbs another — runs stay
bit-for-bit reproducible and comparable across configurations.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and ``name``.

    Uses SHA-256 rather than :func:`hash` because the latter is salted per
    interpreter process and would break cross-run determinism.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(derive_seed(self.master_seed, name))
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose master seed derives from ``name``."""
        return RngRegistry(derive_seed(self.master_seed, name))
