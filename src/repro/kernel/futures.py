"""Futures for the deterministic scheduling kernel.

A :class:`Future` is a one-shot container for a value or an exception that
coroutines can ``await``.  Unlike :mod:`asyncio` futures it has no loop
affinity: resolving a future synchronously invokes its done-callbacks, and the
kernel scheduler uses those callbacks to resume tasks.  This keeps the kernel
tiny, deterministic and independent of wall-clock time.

The future is the kernel's hottest allocation (every ask, sleep, queue item
and task resolution creates or resolves one), so the layout is tuned: the
common single-callback case is stored in a dedicated slot (``_cb0``) and the
overflow list is only allocated for the second callback onwards.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Generic, Iterable, TypeVar

from ..errors import CancelledError, InvalidStateError

T = TypeVar("T")

_PENDING = "pending"
_RESOLVED = "resolved"
_REJECTED = "rejected"
_CANCELLED = "cancelled"


class Future(Generic[T]):
    """A one-shot, awaitable result container.

    The future starts *pending* and transitions exactly once to *resolved*
    (holding a value), *rejected* (holding an exception), or *cancelled*.
    Done-callbacks added with :meth:`add_done_callback` run synchronously,
    in registration order, at the moment of transition.
    """

    __slots__ = ("_state", "_value", "_exception", "_cb0", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._value: T | None = None
        self._exception: BaseException | None = None
        self._cb0: Callable[[Future[T]], None] | None = None
        self._callbacks: list[Callable[[Future[T]], None]] | None = None
        self.name = name

    # -- state inspection ---------------------------------------------------

    def done(self) -> bool:
        """Return True once the future is resolved, rejected or cancelled."""
        return self._state is not _PENDING

    def cancelled(self) -> bool:
        """Return True if the future was cancelled."""
        return self._state is _CANCELLED

    def result(self) -> T:
        """Return the value, or raise the stored exception.

        Raises :class:`InvalidStateError` if the future is still pending and
        :class:`CancelledError` if it was cancelled.
        """
        state = self._state
        if state is _RESOLVED:
            return self._value  # type: ignore[return-value]
        if state is _PENDING:
            raise InvalidStateError(f"future {self.name or id(self)} is not done")
        if state is _CANCELLED:
            raise CancelledError(self.name or "future cancelled")
        raise self._exception

    def exception(self) -> BaseException | None:
        """Return the stored exception (None when resolved with a value)."""
        if self._state is _PENDING:
            raise InvalidStateError(f"future {self.name or id(self)} is not done")
        if self._state is _CANCELLED:
            raise CancelledError(self.name or "future cancelled")
        return self._exception

    # -- state transitions --------------------------------------------------

    def set_result(self, value: T) -> None:
        """Resolve the future with ``value`` and run callbacks."""
        if self._state is not _PENDING:
            raise InvalidStateError(
                f"future {self.name or id(self)} already {self._state}"
            )
        self._state = _RESOLVED
        self._value = value
        cb0 = self._cb0
        if cb0 is not None:
            self._cb0 = None
            cb0(self)
        if self._callbacks:
            callbacks, self._callbacks = self._callbacks, None
            for callback in callbacks:
                callback(self)

    def set_exception(self, exc: BaseException) -> None:
        """Reject the future with ``exc`` and run callbacks."""
        if isinstance(exc, type):
            exc = exc()
        if self._state is not _PENDING:
            raise InvalidStateError(
                f"future {self.name or id(self)} already {self._state}"
            )
        self._state = _REJECTED
        self._exception = exc
        cb0 = self._cb0
        if cb0 is not None:
            self._cb0 = None
            cb0(self)
        if self._callbacks:
            callbacks, self._callbacks = self._callbacks, None
            for callback in callbacks:
                callback(self)

    def cancel(self) -> bool:
        """Cancel the future; returns False if it was already done."""
        if self._state is not _PENDING:
            return False
        self._transition(_CANCELLED)
        return True

    def _transition(
        self,
        state: str,
        value: T | None = None,
        exception: BaseException | None = None,
    ) -> None:
        if self._state is not _PENDING:
            raise InvalidStateError(
                f"future {self.name or id(self)} already {self._state}"
            )
        self._state = state
        self._value = value
        self._exception = exception
        cb0 = self._cb0
        if cb0 is not None:
            self._cb0 = None
            cb0(self)
        if self._callbacks:
            callbacks, self._callbacks = self._callbacks, None
            for callback in callbacks:
                callback(self)

    # -- callbacks ----------------------------------------------------------

    def add_done_callback(self, callback: Callable[[Future[T]], None]) -> None:
        """Run ``callback(self)`` when done; immediately if already done."""
        if self._state is not _PENDING:
            callback(self)
        elif self._cb0 is None and self._callbacks is None:
            self._cb0 = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def remove_done_callback(self, callback: Callable[[Future[T]], None]) -> int:
        """Drop every pending registration of ``callback``; return the count.

        Lets the registering side detach (e.g. a deadline wrapper whose timer
        fired) so a long-lived future does not pin callbacks — the other half
        of the leak :meth:`Scheduler.timeout` used to have.
        """
        removed = 0
        if self._cb0 is not None and self._cb0 == callback:
            self._cb0 = None
            removed += 1
        if self._callbacks:
            kept = [cb for cb in self._callbacks if not cb == callback]
            removed += len(self._callbacks) - len(kept)
            self._callbacks = kept or None
        return removed

    # -- awaitable protocol ---------------------------------------------------
    #
    # The future is its own await-iterator: ``__await__`` returns ``self``
    # instead of a fresh generator, saving one allocation per await on the
    # hottest path in the kernel.  Protocol walk-through: the coroutine's
    # SEND opcode first calls ``__next__`` — a pending future returns
    # itself (the "yield", handing the future to the driving Task) and a
    # completed one raises ``StopIteration(result)`` immediately; when the
    # task resumes the await, SEND calls ``send(value)`` (or ``__next__``
    # again when the resume value is None — both re-raise the settled
    # result the same way).  There is deliberately no
    # ``throw``: an injected exception (cancellation) then propagates at
    # the await site directly, exactly as it did with a generator.
    # Statelessness makes this safe for multiple concurrent awaiters: every
    # transition depends only on ``_state``.

    def __await__(self) -> Generator[Any, None, T]:
        return self  # type: ignore[return-value]

    def __next__(self) -> "Future[T]":
        if self._state is _PENDING:
            return self
        raise StopIteration(self.result())

    def __iter__(self) -> "Future[T]":
        return self

    def send(self, value: Any) -> None:
        raise StopIteration(self.result())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        detail = self._state
        if self._state is _REJECTED:
            detail = f"rejected({self._exception!r})"
        elif self._state is _RESOLVED:
            detail = f"resolved({self._value!r})"
        return f"<Future {self.name or hex(id(self))} {detail}>"


def completed(value: T, name: str = "") -> Future[T]:
    """Return a future already resolved with ``value``."""
    future: Future[T] = Future(name)
    future._state = _RESOLVED
    future._value = value
    return future


def failed(exc: BaseException, name: str = "") -> Future[Any]:
    """Return a future already rejected with ``exc``."""
    future: Future[Any] = Future(name)
    future.set_exception(exc)
    return future


#: Shared, already-resolved ``None`` future for zero-allocation fast paths
#: (``Event.wait`` when set, ``Lock.acquire`` when free, ...).  Safe to share
#: because a resolved future is immutable: awaiting it returns immediately,
#: ``add_done_callback`` invokes synchronously, and ``cancel()`` is a no-op.
RESOLVED_NONE: Future[None] = completed(None, "resolved")


def all_of(futures: Iterable[Future[Any]], name: str = "all") -> Future[list]:
    """Combine futures into one resolving to the list of results.

    The combined future rejects with the first exception observed (in
    completion order) and resolves only when every input resolved.
    Cancellation of an input counts as rejection with CancelledError.
    """
    futures = list(futures)
    combined: Future[list] = Future(name)
    if not futures:
        combined.set_result([])
        return combined
    results: list[Any] = [None] * len(futures)
    remaining = len(futures)

    def make_callback(index: int) -> Callable[[Future[Any]], None]:
        def callback(done_future: Future[Any]) -> None:
            nonlocal remaining
            if combined.done():
                return
            try:
                results[index] = done_future.result()
            except BaseException as exc:  # noqa: BLE001 - deliberate funnel
                combined.set_exception(exc)
                return
            remaining -= 1
            if remaining == 0:
                combined.set_result(results)

        return callback

    for position, future in enumerate(futures):
        future.add_done_callback(make_callback(position))
    return combined


def any_of(futures: Iterable[Future[Any]], name: str = "any") -> Future[Any]:
    """Combine futures into one mirroring the first to complete."""
    futures = list(futures)
    if not futures:
        raise ValueError("any_of() requires at least one future")
    combined: Future[Any] = Future(name)

    def callback(done_future: Future[Any]) -> None:
        if combined.done():
            return
        try:
            combined.set_result(done_future.result())
        except BaseException as exc:  # noqa: BLE001 - deliberate funnel
            combined.set_exception(exc)

    for future in futures:
        future.add_done_callback(callback)
    return combined
