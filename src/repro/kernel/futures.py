"""Futures for the deterministic scheduling kernel.

A :class:`Future` is a one-shot container for a value or an exception that
coroutines can ``await``.  Unlike :mod:`asyncio` futures it has no loop
affinity: resolving a future synchronously invokes its done-callbacks, and the
kernel scheduler uses those callbacks to resume tasks.  This keeps the kernel
tiny, deterministic and independent of wall-clock time.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Generic, Iterable, TypeVar

from ..errors import CancelledError, InvalidStateError

T = TypeVar("T")

_PENDING = "pending"
_RESOLVED = "resolved"
_REJECTED = "rejected"
_CANCELLED = "cancelled"


class Future(Generic[T]):
    """A one-shot, awaitable result container.

    The future starts *pending* and transitions exactly once to *resolved*
    (holding a value), *rejected* (holding an exception), or *cancelled*.
    Done-callbacks added with :meth:`add_done_callback` run synchronously,
    in registration order, at the moment of transition.
    """

    __slots__ = ("_state", "_value", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._value: T | None = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future[T]], None]] = []
        self.name = name

    # -- state inspection ---------------------------------------------------

    def done(self) -> bool:
        """Return True once the future is resolved, rejected or cancelled."""
        return self._state != _PENDING

    def cancelled(self) -> bool:
        """Return True if the future was cancelled."""
        return self._state == _CANCELLED

    def result(self) -> T:
        """Return the value, or raise the stored exception.

        Raises :class:`InvalidStateError` if the future is still pending and
        :class:`CancelledError` if it was cancelled.
        """
        if self._state == _PENDING:
            raise InvalidStateError(f"future {self.name or id(self)} is not done")
        if self._state == _CANCELLED:
            raise CancelledError(self.name or "future cancelled")
        if self._exception is not None:
            raise self._exception
        return self._value  # type: ignore[return-value]

    def exception(self) -> BaseException | None:
        """Return the stored exception (None when resolved with a value)."""
        if self._state == _PENDING:
            raise InvalidStateError(f"future {self.name or id(self)} is not done")
        if self._state == _CANCELLED:
            raise CancelledError(self.name or "future cancelled")
        return self._exception

    # -- state transitions --------------------------------------------------

    def set_result(self, value: T) -> None:
        """Resolve the future with ``value`` and run callbacks."""
        self._transition(_RESOLVED, value=value)

    def set_exception(self, exc: BaseException) -> None:
        """Reject the future with ``exc`` and run callbacks."""
        if isinstance(exc, type):
            exc = exc()
        self._transition(_REJECTED, exception=exc)

    def cancel(self) -> bool:
        """Cancel the future; returns False if it was already done."""
        if self.done():
            return False
        self._transition(_CANCELLED)
        return True

    def _transition(
        self,
        state: str,
        value: T | None = None,
        exception: BaseException | None = None,
    ) -> None:
        if self._state != _PENDING:
            raise InvalidStateError(
                f"future {self.name or id(self)} already {self._state}"
            )
        self._state = state
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- callbacks ----------------------------------------------------------

    def add_done_callback(self, callback: Callable[[Future[T]], None]) -> None:
        """Run ``callback(self)`` when done; immediately if already done."""
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    # -- awaitable protocol ---------------------------------------------------

    def __await__(self) -> Generator[Any, None, T]:
        if not self.done():
            yield self
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        detail = self._state
        if self._state == _REJECTED:
            detail = f"rejected({self._exception!r})"
        elif self._state == _RESOLVED:
            detail = f"resolved({self._value!r})"
        return f"<Future {self.name or hex(id(self))} {detail}>"


def completed(value: T, name: str = "") -> Future[T]:
    """Return a future already resolved with ``value``."""
    future: Future[T] = Future(name)
    future.set_result(value)
    return future


def failed(exc: BaseException, name: str = "") -> Future[Any]:
    """Return a future already rejected with ``exc``."""
    future: Future[Any] = Future(name)
    future.set_exception(exc)
    return future


def all_of(futures: Iterable[Future[Any]], name: str = "all") -> Future[list]:
    """Combine futures into one resolving to the list of results.

    The combined future rejects with the first exception observed (in
    completion order) and resolves only when every input resolved.
    Cancellation of an input counts as rejection with CancelledError.
    """
    futures = list(futures)
    combined: Future[list] = Future(name)
    if not futures:
        combined.set_result([])
        return combined
    results: list[Any] = [None] * len(futures)
    remaining = len(futures)

    def make_callback(index: int) -> Callable[[Future[Any]], None]:
        def callback(done_future: Future[Any]) -> None:
            nonlocal remaining
            if combined.done():
                return
            try:
                results[index] = done_future.result()
            except BaseException as exc:  # noqa: BLE001 - deliberate funnel
                combined.set_exception(exc)
                return
            remaining -= 1
            if remaining == 0:
                combined.set_result(results)

        return callback

    for position, future in enumerate(futures):
        future.add_done_callback(make_callback(position))
    return combined


def any_of(futures: Iterable[Future[Any]], name: str = "any") -> Future[Any]:
    """Combine futures into one mirroring the first to complete."""
    futures = list(futures)
    if not futures:
        raise ValueError("any_of() requires at least one future")
    combined: Future[Any] = Future(name)

    def callback(done_future: Future[Any]) -> None:
        if combined.done():
            return
        try:
            combined.set_result(done_future.result())
        except BaseException as exc:  # noqa: BLE001 - deliberate funnel
            combined.set_exception(exc)

    for future in futures:
        future.add_done_callback(callback)
    return combined
