"""Hierarchical timer wheel for the virtual-time scheduler.

The scheduler's dominant timer traffic is *deadline-shaped*: a timer is armed
a long way ahead (call deadlines, retry backoffs, lease expirations) and then
cancelled long before it fires, because the guarded operation completed.  In
a plain binary heap every one of those timers costs ``O(log n)`` to push and
— even when cancelled — another pop to discard, and the heap size ``n`` is
inflated by exactly the cancelled timers still queued.  The wheel makes the
common case free: a cancelled timer simply stays in its bucket and is
dropped, without ever touching the heap, when the bucket is flushed.

Layout: three levels of dict-keyed buckets with resolutions of 1 ms, 256 ms
and 65.536 s (each level spans 256 slots of the previous one; the last level
is unbounded because buckets are keyed by absolute slot index in a dict, not
stored in a ring).  A timer is bucketed by its distance from *now* at arming
time.  Buckets are tracked in one tiny heap of ``(slot_start, level, index)``
triples — pushed once per distinct bucket, not once per timer.

Exactness: virtual time must fire timers in exact ``(when, seq)`` order, so
the wheel never fires anything itself.  When the scheduler's next candidate
event time reaches a bucket's start, the bucket's *live* timers are flushed
into the scheduler's main event heap keyed by their exact ``(when, seq)``;
the main heap then interleaves them with ready callbacks as usual.  Because
a bucket only flushes when it could contain the earliest pending event, the
main heap stays small (one bucket's worth of live timers) and cancelled
timers never enter it at all.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import TimerHandle

_INF = float("inf")

#: Slot widths per level, in virtual seconds.  Level 0 covers sub-second
#: sleeps at 1 ms granularity; level 1 covers call deadlines and backoffs;
#: level 2 covers leases and long horizons.  Spans: 0.256 s / 65.536 s / ∞.
RESOLUTIONS = (0.001, 0.256, 65.536)
_INVERSES = (1000.0, 1.0 / 0.256, 1.0 / 65.536)
_SPAN0 = RESOLUTIONS[0] * 256
_SPAN1 = RESOLUTIONS[1] * 256


class TimerWheel:
    """Bucketed pending timers; see module docstring for the contract."""

    __slots__ = ("_buckets", "_order", "live", "next_start", "cancelled")

    def __init__(self) -> None:
        # One dict per level: absolute slot index -> list of handles.
        self._buckets: tuple[dict, dict, dict] = ({}, {}, {})
        # (slot_start_time, level, index) per distinct bucket.
        self._order: list[tuple[float, int, int]] = []
        #: Count of scheduled-and-not-cancelled handles still in buckets.
        self.live = 0
        #: Cumulative handles cancelled while wheel-resident — the timers the
        #: wheel saved from ever touching the heap (observability probe).
        self.cancelled = 0
        #: Start time of the earliest bucket (inf when empty) — the scheduler
        #: compares this against its next candidate event every iteration, so
        #: it is kept as a plain attribute rather than computed.
        self.next_start = _INF

    def add(self, handle: "TimerHandle", now: float) -> None:
        """Bucket ``handle`` by its distance from ``now``."""
        when = handle.when
        delta = when - now
        if delta < _SPAN0:
            level = 0
        elif delta < _SPAN1:
            level = 1
        else:
            level = 2
        index = int(when * _INVERSES[level])
        buckets = self._buckets[level]
        bucket = buckets.get(index)
        if bucket is None:
            buckets[index] = [handle]
            start = index * RESOLUTIONS[level]
            heappush(self._order, (start, level, index))
            if start < self.next_start:
                self.next_start = start
        else:
            bucket.append(handle)
        self.live += 1

    def flush(self, threshold: float, events: list) -> None:
        """Move live timers from every due bucket into the main event heap.

        A bucket is due when its start time is ``<= threshold``; when
        ``threshold`` is infinite (no other pending events) only the
        earliest bucket group is flushed, so far-future timers stay
        bucketed.  Cancelled handles are dropped here — this is the path
        that never touches the heap.
        """
        order = self._order
        if not order:
            return
        if threshold == _INF:
            threshold = order[0][0]
        while order and order[0][0] <= threshold:
            _, level, index = heappop(order)
            for handle in self._buckets[level].pop(index):
                if handle._callback is not None:
                    handle._where = 1  # heap
                    heappush(events, (handle.when, handle.seq, handle))
                    self.live -= 1
        self.next_start = order[0][0] if order else _INF

    def drain_handles(self) -> list:
        """Remove and return every live handle (scheduler ``stop()`` path)."""
        handles: list = []
        for buckets in self._buckets:
            for bucket in buckets.values():
                for handle in bucket:
                    if handle._callback is not None:
                        handles.append(handle)
            buckets.clear()
        self._order.clear()
        self.live = 0
        self.next_start = _INF
        return handles
