"""Deterministic discrete-event scheduler with a virtual clock.

The scheduler is the heart of the library: actors, networks, storage and
benchmarks all run on top of it.  Time is *virtual* — it jumps instantly from
one scheduled event to the next — which makes every run deterministic and
lets a benchmark simulate minutes of cluster time in well under a second of
wall-clock time.

Coroutines are driven directly (``coroutine.send``), awaiting
:class:`~repro.kernel.futures.Future` objects.  There is deliberately no
dependency on :mod:`asyncio`.

Because the simulator's wall-clock is bounded by this loop, the layout is
tuned for dispatch speed.  Pending work lives in three structures, merged in
exact ``(when, sequence)`` order:

- a **ready deque** of immediate callbacks (task resumes, ``_call_soon``) —
  entries are appended with monotonically non-decreasing keys, so the deque
  is always sorted and merging against the heap is a head-to-head compare;
- a small **heap** of near-term timers, each wrapped in a cancellable
  :class:`TimerHandle`;
- a hierarchical :class:`~repro.kernel.timerwheel.TimerWheel` holding
  farther timers bucketed by distance, so the deadline-shaped majority
  (armed far ahead, cancelled early) never costs heap operations at all.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Awaitable, Callable, Coroutine, Iterable

from ..errors import CancelledError, DeadlockError, SchedulerStoppedError
from ..errors import TimeoutError as KernelTimeoutError
from .futures import _CANCELLED, _PENDING, _RESOLVED, Future
from .timerwheel import TimerWheel

_INF = float("inf")

#: Sentinel meaning "call the event callback with no argument".  Carrying an
#: optional argument in the event entry lets hot paths schedule plain bound
#: methods or module functions instead of allocating a closure per event.
_NO_ARG = object()

# TimerHandle._where values.
_IN_WHEEL = 0
_IN_HEAP = 1
_DEAD = 2  # cancelled
_FIRED = 3


def _wake(future: Future[None]) -> None:
    """Timer callback for sleep/at: resolve the future unless pre-empted."""
    if future._state is _PENDING:
        future.set_result(None)


class _SleepFuture(Future):
    """A sleep's future fused with its own timer entry (one allocation).

    Doubles as the :class:`TimerHandle` the heap/wheel stores: the dispatch
    loop and the wheel only touch the handle slots (``when``/``seq``/
    ``_callback``/``_arg``/``_where``/``_scheduler``), the awaiting side
    only the inherited future slots, so the two roles never collide.
    Sleeps are the kernel's most common timer by far — fusing the pair
    halves their allocation rate.
    """

    __slots__ = ("when", "seq", "_callback", "_arg", "_scheduler", "_where")


class _Timeout:
    """Per-:meth:`Scheduler.timeout` state, packed into one slotted object.

    Replaces the two closures (mirror callback + deadline callback) the
    wrapper used to allocate per call: the object itself is the inner
    future's done-callback (``__call__``) and :meth:`deadline` is the timer
    action.  Deadline wrappers are the second most common allocation after
    sleeps, so the saved function objects and cell vars are measurable.
    """

    __slots__ = ("wrapped", "inner", "delay", "handle")

    def __init__(
        self, wrapped: Future[Any], inner: Future[Any], delay: float
    ) -> None:
        self.wrapped = wrapped
        self.inner = inner
        self.delay = delay
        self.handle: TimerHandle | None = None

    def __call__(self, done: Future[Any]) -> None:
        """Inner future settled: mirror it and disarm the deadline timer."""
        wrapped = self.wrapped
        if wrapped._state is not _PENDING:
            return
        handle = self.handle
        if handle is not None:
            handle.cancel()
        state = done._state
        if state is _RESOLVED:
            wrapped.set_result(done._value)
        elif state is _CANCELLED:
            wrapped.set_exception(CancelledError(done.name or "future cancelled"))
        else:
            wrapped.set_exception(done._exception)

    def deadline(self) -> None:
        """Deadline fired first: reject the wrapper and detach from inner."""
        wrapped = self.wrapped
        if wrapped._state is _PENDING:
            self.inner.remove_done_callback(self)
            wrapped.set_exception(
                KernelTimeoutError(
                    f"timed out after {self.delay} virtual seconds"
                )
            )


class TimerHandle:
    """A scheduled timer that can be cancelled in O(1).

    Returned by :meth:`Scheduler.call_at` / :meth:`Scheduler.call_later`.
    Cancelling detaches the callback immediately; the dead entry is dropped
    lazily (bucket flush or heap pop) without ever running.
    """

    __slots__ = ("when", "seq", "_callback", "_arg", "_scheduler", "_where")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable[..., None],
        arg: Any,
        scheduler: "Scheduler",
        where: int,
    ) -> None:
        self.when = when
        self.seq = seq
        self._callback: Callable[..., None] | None = callback
        self._arg = arg
        self._scheduler: Scheduler | None = scheduler
        self._where = where

    def cancelled(self) -> bool:
        """True once cancelled (not merely fired)."""
        return self._where == _DEAD

    def cancel(self) -> bool:
        """Detach the callback; returns False if already fired or cancelled."""
        if self._callback is None:
            return False
        self._callback = None
        self._arg = None
        where = self._where
        self._where = _DEAD
        scheduler = self._scheduler
        self._scheduler = None
        if scheduler is None:
            return False
        if where == _IN_WHEEL:
            wheel = scheduler._wheel
            wheel.live -= 1
            wheel.cancelled += 1
        else:
            scheduler._tombstones = tombstones = scheduler._tombstones + 1
            if tombstones > 64 and tombstones * 2 > len(scheduler._events):
                scheduler._compact()
        scheduler.timer_cancels += 1
        journal = scheduler.journal
        if journal is not None:
            journal.record("timer-cancel", self.seq, self.when)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled/fired" if self._callback is None else "armed"
        return f"<TimerHandle when={self.when} seq={self.seq} {state}>"


class Task:
    """A scheduled coroutine.

    A task repeatedly steps its coroutine; whenever the coroutine awaits a
    pending future, the task parks until that future completes and then
    resumes via a scheduler event.  The task itself is awaitable: awaiting it
    yields the coroutine's return value (or re-raises its exception).
    """

    __slots__ = (
        "_coro",
        "_scheduler",
        "future",
        "name",
        "_waiting_on",
        "_started",
        "_cancel_requested",
        "_resume_value",
        "_resume_exc",
    )

    def __init__(
        self,
        coro: Coroutine[Any, Any, Any],
        scheduler: "Scheduler",
        name: str = "",
    ) -> None:
        self._coro = coro
        self._scheduler = scheduler
        self.future: Future[Any] = Future(name or getattr(coro, "__name__", "task"))
        self.name = self.future.name
        self._waiting_on: Future[Any] | None = None
        self._started = False
        self._cancel_requested = False
        self._resume_value: Any = None
        self._resume_exc: BaseException | None = None

    def done(self) -> bool:
        """Return True when the task's coroutine has finished."""
        return self.future.done()

    def result(self) -> Any:
        """Return the coroutine's return value (task must be done)."""
        return self.future.result()

    def cancel(self) -> bool:
        """Request cancellation; returns False if the task already finished."""
        if self.done():
            return False
        if not self._started:
            self.future.cancel()
            self._coro.close()
            return True
        # The awaited future may already be done with the resume step still
        # queued; the flag makes that queued step deliver the cancellation
        # instead of resuming the coroutine.
        self._cancel_requested = True
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and not waiting.done():
            # Detach from the awaited future and inject the cancellation.
            self._scheduler._call_soon(
                lambda: self._step(exc=CancelledError(self.name)), _NO_ARG
            )
        return True

    # -- driving the coroutine ------------------------------------------------

    def _step(self, value: Any = None, exc: BaseException | None = None) -> None:
        if self.future._state is not _PENDING:
            return
        if self._cancel_requested and exc is None:
            exc = CancelledError(self.name)
        self._started = True
        self._waiting_on = None
        try:
            if exc is not None:
                yielded = self._coro.throw(exc)
            else:
                yielded = self._coro.send(value)
        except StopIteration as stop:
            self.future.set_result(stop.value)
            return
        except CancelledError:
            if not self.future.done():
                self.future.cancel()
            return
        except BaseException as error:  # noqa: BLE001 - task funnel
            self.future.set_exception(error)
            return
        if type(yielded) is not Future and not isinstance(yielded, Future):
            self._step(
                exc=TypeError(
                    f"task {self.name!r} awaited a non-kernel awaitable: "
                    f"{yielded!r}"
                )
            )
            return
        self._waiting_on = yielded
        # Inline add_done_callback for the dominant case: a future yielded
        # out of a coroutine is normally still pending (a done future raises
        # StopIteration inside the await instead of yielding) and has no
        # callback registered yet.
        if (
            yielded._state is _PENDING
            and yielded._cb0 is None
            and yielded._callbacks is None
        ):
            yielded._cb0 = self._on_future_done
        else:
            yielded.add_done_callback(self._on_future_done)

    def _on_future_done(self, future: Future[Any]) -> None:
        if self._waiting_on is not future:
            return  # detached by cancellation
        # Stash the resume payload on the task and queue the plain-function
        # resume step: no closure allocation per suspension.
        state = future._state
        if state is _RESOLVED:
            self._resume_value = future._value
            self._resume_exc = None
        elif state is _CANCELLED:
            self._resume_value = None
            self._resume_exc = CancelledError(future.name or "future cancelled")
        else:
            self._resume_value = None
            self._resume_exc = future._exception
        # _call_soon, inlined: this is the single hottest scheduling site
        # (every task suspension passes through it).
        scheduler = self._scheduler
        if scheduler._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        scheduler._sequence = seq = scheduler._sequence + 1
        scheduler._ready.append((scheduler._now, seq, Task._resume, self))

    def _resume(self) -> None:
        # :meth:`_step` with the stashed payload inlined — every suspension
        # resumes through here, and at bench rates the extra frame is
        # measurable.  Kept textually parallel with ``_step``; the
        # ``_started`` store is skipped because a resuming task has stepped
        # at least once already.
        value = self._resume_value
        exc = self._resume_exc
        self._resume_value = None
        self._resume_exc = None
        if self.future._state is not _PENDING:
            return
        if self._cancel_requested and exc is None:
            exc = CancelledError(self.name)
        self._waiting_on = None
        try:
            if exc is not None:
                yielded = self._coro.throw(exc)
            else:
                yielded = self._coro.send(value)
        except StopIteration as stop:
            self.future.set_result(stop.value)
            return
        except CancelledError:
            if not self.future.done():
                self.future.cancel()
            return
        except BaseException as error:  # noqa: BLE001 - task funnel
            self.future.set_exception(error)
            return
        if type(yielded) is not Future and not isinstance(yielded, Future):
            self._step(
                exc=TypeError(
                    f"task {self.name!r} awaited a non-kernel awaitable: "
                    f"{yielded!r}"
                )
            )
            return
        self._waiting_on = yielded
        if (
            yielded._state is _PENDING
            and yielded._cb0 is None
            and yielded._callbacks is None
        ):
            yielded._cb0 = self._on_future_done
        else:
            yielded.add_done_callback(self._on_future_done)

    def __await__(self):
        return self.future.__await__()

    def __del__(self) -> None:
        # A task abandoned before its first step (e.g. the run ended first)
        # holds an un-started coroutine; close it quietly instead of letting
        # garbage collection emit a "never awaited" warning.
        if not self._started:
            try:
                self._coro.close()
            except Exception:  # pragma: no cover - GC-time best effort
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} done={self.done()}>"


class Scheduler:
    """Virtual-time discrete-event loop.

    Events are callables keyed by ``(time, sequence)``; the sequence number
    makes ordering of simultaneous events deterministic (FIFO).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._sequence = 0
        # Near-term timers: (when, seq, TimerHandle) — seq is unique, so the
        # handle itself is never compared.
        self._events: list[tuple[float, int, TimerHandle]] = []
        #: Cancelled handles still sitting in ``_events`` (skipped at pop).
        self._tombstones = 0
        # Immediate callbacks: (when, seq, callback, arg), always sorted
        # because entries are appended with non-decreasing (when, seq).
        self._ready: deque[tuple[float, int, Callable[..., None], Any]] = deque()
        self._wheel = TimerWheel()
        self._stopped = False
        self.events_processed = 0
        #: Cumulative timer cancellations (an observability probe reads this).
        self.timer_cancels = 0
        #: Optional flight-recorder ring (duck-typed — see repro.obs.recorder;
        #: the kernel never imports obs).  When set, timer arm/fire/cancel
        #: events are recorded; when None the hooks cost one attribute check.
        self.journal = None

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Live events currently queued (an observability probe reads this).

        Counts ready callbacks, armed heap timers and wheel-bucketed timers;
        cancelled timers are excluded — after the timeout-leak fix this stays
        flat under sustained deadline-wrapped traffic.
        """
        return (
            len(self._ready)
            + len(self._events)
            - self._tombstones
            + self._wheel.live
        )

    @property
    def near_heap_depth(self) -> int:
        """Armed near-term heap timers (tombstones excluded) — a probe."""
        return len(self._events) - self._tombstones

    # -- event scheduling -----------------------------------------------------

    #: Timers closer than this go straight into the heap: they fire before a
    #: cancellation could plausibly save work, and the heap (kept small by
    #: the wheel absorbing far timers) beats bucket bookkeeping at this range.
    NEAR_HORIZON = 0.004

    def call_at(
        self, when: float, action: Callable[..., None], arg: Any = _NO_ARG
    ) -> TimerHandle:
        """Schedule ``action`` to run at virtual time ``when``.

        Returns a :class:`TimerHandle`; cancelling it detaches the action in
        O(1) without leaving work in the event queue.  When ``arg`` is given
        the action is called as ``action(arg)`` (hot paths use this to avoid
        allocating a closure per timer).
        """
        if self._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        now = self._now
        if when < now:
            when = now
        self._sequence = seq = self._sequence + 1
        handle = TimerHandle.__new__(TimerHandle)
        handle.when = when
        handle.seq = seq
        handle._callback = action
        handle._arg = arg
        handle._scheduler = self
        if when - now < 0.004:  # NEAR_HORIZON
            handle._where = _IN_HEAP
            heapq.heappush(self._events, (when, seq, handle))
        else:
            handle._where = _IN_WHEEL
            self._wheel.add(handle, now)
        journal = self.journal
        if journal is not None:
            journal.record("timer-arm", seq, when)
        return handle

    def call_later(
        self, delay: float, action: Callable[..., None], arg: Any = _NO_ARG
    ) -> TimerHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            delay = 0.0
        return self.call_at(self._now + delay, action, arg)

    def _call_soon(self, action: Callable[..., None], arg: Any) -> None:
        if self._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        self._sequence = seq = self._sequence + 1
        self._ready.append((self._now, seq, action, arg))

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (triggered by cancel churn)."""
        self._events = [
            entry for entry in self._events if entry[2]._callback is not None
        ]
        heapq.heapify(self._events)
        self._tombstones = 0

    # -- task & future helpers -------------------------------------------------

    def spawn(self, coro: Coroutine[Any, Any, Any], name: str = "") -> Task:
        """Create a task for ``coro`` and schedule its first step.

        ``Task.__init__`` and ``_call_soon`` are inlined — the actor runtime
        spawns a task per delivery and per reply, so construction cost is
        part of the per-message bill.
        """
        if self._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        task = Task.__new__(Task)
        task._coro = coro
        task._scheduler = self
        future: Future[Any] = Future.__new__(Future)
        future._state = _PENDING
        future._value = None
        future._exception = None
        future._cb0 = None
        future._callbacks = None
        future.name = name or getattr(coro, "__name__", "task")
        task.future = future
        task.name = future.name
        task._waiting_on = None
        task._started = False
        task._cancel_requested = False
        task._resume_value = None
        task._resume_exc = None
        self._sequence = seq = self._sequence + 1
        self._ready.append((self._now, seq, Task._step, task))
        return task

    def sleep(self, delay: float) -> Future[None]:
        """Return a future resolving ``delay`` virtual seconds from now.

        The body is :meth:`call_later` + :meth:`call_at` inlined — sleeps
        are the single most common timer, and the two-frame call chain is
        measurable at bench rates.
        """
        if self._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        # One fused future-and-timer object, constructor frame elided.
        future: _SleepFuture = _SleepFuture.__new__(_SleepFuture)
        future._state = _PENDING
        future._value = None
        future._exception = None
        future._cb0 = None
        future._callbacks = None
        future.name = "sleep"
        now = self._now
        when = now + delay if delay > 0.0 else now
        self._sequence = seq = self._sequence + 1
        future.when = when
        future.seq = seq
        future._callback = _wake
        future._arg = future
        future._scheduler = self
        if when - now < 0.004:  # NEAR_HORIZON
            future._where = _IN_HEAP
            heapq.heappush(self._events, (when, seq, future))
        else:
            future._where = _IN_WHEEL
            self._wheel.add(future, now)
        return future

    def at(self, when: float) -> Future[None]:
        """Return a future resolving at absolute virtual time ``when``.

        Same fused future-and-timer object as :meth:`sleep` — the CPU
        resource mints one of these per charge, so it shares the bill.
        """
        if self._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        future: _SleepFuture = _SleepFuture.__new__(_SleepFuture)
        future._state = _PENDING
        future._value = None
        future._exception = None
        future._cb0 = None
        future._callbacks = None
        future.name = "at"
        now = self._now
        if when < now:
            when = now
        self._sequence = seq = self._sequence + 1
        future.when = when
        future.seq = seq
        future._callback = _wake
        future._arg = future
        future._scheduler = self
        if when - now < 0.004:  # NEAR_HORIZON
            future._where = _IN_HEAP
            heapq.heappush(self._events, (when, seq, future))
        else:
            future._where = _IN_WHEEL
            self._wheel.add(future, now)
        return future

    def timeout(self, awaitable: Future[Any] | Task, delay: float) -> Future[Any]:
        """Wrap an awaitable with a deadline ``delay`` seconds from now.

        The returned future mirrors the awaitable if it finishes in time and
        rejects with :class:`~repro.errors.TimeoutError` otherwise.  Neither
        side pins the other: the deadline timer is cancelled the moment the
        inner awaitable completes, and the mirror callback is removed from
        the inner future the moment the deadline fires.
        """
        inner = awaitable.future if isinstance(awaitable, Task) else awaitable
        wrapped: Future[Any] = Future.__new__(Future)
        wrapped._state = _PENDING
        wrapped._value = None
        wrapped._exception = None
        wrapped._cb0 = None
        wrapped._callbacks = None
        wrapped.name = "timeout"
        state = _Timeout(wrapped, inner, delay)
        inner.add_done_callback(state)
        if wrapped._state is _PENDING:
            # Inline call_at: deadline timers are the second most common
            # timer after sleeps and the extra frame is measurable.
            if self._stopped:
                raise SchedulerStoppedError("scheduler has stopped")
            now = self._now
            when = now + delay if delay > 0.0 else now
            self._sequence = seq = self._sequence + 1
            handle = TimerHandle.__new__(TimerHandle)
            handle.when = when
            handle.seq = seq
            handle._callback = _Timeout.deadline
            handle._arg = state
            handle._scheduler = self
            if when - now < 0.004:  # NEAR_HORIZON
                handle._where = _IN_HEAP
                heapq.heappush(self._events, (when, seq, handle))
            else:
                handle._where = _IN_WHEEL
                self._wheel.add(handle, now)
            journal = self.journal
            if journal is not None:
                journal.record("timer-arm", seq, when)
            state.handle = handle
        return wrapped

    # -- running ----------------------------------------------------------------

    def run_until_complete(
        self, coro: Coroutine[Any, Any, Any], name: str = "main"
    ) -> Any:
        """Run the event loop until ``coro`` finishes; return its result."""
        task = self.spawn(coro, name=name)
        self._run(stop_future=task.future)
        if not task.done():
            raise DeadlockError(
                f"no more events but task {task.name!r} is still pending "
                "(a coroutine is awaiting a future nothing will resolve)"
            )
        return task.result()

    def run_until(self, predicate: Callable[[], bool]) -> None:
        """Process events until ``predicate()`` is true or events run out."""
        self._run(predicate=predicate)

    def run_for(self, duration: float) -> None:
        """Process all events scheduled within ``duration`` seconds from now."""
        deadline = self._now + duration
        self._run(deadline=deadline)
        if deadline > self._now:
            self._now = deadline

    def drain(self) -> None:
        """Process every remaining event."""
        self._run()

    def _run(
        self,
        stop_future: Future[Any] | None = None,
        deadline: float | None = None,
        predicate: Callable[[], bool] | None = None,
    ) -> None:
        """The dispatch loop: merge ready/heap/wheel in (when, seq) order.

        Ready entries are appended with non-decreasing keys and heap entries
        pop in key order, so comparing the two heads is an exact merge; the
        wheel flushes a bucket into the heap whenever that bucket's start
        time reaches the current candidate, before the candidate is run.
        """
        ready = self._ready
        events = self._events
        wheel = self._wheel
        pop_ready = ready.popleft
        heappop = heapq.heappop
        processed = 0
        try:
            if deadline is None and predicate is None:
                # Fast variant (run_until_complete / drain): no per-event
                # deadline or predicate test.  Kept textually parallel with
                # the general variant below.
                while True:
                    if (
                        stop_future is not None
                        and stop_future._state is not _PENDING
                    ):
                        return
                    if ready:
                        head = ready[0]
                        ready_when = head[0]
                        ready_seq = head[1]
                    else:
                        ready_when = _INF
                        ready_seq = 0
                    if events:
                        head = events[0]
                        heap_when = head[0]
                        heap_seq = head[1]
                    else:
                        heap_when = _INF
                        heap_seq = 0
                    candidate = ready_when if ready_when < heap_when else heap_when
                    next_start = wheel.next_start
                    if next_start <= candidate and next_start < _INF:
                        wheel.flush(candidate, events)
                        continue
                    if candidate == _INF:
                        return
                    if ready_when < heap_when or (
                        ready_when == heap_when and ready_seq < heap_seq
                    ):
                        when, _seq, callback, arg = pop_ready()
                    else:
                        entry = heappop(events)
                        handle = entry[2]
                        callback = handle._callback
                        if callback is None:
                            self._tombstones -= 1
                            continue
                        when = entry[0]
                        arg = handle._arg
                        handle._callback = None
                        handle._arg = None
                        handle._where = _FIRED
                        handle._scheduler = None
                        journal = self.journal
                        if journal is not None:
                            journal.record("timer-fire", entry[1], when)
                    if when > self._now:
                        self._now = when
                    processed += 1
                    if arg is _NO_ARG:
                        callback()
                    else:
                        callback(arg)
            else:
                while True:
                    if (
                        stop_future is not None
                        and stop_future._state is not _PENDING
                    ):
                        return
                    if predicate is not None and predicate():
                        return
                    if ready:
                        head = ready[0]
                        ready_when = head[0]
                        ready_seq = head[1]
                    else:
                        ready_when = _INF
                        ready_seq = 0
                    if events:
                        head = events[0]
                        heap_when = head[0]
                        heap_seq = head[1]
                    else:
                        heap_when = _INF
                        heap_seq = 0
                    candidate = ready_when if ready_when < heap_when else heap_when
                    next_start = wheel.next_start
                    if next_start <= candidate and next_start < _INF:
                        wheel.flush(candidate, events)
                        continue
                    if candidate == _INF:
                        return
                    if deadline is not None and candidate > deadline:
                        return
                    if ready_when < heap_when or (
                        ready_when == heap_when and ready_seq < heap_seq
                    ):
                        when, _seq, callback, arg = pop_ready()
                    else:
                        entry = heappop(events)
                        handle = entry[2]
                        callback = handle._callback
                        if callback is None:
                            self._tombstones -= 1
                            continue
                        when = entry[0]
                        arg = handle._arg
                        handle._callback = None
                        handle._arg = None
                        handle._where = _FIRED
                        handle._scheduler = None
                        journal = self.journal
                        if journal is not None:
                            journal.record("timer-fire", entry[1], when)
                    if when > self._now:
                        self._now = when
                    processed += 1
                    if arg is _NO_ARG:
                        callback()
                    else:
                        callback(arg)
        finally:
            self.events_processed += processed

    def stop(self) -> None:
        """Discard pending events and refuse further scheduling.

        Queued-but-unstarted tasks are cancelled through :meth:`Task.cancel`
        (closing their coroutines now) instead of being dropped on the floor
        to rely on ``__del__`` GC timing.
        """
        self._stopped = True
        unstarted: list[Task] = []
        for entry in self._ready:
            if entry[2] is Task._step and isinstance(entry[3], Task):
                unstarted.append(entry[3])
        self._ready.clear()
        for entry in self._events:
            handle = entry[2]
            callback = handle._callback
            if callback is None:
                continue
            if callback is Task._step and isinstance(handle._arg, Task):
                unstarted.append(handle._arg)
            handle._callback = None
            handle._arg = None
            handle._where = _DEAD
            handle._scheduler = None
        self._events.clear()
        self._tombstones = 0
        for handle in self._wheel.drain_handles():
            if handle._callback is Task._step and isinstance(handle._arg, Task):
                unstarted.append(handle._arg)
            handle._callback = None
            handle._arg = None
            handle._where = _DEAD
            handle._scheduler = None
        for task in unstarted:
            if not task._started:
                task.cancel()

    # -- structured helpers --------------------------------------------------

    async def gather(self, awaitables: Iterable[Awaitable[Any]]) -> list[Any]:
        """Await all ``awaitables`` concurrently; results in input order.

        Semantics are pinned regardless of input kind (Task, Future or plain
        coroutine — coroutines are spawned in input order):

        - waits for **every** input to settle (no orphaned half-run inputs);
        - on success resolves to the results in input order;
        - on failure raises the exception of the **lowest-index** failed
          input (a cancelled input counts as failed with CancelledError),
          independent of completion order;
        - an empty iterable resolves immediately to ``[]``.
        """
        futures: list[Future[Any]] = []
        for item in awaitables:
            if isinstance(item, Task):
                futures.append(item.future)
            elif isinstance(item, Future):
                futures.append(item)
            else:
                futures.append(self.spawn(item).future)  # type: ignore[arg-type]
        if not futures:
            return []
        all_settled: Future[None] = Future("gather")
        remaining = len(futures)

        def on_settled(_: Future[Any]) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                all_settled.set_result(None)

        for future in futures:
            future.add_done_callback(on_settled)
        await all_settled
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            state = future._state
            if state is _RESOLVED:
                results.append(future._value)
                continue
            results.append(None)
            if first_error is None:
                if state is _CANCELLED:
                    first_error = CancelledError(future.name or "future cancelled")
                else:
                    first_error = future._exception
        if first_error is not None:
            raise first_error
        return results


def run(coro: Coroutine[Any, Any, Any]) -> Any:
    """Convenience: run ``coro`` to completion on a fresh scheduler."""
    return Scheduler().run_until_complete(coro)
