"""Deterministic discrete-event scheduler with a virtual clock.

The scheduler is the heart of the library: actors, networks, storage and
benchmarks all run on top of it.  Time is *virtual* — it jumps instantly from
one scheduled event to the next — which makes every run deterministic and
lets a benchmark simulate minutes of cluster time in well under a second of
wall-clock time.

Coroutines are driven directly (``coroutine.send``), awaiting
:class:`~repro.kernel.futures.Future` objects.  There is deliberately no
dependency on :mod:`asyncio`.
"""

from __future__ import annotations

import heapq
from typing import Any, Awaitable, Callable, Coroutine, Iterable

from ..errors import CancelledError, DeadlockError, SchedulerStoppedError
from ..errors import TimeoutError as KernelTimeoutError
from .futures import Future


class Task:
    """A scheduled coroutine.

    A task repeatedly steps its coroutine; whenever the coroutine awaits a
    pending future, the task parks until that future completes and then
    resumes via a scheduler event.  The task itself is awaitable: awaiting it
    yields the coroutine's return value (or re-raises its exception).
    """

    __slots__ = (
        "_coro",
        "_scheduler",
        "future",
        "name",
        "_waiting_on",
        "_started",
        "_cancel_requested",
    )

    def __init__(
        self,
        coro: Coroutine[Any, Any, Any],
        scheduler: "Scheduler",
        name: str = "",
    ) -> None:
        self._coro = coro
        self._scheduler = scheduler
        self.future: Future[Any] = Future(name or getattr(coro, "__name__", "task"))
        self.name = self.future.name
        self._waiting_on: Future[Any] | None = None
        self._started = False
        self._cancel_requested = False

    def done(self) -> bool:
        """Return True when the task's coroutine has finished."""
        return self.future.done()

    def result(self) -> Any:
        """Return the coroutine's return value (task must be done)."""
        return self.future.result()

    def cancel(self) -> bool:
        """Request cancellation; returns False if the task already finished."""
        if self.done():
            return False
        if not self._started:
            self.future.cancel()
            self._coro.close()
            return True
        # The awaited future may already be done with the resume step still
        # queued; the flag makes that queued step deliver the cancellation
        # instead of resuming the coroutine.
        self._cancel_requested = True
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and not waiting.done():
            # Detach from the awaited future and inject the cancellation.
            self._scheduler._call_soon(
                lambda: self._step(exc=CancelledError(self.name))
            )
        return True

    # -- driving the coroutine ------------------------------------------------

    def _step(self, value: Any = None, exc: BaseException | None = None) -> None:
        if self.future.done():
            return
        if self._cancel_requested and exc is None:
            exc = CancelledError(self.name)
        self._started = True
        self._waiting_on = None
        try:
            if exc is not None:
                yielded = self._coro.throw(exc)
            else:
                yielded = self._coro.send(value)
        except StopIteration as stop:
            self.future.set_result(stop.value)
            return
        except CancelledError:
            if not self.future.done():
                self.future.cancel()
            return
        except BaseException as error:  # noqa: BLE001 - task funnel
            self.future.set_exception(error)
            return
        if not isinstance(yielded, Future):
            self._step(
                exc=TypeError(
                    f"task {self.name!r} awaited a non-kernel awaitable: "
                    f"{yielded!r}"
                )
            )
            return
        self._waiting_on = yielded
        yielded.add_done_callback(self._on_future_done)

    def _on_future_done(self, future: Future[Any]) -> None:
        if self._waiting_on is not future:
            return  # detached by cancellation
        try:
            value = future.result()
        except BaseException as error:  # noqa: BLE001 - forwarded into coroutine
            # Bind through a default: `error` is unbound once the except
            # block exits, but the lambda runs later.
            self._scheduler._call_soon(lambda exc=error: self._step(exc=exc))
            return
        self._scheduler._call_soon(lambda: self._step(value=value))

    def __await__(self):
        return self.future.__await__()

    def __del__(self) -> None:
        # A task abandoned before its first step (e.g. the run ended first)
        # holds an un-started coroutine; close it quietly instead of letting
        # garbage collection emit a "never awaited" warning.
        if not self._started:
            try:
                self._coro.close()
            except Exception:  # pragma: no cover - GC-time best effort
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} done={self.done()}>"


class Scheduler:
    """Virtual-time discrete-event loop.

    Events are callables keyed by ``(time, sequence)``; the sequence number
    makes ordering of simultaneous events deterministic (FIFO).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._sequence = 0
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._stopped = False
        self.events_processed = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events currently queued (an observability probe reads this)."""
        return len(self._events)

    # -- event scheduling -----------------------------------------------------

    def call_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run at virtual time ``when``."""
        if self._stopped:
            raise SchedulerStoppedError("scheduler has stopped")
        if when < self._now:
            when = self._now
        self._sequence += 1
        heapq.heappush(self._events, (when, self._sequence, action))

    def call_later(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        self.call_at(self._now + max(0.0, delay), action)

    def _call_soon(self, action: Callable[[], None]) -> None:
        self.call_at(self._now, action)

    # -- task & future helpers -------------------------------------------------

    def spawn(self, coro: Coroutine[Any, Any, Any], name: str = "") -> Task:
        """Create a task for ``coro`` and schedule its first step."""
        task = Task(coro, self, name=name)
        self._call_soon(task._step)
        return task

    def sleep(self, delay: float) -> Future[None]:
        """Return a future resolving ``delay`` virtual seconds from now."""
        future: Future[None] = Future(f"sleep:{delay:.6f}")
        self.call_later(delay, lambda: future.done() or future.set_result(None))
        return future

    def at(self, when: float) -> Future[None]:
        """Return a future resolving at absolute virtual time ``when``."""
        future: Future[None] = Future(f"at:{when:.6f}")
        self.call_at(when, lambda: future.done() or future.set_result(None))
        return future

    def timeout(self, awaitable: Future[Any] | Task, delay: float) -> Future[Any]:
        """Wrap an awaitable with a deadline ``delay`` seconds from now.

        The returned future mirrors the awaitable if it finishes in time and
        rejects with :class:`~repro.errors.TimeoutError` otherwise.
        """
        inner = awaitable.future if isinstance(awaitable, Task) else awaitable
        wrapped: Future[Any] = Future("timeout")

        def on_done(done: Future[Any]) -> None:
            if wrapped.done():
                return
            try:
                wrapped.set_result(done.result())
            except BaseException as exc:  # noqa: BLE001
                wrapped.set_exception(exc)

        def on_deadline() -> None:
            if not wrapped.done():
                wrapped.set_exception(
                    KernelTimeoutError(f"timed out after {delay} virtual seconds")
                )

        inner.add_done_callback(on_done)
        self.call_later(delay, on_deadline)
        return wrapped

    # -- running ----------------------------------------------------------------

    def run_until_complete(self, coro: Coroutine[Any, Any, Any], name: str = "main") -> Any:
        """Run the event loop until ``coro`` finishes; return its result."""
        task = self.spawn(coro, name=name)
        self.run_until(lambda: task.done())
        if not task.done():
            raise DeadlockError(
                f"no more events but task {task.name!r} is still pending "
                "(a coroutine is awaiting a future nothing will resolve)"
            )
        return task.result()

    def run_until(self, predicate: Callable[[], bool]) -> None:
        """Process events until ``predicate()`` is true or events run out."""
        while not predicate() and self._events:
            self._process_next()

    def run_for(self, duration: float) -> None:
        """Process all events scheduled within ``duration`` seconds from now."""
        deadline = self._now + duration
        while self._events and self._events[0][0] <= deadline:
            self._process_next()
        self._now = max(self._now, deadline)

    def drain(self) -> None:
        """Process every remaining event."""
        while self._events:
            self._process_next()

    def _process_next(self) -> None:
        when, _seq, action = heapq.heappop(self._events)
        self._now = max(self._now, when)
        self.events_processed += 1
        action()

    def stop(self) -> None:
        """Discard pending events and refuse further scheduling."""
        self._events.clear()
        self._stopped = True

    # -- structured helpers --------------------------------------------------

    async def gather(self, awaitables: Iterable[Awaitable[Any]]) -> list[Any]:
        """Await all ``awaitables`` concurrently, preserving order of results."""
        futures: list[Future[Any]] = []
        for item in awaitables:
            if isinstance(item, Task):
                futures.append(item.future)
            elif isinstance(item, Future):
                futures.append(item)
            else:
                futures.append(self.spawn(item).future)  # type: ignore[arg-type]
        from .futures import all_of

        return await all_of(futures)


def run(coro: Coroutine[Any, Any, Any]) -> Any:
    """Convenience: run ``coro`` to completion on a fresh scheduler."""
    return Scheduler().run_until_complete(coro)
