"""Contended-resource models: multi-core CPUs and token buckets.

:class:`CpuResource` is the piece that makes the benchmark figures come out
with the paper's shapes.  Each simulated silo owns one; every actor-message
execution *consumes* CPU seconds on it.  Because the resource is a
first-come-first-served multi-server queue, a synchronized wave of requests
(the paper's once-per-second sensor burst) drains through the cores over
real queueing delay — which is exactly where the paper's latency percentiles
and the single-server saturation point come from.
"""

from __future__ import annotations

import heapq

from .futures import Future
from .scheduler import Scheduler


class CpuResource:
    """A FCFS multi-core CPU with a relative speed factor.

    ``speed`` scales service times: a silo with ``speed=1.5`` finishes the
    same work 1.5x faster than one with ``speed=1.0`` (mirroring the paper's
    use of EC2 Compute Units to compare m5.large and m5.xlarge).
    """

    def __init__(self, scheduler: Scheduler, cores: int, speed: float = 1.0) -> None:
        if cores < 1:
            raise ValueError("a CPU needs at least one core")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self._scheduler = scheduler
        self.cores = cores
        self.speed = speed
        # Virtual timestamps at which each core next becomes free.
        self._core_free_at: list[float] = [scheduler.now] * cores
        heapq.heapify(self._core_free_at)
        self.busy_seconds = 0.0
        self.jobs_completed = 0
        self._opened_at = scheduler.now

    def consume(self, cpu_seconds: float, profile=None) -> Future[None]:
        """Occupy one core for ``cpu_seconds`` of work (scaled by speed).

        Returns a future resolving when the work completes; the caller
        experiences queueing delay automatically when all cores are busy.
        Zero-cost work completes at the current instant but still round-trips
        through the scheduler for deterministic ordering.

        ``profile`` is the CPU-attribution hook for the continuous profiler:
        an iterable of accounting records (objects with ``cpu_service`` and
        ``cpu_wait`` attributes, e.g.
        :class:`~repro.obs.profile.ProfileRecord`).  The resource is the only
        place that knows exactly how the elapsed virtual time splits into
        core-queueing wait versus service, so it attributes both here; with
        the default ``None`` the hook costs nothing.
        """
        if cpu_seconds < 0:
            raise ValueError("cpu_seconds must be >= 0")
        now = self._scheduler.now
        service_time = cpu_seconds / self.speed
        earliest_free = heapq.heappop(self._core_free_at)
        start = max(now, earliest_free)
        finish = start + service_time
        heapq.heappush(self._core_free_at, finish)
        self.busy_seconds += service_time
        self.jobs_completed += 1
        if profile is not None:
            wait = start - now
            for record in profile:
                record.cpu_service += service_time
                record.cpu_wait += wait
        return self._scheduler.at(finish)

    def queue_depth_seconds(self) -> float:
        """Backlog: how far in the future the least-loaded core is booked."""
        return max(0.0, min(self._core_free_at) - self._scheduler.now)

    def utilization(self) -> float:
        """Fraction of core-time spent busy since construction (or reset)."""
        elapsed = self._scheduler.now - self._opened_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.cores))

    def reset_accounting(self) -> None:
        """Restart the utilization window at the current instant."""
        self.busy_seconds = 0.0
        self.jobs_completed = 0
        self._opened_at = self._scheduler.now


class TokenBucket:
    """A refill-per-second token bucket (DynamoDB-style provisioned capacity).

    Capacity accrues continuously at ``rate`` tokens/second up to ``burst``
    tokens.  :meth:`try_consume` either takes the tokens now or reports how
    long the caller must wait — storage layers use that to either throttle
    (reject) or delay requests.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rate: float,
        burst: float | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._scheduler = scheduler
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self._tokens = self.burst
        self._updated_at = scheduler.now

    def _refill(self) -> None:
        now = self._scheduler.now
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated_at) * self.rate
        )
        self._updated_at = now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        self._refill()
        return self._tokens

    # Deficits below this are forgiven: refill arithmetic cannot resolve
    # them (sleeping `deficit/rate` may not advance float time at all,
    # livelocking a waiter on an infinitesimal shortfall).
    EPSILON_TOKENS = 1e-9

    def try_consume(self, amount: float) -> float:
        """Consume ``amount`` tokens if available.

        Returns 0.0 on success, otherwise the number of seconds until the
        bucket will have accrued enough tokens (the tokens are *not* taken).
        """
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self._refill()
        if self._tokens + self.EPSILON_TOKENS >= amount:
            self._tokens = max(0.0, self._tokens - amount)
            return 0.0
        deficit = amount - self._tokens
        return deficit / self.rate

    async def consume(self, amount: float) -> None:
        """Wait until ``amount`` tokens are available, then take them."""
        while True:
            wait = self.try_consume(amount)
            if wait == 0.0:
                return
            # Clamp below: a wait smaller than float resolution at the
            # current clock would re-fire at the same instant forever.
            await self._scheduler.sleep(max(wait, 1e-9))
