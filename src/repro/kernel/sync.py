"""Synchronization primitives for kernel coroutines.

All primitives are fair (FIFO) and deterministic.  They are deliberately
minimal: an :class:`Event`, a :class:`Lock`, a counting :class:`Semaphore`,
and an unbounded/bounded :class:`Queue`, which together cover everything the
actor runtime and case studies need.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, TypeVar

from ..errors import MailboxOverflowError
from .futures import _PENDING, RESOLVED_NONE, Future, completed
from .scheduler import Scheduler

T = TypeVar("T")


class Event:
    """A level-triggered flag tasks can wait on."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._set = False
        self._waiters: Deque[Future[None]] = deque()

    def is_set(self) -> bool:
        """Return True if the event is currently set."""
        return self._set

    def set(self) -> None:
        """Set the flag and wake every waiter."""
        if self._set:
            return
        self._set = True
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    def clear(self) -> None:
        """Reset the flag; subsequent waits will block."""
        self._set = False

    def wait(self) -> Future[None]:
        """Return a future that resolves once the flag is set."""
        if self._set:
            return RESOLVED_NONE
        waiter: Future[None] = Future("event:wait")
        self._waiters.append(waiter)
        return waiter


class Lock:
    """A fair mutual-exclusion lock usable as an async context manager."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._locked = False
        self._waiters: Deque[Future[None]] = deque()

    @property
    def locked(self) -> bool:
        """Return True while some task holds the lock."""
        return self._locked

    def acquire(self) -> Future[None]:
        """Return a future resolving once the lock is held by the caller."""
        if not self._locked:
            self._locked = True
            return RESOLVED_NONE
        waiter: Future[None] = Future("lock:wait")
        self._waiters.append(waiter)
        return waiter

    def release(self) -> None:
        """Release the lock, handing it to the oldest waiter if any."""
        if not self._locked:
            raise RuntimeError("release of an unlocked Lock")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                # Hand over ownership directly: the lock stays held.
                waiter.set_result(None)
                return
        self._locked = False

    async def __aenter__(self) -> "Lock":
        await self.acquire()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.release()


class Semaphore:
    """A fair counting semaphore."""

    def __init__(self, scheduler: Scheduler, value: int) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self._scheduler = scheduler
        self._value = value
        self._waiters: Deque[Future[None]] = deque()

    @property
    def value(self) -> int:
        """Current number of free permits."""
        return self._value

    def acquire(self) -> Future[None]:
        """Return a future resolving once a permit is granted."""
        if self._value > 0:
            self._value -= 1
            return RESOLVED_NONE
        waiter: Future[None] = Future("sem:wait")
        self._waiters.append(waiter)
        return waiter

    def release(self) -> None:
        """Return a permit, waking the oldest waiter if any."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return
        self._value += 1

    async def __aenter__(self) -> "Semaphore":
        await self.acquire()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.release()


class Queue(Generic[T]):
    """A FIFO queue connecting producer and consumer tasks.

    ``maxsize=0`` means unbounded.  A bounded queue raises
    :class:`~repro.errors.MailboxOverflowError` on :meth:`put_nowait` when
    full — actor mailboxes use this to surface overload explicitly instead
    of buffering without bound.
    """

    def __init__(self, scheduler: Scheduler, maxsize: int = 0) -> None:
        self._scheduler = scheduler
        self._maxsize = maxsize
        self._items: Deque[T] = deque()
        self._getters: Deque[Future[T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def maxsize(self) -> int:
        """Capacity limit (0 = unbounded)."""
        return self._maxsize

    def empty(self) -> bool:
        """Return True when no items are buffered."""
        return not self._items

    def full(self) -> bool:
        """Return True when a bounded queue is at capacity."""
        return self._maxsize > 0 and len(self._items) >= self._maxsize

    def put_nowait(self, item: T) -> None:
        """Enqueue ``item``; hand it straight to a waiting getter if any."""
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._state is _PENDING:
                getter.set_result(item)
                return
        items = self._items
        if self._maxsize > 0 and len(items) >= self._maxsize:
            raise MailboxOverflowError(
                f"queue full (maxsize={self._maxsize}); item dropped by caller"
            )
        items.append(item)

    def get(self) -> Future[T]:
        """Return a future resolving to the next item (FIFO).

        Hot consumers (the activation pump) should prefer
        ``if not queue.empty(): queue.get_nowait()`` — the buffered case
        here still allocates a resolved future per item.
        """
        if self._items:
            return completed(self._items.popleft())
        getter: Future[T] = Future("queue:get")
        self._getters.append(getter)
        return getter

    def peek_nowait(self) -> T | None:
        """The head item without removing it (None when empty)."""
        return self._items[0] if self._items else None

    def get_nowait(self) -> T:
        """Remove and return the head item; raises IndexError when empty."""
        return self._items.popleft()

    def drain_nowait(self) -> list[T]:
        """Remove and return all buffered items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items
