"""Case study 1: the Structural Health Monitoring Data Platform (SHMDP)."""

from .aggregator import Aggregator
from .channel import PhysicalSensorChannel, VirtualSensorChannel
from .equations import (
    Equation,
    EquationError,
    ExpressionEquation,
    MeanEquation,
    SumEquation,
    WeightedEquation,
    equation_from_description,
)
from .model import (
    Alert,
    AlertRule,
    DataPoint,
    Project,
    Role,
    SensorSpec,
    SensorType,
    User,
)
from .organization import Organization
from .platform import (
    ACTOR_CLASSES,
    ProvisionReport,
    ShmPlatform,
    aggregator_id_for,
    channel_id_for,
    org_id_for,
    sensor_id_for,
    virtual_channel_id_for,
)
from .sensor import Sensor
from .timeseries import (
    AccumulatedChange,
    AggregateStats,
    BucketedAggregates,
    DataWindow,
)

__all__ = [
    "ACTOR_CLASSES",
    "AccumulatedChange",
    "AggregateStats",
    "Aggregator",
    "Alert",
    "AlertRule",
    "BucketedAggregates",
    "DataPoint",
    "DataWindow",
    "Equation",
    "EquationError",
    "ExpressionEquation",
    "MeanEquation",
    "Organization",
    "PhysicalSensorChannel",
    "Project",
    "ProvisionReport",
    "Role",
    "Sensor",
    "SensorSpec",
    "SensorType",
    "ShmPlatform",
    "SumEquation",
    "User",
    "VirtualSensorChannel",
    "WeightedEquation",
    "aggregator_id_for",
    "channel_id_for",
    "equation_from_description",
    "org_id_for",
    "sensor_id_for",
    "virtual_channel_id_for",
]
