"""The Organization actor — one tenant of the SHM data platform.

Following the paper's granularity principle (§4.2), an Organization actor
encapsulates its projects and users as non-actor objects ("only
organizations are active ... while projects are passive structural schemes
used by organizations").  It also:

- keeps the registry of its sensors and sensor channels (used to fan out
  live-data queries, §6.2's "requests for live data retrieved the most
  recent values from all sensor channels of a given organization");
- stores alert rules and pushes them to the affected channel actors;
- records alerts raised by channels and routes them to subscribed users.
"""

from __future__ import annotations

from ..errors import AuthorizationError, UnknownEntityError
from ..runtime.actor import Actor, actor_method
from .model import AlertRule, Role, SensorType

# Actions gated by role-based access control (non-functional requirement 7).
_ROLE_PERMISSIONS: dict[str, frozenset[Role]] = {
    "read_data": frozenset(
        {Role.ENGINEER, Role.DATA_ANALYST, Role.MAINTENANCE, Role.ADMIN}
    ),
    "manage_structure": frozenset({Role.MAINTENANCE, Role.ADMIN}),
    "manage_users": frozenset({Role.ADMIN}),
    "manage_alerts": frozenset({Role.ENGINEER, Role.MAINTENANCE, Role.ADMIN}),
}

MAX_STORED_ALERTS = 1000


class Organization(Actor):
    """Tenant actor: projects, users, sensor registry, alerts."""

    durable = True
    placement = "pinned"

    async def setup(self, name: str) -> dict:
        """Initialize the organization (idempotent)."""
        self.state.setdefault("name", name)
        self.state.setdefault("projects", {})
        self.state.setdefault("users", {})
        self.state.setdefault("sensors", {})
        self.state.setdefault("channels", [])
        self.state.setdefault("alert_rules", {})
        self.state.setdefault("alerts", [])
        self.state.setdefault("inboxes", {})
        self.mark_dirty()
        return {"org_id": self.actor_id, "name": self.state["name"]}

    # -- access control ---------------------------------------------------------

    def _require(self, user_id: str | None, action: str) -> None:
        if user_id is None:
            return  # internal/platform call
        users = self.state.get("users", {})
        user = users.get(user_id)
        if user is None:
            raise AuthorizationError(
                f"unknown user {user_id!r} in organization {self.actor_id}"
            )
        role = Role(user["role"])
        if role not in _ROLE_PERMISSIONS[action]:
            raise AuthorizationError(
                f"user {user_id!r} (role {role.value}) may not {action}"
            )

    @actor_method(read_only=True)
    async def check_access(self, user_id: str, action: str) -> bool:
        """Raise AuthorizationError unless ``user_id`` may do ``action``."""
        self._require(user_id, action)
        return True

    # -- structure management ---------------------------------------------------------

    async def add_user(
        self,
        user_id: str,
        name: str,
        role: str = Role.ENGINEER.value,
        subscribed_alerts: bool = True,
        acting_user: str | None = None,
    ) -> dict:
        """Add a user (tenant principal)."""
        self._require(acting_user, "manage_users")
        Role(role)  # validate
        user = {
            "user_id": user_id,
            "name": name,
            "role": role,
            "subscribed_alerts": subscribed_alerts,
        }
        self.state.setdefault("users", {})[user_id] = user
        self.state.setdefault("inboxes", {}).setdefault(user_id, [])
        self.mark_dirty()
        return user

    async def add_project(
        self,
        project_id: str,
        name: str,
        structure_kind: str = "bridge",
        acting_user: str | None = None,
    ) -> dict:
        """Create a monitored construction project."""
        self._require(acting_user, "manage_structure")
        project = {
            "project_id": project_id,
            "name": name,
            "structure_kind": structure_kind,
            "sensor_ids": [],
            "active": True,
        }
        self.state.setdefault("projects", {})[project_id] = project
        self.mark_dirty()
        return project

    async def register_sensor(
        self,
        project_id: str,
        sensor_id: str,
        sensor_type: str,
        channel_ids: list[str],
        virtual_channel_ids: list[str] | None = None,
        acting_user: str | None = None,
    ) -> dict:
        """Record a provisioned sensor and its (physical+virtual) channels."""
        self._require(acting_user, "manage_structure")
        virtual_channel_ids = virtual_channel_ids or []
        projects = self.state.setdefault("projects", {})
        if project_id not in projects:
            raise UnknownEntityError(f"no project {project_id!r} in {self.actor_id}")
        projects[project_id]["sensor_ids"].append(sensor_id)
        sensor = {
            "sensor_id": sensor_id,
            "project_id": project_id,
            "sensor_type": sensor_type,
            "channel_ids": list(channel_ids),
            "virtual_channel_ids": list(virtual_channel_ids),
        }
        self.state.setdefault("sensors", {})[sensor_id] = sensor
        channels = self.state.setdefault("channels", [])
        channels.extend({"id": cid, "virtual": False} for cid in channel_ids)
        channels.extend({"id": cid, "virtual": True} for cid in virtual_channel_ids)
        self.mark_dirty()
        return sensor

    # -- alert rules --------------------------------------------------------------

    async def add_alert_rule(
        self,
        rule_id: str,
        low: float | None = None,
        high: float | None = None,
        channel_id: str | None = None,
        sensor_type: str | None = None,
        cooldown_seconds: float = 60.0,
        message: str = "",
        acting_user: str | None = None,
    ) -> int:
        """Store a threshold rule and push it to the affected channels.

        Returns the number of channels the rule was pushed to.
        """
        self._require(acting_user, "manage_alerts")
        rule = {
            "rule_id": rule_id,
            "low": low,
            "high": high,
            "channel_id": channel_id,
            "sensor_type": sensor_type,
            "cooldown_seconds": cooldown_seconds,
            "message": message,
        }
        self.state.setdefault("alert_rules", {})[rule_id] = rule
        self.mark_dirty()
        pushed = 0
        for sensor in self.state.get("sensors", {}).values():
            for cid in sensor["channel_ids"]:
                applies = AlertRule(
                    rule_id,
                    low=low,
                    high=high,
                    channel_id=channel_id,
                    sensor_type=SensorType(sensor_type) if sensor_type else None,
                ).matches(cid, SensorType(sensor["sensor_type"]))
                if applies:
                    channel = self.context.actor("PhysicalSensorChannel", cid)
                    channel.tell("add_alert_rule", rule)
                    pushed += 1
        return pushed

    async def record_alert(self, alert: dict) -> None:
        """Receive an alert from a channel (one-way) and fan to inboxes."""
        alerts = self.state.setdefault("alerts", [])
        alerts.append(alert)
        if len(alerts) > MAX_STORED_ALERTS:
            del alerts[: len(alerts) - MAX_STORED_ALERTS]
        inboxes = self.state.setdefault("inboxes", {})
        for user in self.state.get("users", {}).values():
            if user.get("subscribed_alerts"):
                inbox = inboxes.setdefault(user["user_id"], [])
                inbox.append(alert)
                if len(inbox) > MAX_STORED_ALERTS:
                    del inbox[: len(inbox) - MAX_STORED_ALERTS]
        self.mark_dirty()

    # -- queries -----------------------------------------------------------------------

    @actor_method(read_only=True)
    async def live_data(self, user_id: str | None = None) -> dict:
        """Most recent value of every channel in this organization (§6.2)."""
        self._require(user_id, "read_data")
        entries = list(self.state.get("channels", ()))
        futures = []
        for entry in entries:
            type_name = (
                "VirtualSensorChannel" if entry["virtual"] else "PhysicalSensorChannel"
            )
            futures.append(self.context.actor(type_name, entry["id"]).ask("latest"))
        values = await self.context.runtime.scheduler.gather(futures)
        return {entry["id"]: value for entry, value in zip(entries, values)}

    @actor_method(read_only=True)
    async def alerts(self, limit: int = 100, user_id: str | None = None) -> list:
        """The most recent alerts recorded by this organization."""
        self._require(user_id, "read_data")
        return list(self.state.get("alerts", ()))[-limit:]

    @actor_method(read_only=True)
    async def inbox(self, user_id: str) -> list:
        """Alerts delivered to one subscribed user."""
        self._require(user_id, "read_data")
        return list(self.state.get("inboxes", {}).get(user_id, ()))

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Structural summary of the tenant."""
        return {
            "org_id": self.actor_id,
            "name": self.state.get("name"),
            "projects": len(self.state.get("projects", {})),
            "users": len(self.state.get("users", {})),
            "sensors": len(self.state.get("sensors", {})),
            "channels": len(self.state.get("channels", ())),
            "alert_rules": len(self.state.get("alert_rules", {})),
            "alerts": len(self.state.get("alerts", ())),
        }

    @actor_method(read_only=True)
    async def channel_ids(self) -> list[str]:
        """All channel actor ids (physical and virtual) of this organization."""
        return [entry["id"] for entry in self.state.get("channels", ())]
