"""Physical and virtual sensor channel actors.

Channels are the paper's unit of ingestion: each holds "a window of data
points originating in the respective data stream" (§4.2).  Physical
channels receive raw readings; virtual channels derive a stream from
several physical channels through an equation (the benchmark uses a
summation of a sensor's two physical channels).

Both use prefer-local placement (§5: "we have had to change the activation
placement strategy away from random placement for our sensor channels and
aggregators") so they are activated on the silo of the sensor that first
talks to them.
"""

from __future__ import annotations

from ..runtime.actor import Actor, actor_method
from ..runtime.persistence import WritePolicy
from ..storage.tsblocks import SealedBlock, TieredSeries
from .equations import equation_from_description
from .model import AlertRule, SensorType
from .timeseries import AccumulatedChange

DEFAULT_WINDOW_CAPACITY = 4096
# Points per sealed compressed block; 0 disables tiering (raw window).
DEFAULT_BLOCK_SIZE = 256
# Cap on how many pending (incomplete) virtual-channel timestamps to keep.
MAX_PENDING_TIMESTAMPS = 1024


class _ChannelBase(Actor):
    """Shared storage/query machinery of physical and virtual channels.

    The live window is a :class:`~repro.storage.tsblocks.TieredSeries`:
    the newest points stay raw (the mutable hot head), older runs are
    sealed into immutable compressed blocks with per-block summaries.  It
    is serialized into ``self.state`` only on deactivation, which
    reproduces the paper's benchmark durability configuration ("upload
    ... only ... when the Orleans silo service is shut down") — and since
    sealed blocks serialize as-is (bytes + scalars), a migrated channel
    re-opens its blocks on the new silo without recompression.
    """

    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE
    placement = "prefer_local"

    def __init__(self, context):
        super().__init__(context)
        self.window = self._new_window(
            DEFAULT_WINDOW_CAPACITY, DEFAULT_BLOCK_SIZE
        )
        self.change = AccumulatedChange()
        # High-water mark of stored timestamps, used by the optional
        # duplicate filter; restored from the persisted window on activate.
        self._last_ts = float("-inf")

    def _new_window(self, capacity: int, block_size: int) -> TieredSeries:
        return TieredSeries(
            capacity,
            block_size,
            stats=getattr(self.context.runtime, "tsblock_stats", None),
        )

    async def on_activate(self):
        window_capacity = self.state.get("window_capacity", DEFAULT_WINDOW_CAPACITY)
        block_size = self.state.get("block_size", DEFAULT_BLOCK_SIZE)
        self.window.detach_stats()
        tsdoc = self.state.get("tsdoc")
        if tsdoc is not None:
            self.window = TieredSeries.from_document(
                tsdoc,
                stats=getattr(self.context.runtime, "tsblock_stats", None),
            )
        else:
            # Legacy raw-pair snapshot (pre-tsblocks state documents).
            self.window = self._new_window(window_capacity, block_size)
            pairs = [tuple(p) for p in self.state.get("window", ())]
            if pairs:
                self.window.append_many(pairs)
        latest = self.window.latest()
        if latest is not None:
            self._last_ts = latest[0]
        change = self.state.get("change")
        if change:
            self.change.first_value = change["first"]
            self.change.last_value = change["last"]
            self.change.total = change["total"]
            self.change.count = change["count"]

    def snapshot_state(self) -> None:
        """Serialize the live window into the state document.

        Shared by deactivation, the redo-journal pump, and the quarantine
        scram flush (see :meth:`repro.runtime.actor.Actor.snapshot_state`).
        Blocks go in compressed — the document holds the same bytes the
        window does, so a flush costs no recompression.
        """
        self.state["tsdoc"] = self.window.to_document()
        self.state.pop("window", None)
        self.state["change"] = self.change.snapshot()
        self.mark_dirty()

    async def on_deactivate(self):
        self.snapshot_state()
        # Stop feeding the cluster-wide storage probes: the re-opened
        # activation (possibly on another silo) re-registers these points.
        self.window.detach_stats()

    def _store_points(self, points: list[tuple[float, float]]) -> int:
        """Append readings to the window; archive evicted ones.

        Whole evicted blocks are handed to the archive still compressed;
        only loose boundary points go through the raw append path.
        """
        if not points:
            return 0
        evicted = self.window.append_many(points)
        self.change.observe_pairs(points)
        # append_many validated the batch is time-ordered, so the last
        # timestamp is the batch maximum.
        last = points[-1][0]
        if last > self._last_ts:
            self._last_ts = last
        if evicted:
            archive = getattr(self.context.runtime, "archive", None)
            if archive is not None:
                for item in evicted:
                    if type(item) is SealedBlock:
                        archive.append_block(self.actor_id, item)
                    else:
                        archive.append(self.actor_id, item[0], item[1])
        return len(points)

    # -- queries --------------------------------------------------------------

    @actor_method(read_only=True)
    async def latest(self) -> tuple[float, float] | None:
        """The most recent reading as ``(timestamp, value)``."""
        return self.window.latest()

    @actor_method(read_only=True)
    async def query_range(self, start: float, end: float) -> list[tuple[float, float]]:
        """Raw readings with start <= timestamp < end (the Fig. 8 request)."""
        return self.window.range(start, end)

    @actor_method(read_only=True)
    async def recent(self, count: int) -> list[tuple[float, float]]:
        """The most recent ``count`` readings."""
        return self.window.tail(count)

    @actor_method(read_only=True)
    async def aggregate_range(self, start: float, end: float) -> dict:
        """Count/min/max/sum/mean over [start, end).

        Sealed blocks fully inside the range answer from their summaries
        without decompression.
        """
        return self.window.aggregate(start, end)

    @actor_method(read_only=True)
    async def accumulated_change(self) -> dict:
        """Net and total movement of the stream (functional requirement 4)."""
        return self.change.snapshot()

    @actor_method(read_only=True)
    async def depth(self) -> int:
        """Number of points currently buffered."""
        return len(self.window)

    @actor_method(read_only=True)
    async def storage_stats(self) -> dict:
        """Live-memory accounting of this channel's tiered window."""
        return self.window.memory_stats()


class PhysicalSensorChannel(_ChannelBase):
    """A channel bound to one physical signal of one sensor."""

    async def configure(
        self,
        org_id: str,
        sensor_id: str,
        sensor_type: str = SensorType.EXTENSION.value,
        window_capacity: int = DEFAULT_WINDOW_CAPACITY,
        alert_rules: list[dict] | None = None,
        subscribers: list[str] | None = None,
        aggregator_id: str | None = None,
        dedup: bool = False,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> dict:
        """Provision the channel.

        ``subscribers`` are virtual-channel actor ids that receive a copy of
        every ingested batch; ``aggregator_id`` optionally routes points to
        an hourly aggregator.  With ``dedup`` the channel drops readings at
        or below its stored high-water timestamp, making ingestion
        idempotent under at-least-once delivery (duplicated messages).
        """
        self.state["org_id"] = org_id
        self.state["sensor_id"] = sensor_id
        self.state["sensor_type"] = sensor_type
        self.state["window_capacity"] = window_capacity
        self.state["alert_rules"] = list(alert_rules or ())
        self.state["subscribers"] = list(subscribers or ())
        self.state["aggregator_id"] = aggregator_id
        self.state["dedup"] = dedup
        self.state["block_size"] = block_size
        self.state["last_alert_at"] = {}
        self.mark_dirty()
        self.window.detach_stats()
        self.window = self._new_window(window_capacity, block_size)
        return {"channel_id": self.actor_id}

    async def add_alert_rule(self, rule: dict) -> None:
        """Attach a threshold rule pushed down by the organization."""
        rules = self.state.setdefault("alert_rules", [])
        rules[:] = [r for r in rules if r["rule_id"] != rule["rule_id"]]
        rules.append(dict(rule))
        self.mark_dirty()

    async def ingest(self, points: list[tuple[float, float]]) -> int:
        """Store one batch of readings; the ingestion hot path.

        Checks alert rules, then forwards the batch one-way to subscribed
        virtual channels and the aggregator (if any) — one-way because the
        derived streams are eventually consistent with the raw stream.
        """
        if self.state.get("dedup"):
            points = [p for p in points if p[0] > self._last_ts]
            if not points:
                return 0
        stored = self._store_points(points)
        if self.state.get("alert_rules"):
            self._check_alerts(points)
        for subscriber in self.state.get("subscribers", ()):
            self.context.actor("VirtualSensorChannel", subscriber).tell(
                "ingest_input", self.actor_id, points
            )
        aggregator_id = self.state.get("aggregator_id")
        if aggregator_id:
            self.context.actor("Aggregator", aggregator_id).tell("ingest", points)
        return stored

    def _check_alerts(self, points: list[tuple[float, float]]) -> None:
        sensor_type = SensorType(self.state.get("sensor_type", "extension"))
        last_alert_at = self.state.setdefault("last_alert_at", {})
        org = self.context.actor("Organization", self.state["org_id"])
        for rule_dict in self.state.get("alert_rules", ()):
            rule = AlertRule(
                rule_dict["rule_id"],
                low=rule_dict.get("low"),
                high=rule_dict.get("high"),
                channel_id=rule_dict.get("channel_id"),
                sensor_type=SensorType(rule_dict["sensor_type"])
                if rule_dict.get("sensor_type")
                else None,
                cooldown_seconds=rule_dict.get("cooldown_seconds", 60.0),
                message=rule_dict.get("message", ""),
            )
            if not rule.matches(self.actor_id, sensor_type):
                continue
            for timestamp, value in points:
                if not rule.violated_by(value):
                    continue
                last = last_alert_at.get(rule.rule_id)
                if last is not None and timestamp - last < rule.cooldown_seconds:
                    continue
                last_alert_at[rule.rule_id] = timestamp
                self.mark_dirty()
                org.tell(
                    "record_alert",
                    {
                        "rule_id": rule.rule_id,
                        "channel_id": self.actor_id,
                        "value": value,
                        "timestamp": timestamp,
                        "message": rule.message,
                    },
                )
                break  # at most one alert per rule per batch


class VirtualSensorChannel(_ChannelBase):
    """A derived stream computed from several physical channels (§4.2)."""

    async def configure(
        self,
        org_id: str,
        sensor_id: str,
        input_channel_ids: list[str],
        equation: dict | None = None,
        window_capacity: int = DEFAULT_WINDOW_CAPACITY,
        aggregator_id: str | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> dict:
        """Provision: inputs, the equation, and an optional aggregator."""
        if not input_channel_ids:
            raise ValueError("a virtual channel needs at least one input")
        self.state["org_id"] = org_id
        self.state["sensor_id"] = sensor_id
        self.state["input_channel_ids"] = list(input_channel_ids)
        self.state["equation"] = equation or {"kind": "sum"}
        equation_from_description(self.state["equation"])  # validate now
        self.state["window_capacity"] = window_capacity
        self.state["aggregator_id"] = aggregator_id
        self.state["block_size"] = block_size
        self.mark_dirty()
        self.window.detach_stats()
        self.window = self._new_window(window_capacity, block_size)
        self._pending: dict[float, dict[str, float]] = {}
        return {"channel_id": self.actor_id}

    async def on_activate(self):
        await super().on_activate()
        self._pending = {}

    async def ingest_input(
        self, channel_id: str, points: list[tuple[float, float]]
    ) -> int:
        """Receive a batch from one input channel; derive when aligned.

        A derived point is produced for each timestamp once *all* input
        channels contributed a reading for it.
        """
        inputs = self.state.get("input_channel_ids", ())
        if channel_id not in inputs:
            return 0
        equation = equation_from_description(
            self.state.get("equation", {"kind": "sum"})
        )
        derived: list[tuple[float, float]] = []
        for timestamp, value in points:
            slot = self._pending.setdefault(timestamp, {})
            slot[channel_id] = value
            if len(slot) == len(inputs):
                derived.append((timestamp, equation.evaluate(slot)))
                del self._pending[timestamp]
        if len(self._pending) > MAX_PENDING_TIMESTAMPS:
            # Drop the oldest incomplete timestamps (an input went silent).
            for stale in sorted(self._pending)[: len(self._pending) // 2]:
                del self._pending[stale]
        if derived:
            derived.sort()
            self._store_points(derived)
            aggregator_id = self.state.get("aggregator_id")
            if aggregator_id:
                self.context.actor("Aggregator", aggregator_id).tell(
                    "ingest", derived
                )
        return len(derived)

    @actor_method(read_only=True)
    async def pending_count(self) -> int:
        """Timestamps still waiting for some input (diagnostic)."""
        return len(self._pending)
