"""Physical and virtual sensor channel actors.

Channels are the paper's unit of ingestion: each holds "a window of data
points originating in the respective data stream" (§4.2).  Physical
channels receive raw readings; virtual channels derive a stream from
several physical channels through an equation (the benchmark uses a
summation of a sensor's two physical channels).

Both use prefer-local placement (§5: "we have had to change the activation
placement strategy away from random placement for our sensor channels and
aggregators") so they are activated on the silo of the sensor that first
talks to them.
"""

from __future__ import annotations

from ..runtime.actor import Actor, actor_method
from ..runtime.persistence import WritePolicy
from .equations import equation_from_description
from .model import AlertRule, DataPoint, SensorType
from .timeseries import AccumulatedChange, DataWindow

DEFAULT_WINDOW_CAPACITY = 4096
# Cap on how many pending (incomplete) virtual-channel timestamps to keep.
MAX_PENDING_TIMESTAMPS = 1024


class _ChannelBase(Actor):
    """Shared storage/query machinery of physical and virtual channels.

    The live window is a plain in-memory structure (this is the in-memory
    AODB cache); it is serialized into ``self.state`` only on deactivation,
    which reproduces the paper's benchmark durability configuration ("upload
    ... only ... when the Orleans silo service is shut down").
    """

    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE
    placement = "prefer_local"

    def __init__(self, context):
        super().__init__(context)
        self.window = DataWindow(DEFAULT_WINDOW_CAPACITY)
        self.change = AccumulatedChange()
        # High-water mark of stored timestamps, used by the optional
        # duplicate filter; restored from the persisted window on activate.
        self._last_ts = float("-inf")

    async def on_activate(self):
        window_capacity = self.state.get("window_capacity", DEFAULT_WINDOW_CAPACITY)
        self.window = DataWindow(window_capacity)
        for timestamp, value in self.state.get("window", ()):
            self.window.append(DataPoint(timestamp, value))
        latest = self.window.latest()
        if latest is not None:
            self._last_ts = latest.timestamp
        change = self.state.get("change")
        if change:
            self.change.first_value = change["first"]
            self.change.last_value = change["last"]
            self.change.total = change["total"]
            self.change.count = change["count"]

    def snapshot_state(self) -> None:
        """Serialize the live window into the state document.

        Shared by deactivation, the redo-journal pump, and the quarantine
        scram flush (see :meth:`repro.runtime.actor.Actor.snapshot_state`).
        """
        self.state["window"] = [p.as_tuple() for p in self.window.all_points()]
        self.state["change"] = self.change.snapshot()
        self.mark_dirty()

    async def on_deactivate(self):
        self.snapshot_state()

    def _store_points(self, points: list[tuple[float, float]]) -> int:
        """Append readings to the window; archive evicted ones."""
        if not points:
            return 0
        evicted = self.window.append_many(
            [DataPoint(timestamp, value) for timestamp, value in points]
        )
        self.change.observe_pairs(points)
        # append_many validated the batch is time-ordered, so the last
        # timestamp is the batch maximum.
        last = points[-1][0]
        if last > self._last_ts:
            self._last_ts = last
        if evicted:
            archive = getattr(self.context.runtime, "archive", None)
            if archive is not None:
                for point in evicted:
                    archive.append(self.actor_id, point.timestamp, point.value)
        return len(points)

    # -- queries --------------------------------------------------------------

    @actor_method(read_only=True)
    async def latest(self) -> tuple[float, float] | None:
        """The most recent reading as ``(timestamp, value)``."""
        point = self.window.latest()
        return point.as_tuple() if point is not None else None

    @actor_method(read_only=True)
    async def query_range(self, start: float, end: float) -> list[tuple[float, float]]:
        """Raw readings with start <= timestamp < end (the Fig. 8 request)."""
        return [p.as_tuple() for p in self.window.range(start, end)]

    @actor_method(read_only=True)
    async def recent(self, count: int) -> list[tuple[float, float]]:
        """The most recent ``count`` readings."""
        return [p.as_tuple() for p in self.window.tail(count)]

    @actor_method(read_only=True)
    async def accumulated_change(self) -> dict:
        """Net and total movement of the stream (functional requirement 4)."""
        return self.change.snapshot()

    @actor_method(read_only=True)
    async def depth(self) -> int:
        """Number of points currently buffered."""
        return len(self.window)


class PhysicalSensorChannel(_ChannelBase):
    """A channel bound to one physical signal of one sensor."""

    async def configure(
        self,
        org_id: str,
        sensor_id: str,
        sensor_type: str = SensorType.EXTENSION.value,
        window_capacity: int = DEFAULT_WINDOW_CAPACITY,
        alert_rules: list[dict] | None = None,
        subscribers: list[str] | None = None,
        aggregator_id: str | None = None,
        dedup: bool = False,
    ) -> dict:
        """Provision the channel.

        ``subscribers`` are virtual-channel actor ids that receive a copy of
        every ingested batch; ``aggregator_id`` optionally routes points to
        an hourly aggregator.  With ``dedup`` the channel drops readings at
        or below its stored high-water timestamp, making ingestion
        idempotent under at-least-once delivery (duplicated messages).
        """
        self.state["org_id"] = org_id
        self.state["sensor_id"] = sensor_id
        self.state["sensor_type"] = sensor_type
        self.state["window_capacity"] = window_capacity
        self.state["alert_rules"] = list(alert_rules or ())
        self.state["subscribers"] = list(subscribers or ())
        self.state["aggregator_id"] = aggregator_id
        self.state["dedup"] = dedup
        self.state["last_alert_at"] = {}
        self.mark_dirty()
        self.window = DataWindow(window_capacity)
        return {"channel_id": self.actor_id}

    async def add_alert_rule(self, rule: dict) -> None:
        """Attach a threshold rule pushed down by the organization."""
        rules = self.state.setdefault("alert_rules", [])
        rules[:] = [r for r in rules if r["rule_id"] != rule["rule_id"]]
        rules.append(dict(rule))
        self.mark_dirty()

    async def ingest(self, points: list[tuple[float, float]]) -> int:
        """Store one batch of readings; the ingestion hot path.

        Checks alert rules, then forwards the batch one-way to subscribed
        virtual channels and the aggregator (if any) — one-way because the
        derived streams are eventually consistent with the raw stream.
        """
        if self.state.get("dedup"):
            points = [p for p in points if p[0] > self._last_ts]
            if not points:
                return 0
        stored = self._store_points(points)
        if self.state.get("alert_rules"):
            self._check_alerts(points)
        for subscriber in self.state.get("subscribers", ()):
            self.context.actor("VirtualSensorChannel", subscriber).tell(
                "ingest_input", self.actor_id, points
            )
        aggregator_id = self.state.get("aggregator_id")
        if aggregator_id:
            self.context.actor("Aggregator", aggregator_id).tell("ingest", points)
        return stored

    def _check_alerts(self, points: list[tuple[float, float]]) -> None:
        sensor_type = SensorType(self.state.get("sensor_type", "extension"))
        last_alert_at = self.state.setdefault("last_alert_at", {})
        org = self.context.actor("Organization", self.state["org_id"])
        for rule_dict in self.state.get("alert_rules", ()):
            rule = AlertRule(
                rule_dict["rule_id"],
                low=rule_dict.get("low"),
                high=rule_dict.get("high"),
                channel_id=rule_dict.get("channel_id"),
                sensor_type=SensorType(rule_dict["sensor_type"])
                if rule_dict.get("sensor_type")
                else None,
                cooldown_seconds=rule_dict.get("cooldown_seconds", 60.0),
                message=rule_dict.get("message", ""),
            )
            if not rule.matches(self.actor_id, sensor_type):
                continue
            for timestamp, value in points:
                if not rule.violated_by(value):
                    continue
                last = last_alert_at.get(rule.rule_id)
                if last is not None and timestamp - last < rule.cooldown_seconds:
                    continue
                last_alert_at[rule.rule_id] = timestamp
                self.mark_dirty()
                org.tell(
                    "record_alert",
                    {
                        "rule_id": rule.rule_id,
                        "channel_id": self.actor_id,
                        "value": value,
                        "timestamp": timestamp,
                        "message": rule.message,
                    },
                )
                break  # at most one alert per rule per batch


class VirtualSensorChannel(_ChannelBase):
    """A derived stream computed from several physical channels (§4.2)."""

    async def configure(
        self,
        org_id: str,
        sensor_id: str,
        input_channel_ids: list[str],
        equation: dict | None = None,
        window_capacity: int = DEFAULT_WINDOW_CAPACITY,
        aggregator_id: str | None = None,
    ) -> dict:
        """Provision: inputs, the equation, and an optional aggregator."""
        if not input_channel_ids:
            raise ValueError("a virtual channel needs at least one input")
        self.state["org_id"] = org_id
        self.state["sensor_id"] = sensor_id
        self.state["input_channel_ids"] = list(input_channel_ids)
        self.state["equation"] = equation or {"kind": "sum"}
        equation_from_description(self.state["equation"])  # validate now
        self.state["window_capacity"] = window_capacity
        self.state["aggregator_id"] = aggregator_id
        self.mark_dirty()
        self.window = DataWindow(window_capacity)
        self._pending: dict[float, dict[str, float]] = {}
        return {"channel_id": self.actor_id}

    async def on_activate(self):
        await super().on_activate()
        self._pending = {}

    async def ingest_input(
        self, channel_id: str, points: list[tuple[float, float]]
    ) -> int:
        """Receive a batch from one input channel; derive when aligned.

        A derived point is produced for each timestamp once *all* input
        channels contributed a reading for it.
        """
        inputs = self.state.get("input_channel_ids", ())
        if channel_id not in inputs:
            return 0
        equation = equation_from_description(
            self.state.get("equation", {"kind": "sum"})
        )
        derived: list[tuple[float, float]] = []
        for timestamp, value in points:
            slot = self._pending.setdefault(timestamp, {})
            slot[channel_id] = value
            if len(slot) == len(inputs):
                derived.append((timestamp, equation.evaluate(slot)))
                del self._pending[timestamp]
        if len(self._pending) > MAX_PENDING_TIMESTAMPS:
            # Drop the oldest incomplete timestamps (an input went silent).
            for stale in sorted(self._pending)[: len(self._pending) // 2]:
                del self._pending[stale]
        if derived:
            derived.sort()
            self._store_points(derived)
            aggregator_id = self.state.get("aggregator_id")
            if aggregator_id:
                self.context.actor("Aggregator", aggregator_id).tell(
                    "ingest", derived
                )
        return len(derived)

    @actor_method(read_only=True)
    async def pending_count(self) -> int:
        """Timestamps still waiting for some input (diagnostic)."""
        return len(self._pending)
