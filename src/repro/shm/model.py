"""Value objects of the structural health monitoring (SHM) domain.

These are the paper's *non-actor* classes from the Figure 4 model: data
points, projects, users and alert rules.  They are plain serializable values
encapsulated inside actor state — never actors themselves (the paper's
granularity principle: only active entities needing detailed tracking
become actors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SensorType(enum.Enum):
    """Physical quantities the Great Belt Bridge deployment measures."""

    EXTENSION = "extension"
    INCLINATION = "inclination"
    TEMPERATURE = "temperature"
    WIND_SPEED = "wind_speed"
    WIND_DIRECTION = "wind_direction"
    ACCELERATION = "acceleration"


class Role(enum.Enum):
    """User roles from the context diagram (Figure 1)."""

    ENGINEER = "engineer"
    DATA_ANALYST = "data_analyst"
    MAINTENANCE = "maintenance"
    ADMIN = "admin"


@dataclass(frozen=True)
class DataPoint:
    """One sensor reading: timestamp (virtual seconds) and value."""

    timestamp: float
    value: float

    def as_tuple(self) -> tuple[float, float]:
        return (self.timestamp, self.value)


@dataclass
class Project:
    """A monitored construction (e.g. one bridge) owned by an organization."""

    project_id: str
    name: str
    structure_kind: str = "bridge"
    sensor_ids: list[str] = field(default_factory=list)
    active: bool = True


@dataclass
class User:
    """A platform user within one organization (tenant)."""

    user_id: str
    name: str
    role: Role = Role.ENGINEER
    subscribed_alerts: bool = True


@dataclass(frozen=True)
class AlertRule:
    """Threshold rule: fires when a reading leaves [low, high].

    ``channel_id=None`` applies the rule to every channel of the matching
    sensor type (the paper: "depending on individual sensors or sensor
    types").  ``cooldown_seconds`` suppresses repeat alerts.
    """

    rule_id: str
    low: float | None = None
    high: float | None = None
    channel_id: str | None = None
    sensor_type: SensorType | None = None
    cooldown_seconds: float = 60.0
    message: str = ""

    def matches(self, channel_id: str, sensor_type: SensorType) -> bool:
        """Whether this rule applies to the given channel."""
        if self.channel_id is not None and self.channel_id != channel_id:
            return False
        if self.sensor_type is not None and self.sensor_type != sensor_type:
            return False
        return True

    def violated_by(self, value: float) -> bool:
        """Whether a reading breaches the thresholds."""
        if self.low is not None and value < self.low:
            return True
        if self.high is not None and value > self.high:
            return True
        return False


@dataclass(frozen=True)
class Alert:
    """An alert raised by a channel and recorded by its organization."""

    rule_id: str
    channel_id: str
    value: float
    timestamp: float
    message: str = ""


@dataclass(frozen=True)
class SensorSpec:
    """Provisioning description of one sensor and its channels."""

    sensor_id: str
    sensor_type: SensorType = SensorType.EXTENSION
    physical_channels: int = 2
    has_virtual_channel: bool = False
    sampling_rate_hz: float = 10.0
    position: tuple[float, float] | None = None
