"""Time-series primitives: windows, accumulated change, running aggregates.

Sensor channel actors hold "a window of data points originating in the
respective data stream" (§4.2); aggregator actors maintain statistical
summaries per time bucket (§2.1 functional requirement 6).  Both are plain
non-actor value machinery, kept here so they can be unit- and
property-tested in isolation.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from .model import DataPoint


class DataWindow:
    """A bounded, time-ordered window of data points.

    Appends must be in non-decreasing timestamp order (streams are ordered
    at the source).  When capacity is exceeded, the oldest points are
    evicted and returned so callers can archive them.

    Internally the window keeps a parallel, always-sorted timestamp list,
    so :meth:`range` really is a binary search — O(log n + k) for k results
    — instead of rebuilding the timestamp list per query (the old O(n)
    behaviour, which made the paper's raw-data requests scale with window
    capacity rather than answer size).  Evictions advance a head offset and
    compact lazily, keeping appends amortized O(1).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self.capacity = capacity
        self._points: list[DataPoint] = []
        self._stamps: list[float] = []
        self._head = 0  # live data is _points[_head:]
        self.total_appended = 0

    def __len__(self) -> int:
        return len(self._points) - self._head

    def _compact(self) -> None:
        # Amortized O(1): shed the dead prefix once it outgrows the live
        # part, so each element is moved at most O(1) times on average.
        if self._head > self.capacity and self._head > len(self._points) // 2:
            del self._points[: self._head]
            del self._stamps[: self._head]
            self._head = 0

    #: Shared result for the (overwhelmingly common) no-eviction append.
    #: Callers must treat the returned list as read-only.
    _NO_EVICTIONS: list[DataPoint] = []

    def append(self, point: DataPoint) -> list[DataPoint]:
        """Add one point; returns any evicted (oldest) points.

        The returned list is owned by the window — callers must not mutate
        it (the empty case is a shared singleton to keep the ingestion hot
        path allocation-free).
        """
        stamps = self._stamps
        if stamps and point.timestamp < stamps[-1]:
            raise ValueError(
                f"out-of-order point: {point.timestamp} after "
                f"{stamps[-1]}"
            )
        self._points.append(point)
        stamps.append(point.timestamp)
        self.total_appended += 1
        if len(self._points) - self._head <= self.capacity:
            return self._NO_EVICTIONS
        evicted = []
        while len(self._points) - self._head > self.capacity:
            evicted.append(self._points[self._head])
            self._head += 1
        self._compact()
        return evicted

    def extend(self, points: list[DataPoint]) -> list[DataPoint]:
        """Append many points; returns everything evicted."""
        evicted: list[DataPoint] = []
        for point in points:
            evicted.extend(self.append(point))
        return evicted

    def append_many(self, points: list[DataPoint]) -> list[DataPoint]:
        """Bulk :meth:`append` in one frame (the ingestion hot path).

        Semantically identical to appending each point in turn — same order
        validation, same eviction result — but list ``extend`` replaces the
        per-point method calls.  The returned list is owned by the window;
        callers must not mutate it.
        """
        if not points:
            return self._NO_EVICTIONS
        stamps = self._stamps
        prev = stamps[-1] if stamps else None
        for point in points:
            timestamp = point.timestamp
            if prev is not None and timestamp < prev:
                raise ValueError(
                    f"out-of-order point: {timestamp} after {prev}"
                )
            prev = timestamp
        self._points.extend(points)
        stamps.extend(point.timestamp for point in points)
        self.total_appended += len(points)
        if len(self._points) - self._head <= self.capacity:
            return self._NO_EVICTIONS
        evicted = []
        while len(self._points) - self._head > self.capacity:
            evicted.append(self._points[self._head])
            self._head += 1
        self._compact()
        return evicted

    def latest(self) -> DataPoint | None:
        """The most recent point, or None when empty."""
        return self._points[-1] if len(self) else None

    def range(self, start: float, end: float) -> list[DataPoint]:
        """Points with start <= timestamp < end (binary searched)."""
        lo = bisect.bisect_left(self._stamps, start, self._head)
        hi = bisect.bisect_left(self._stamps, end, lo)
        return self._points[lo:hi]

    def tail(self, count: int) -> list[DataPoint]:
        """The most recent ``count`` points."""
        if count <= 0:
            return []
        return self._points[max(self._head, len(self._points) - count):]

    def all_points(self) -> list[DataPoint]:
        """Every buffered point (oldest first)."""
        return self._points[self._head:]


class AccumulatedChange:
    """Net and total movement of a data stream (functional requirement 4).

    ``net`` is the signed difference between the latest and the first-ever
    reading; ``total`` sums absolute deltas, gauging "how far elements have
    moved" even when they oscillate back.
    """

    def __init__(self) -> None:
        self.first_value: float | None = None
        self.last_value: float | None = None
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Feed one reading."""
        if self.last_value is not None:
            self.total += abs(value - self.last_value)
        else:
            self.first_value = value
        self.last_value = value
        self.count += 1

    def observe_pairs(self, points: list[tuple[float, float]]) -> None:
        """Feed a batch of ``(timestamp, value)`` pairs in one frame."""
        last = self.last_value
        total = self.total
        for _, value in points:
            if last is not None:
                total += abs(value - last)
            else:
                self.first_value = value
            last = value
        self.last_value = last
        self.total = total
        self.count += len(points)

    @property
    def net(self) -> float:
        """Signed change since the first reading (0.0 before any data)."""
        if self.first_value is None or self.last_value is None:
            return 0.0
        return self.last_value - self.first_value

    def snapshot(self) -> dict:
        """A serializable summary."""
        return {
            "net": self.net,
            "total": self.total,
            "count": self.count,
            "first": self.first_value,
            "last": self.last_value,
        }


@dataclass
class AggregateStats:
    """Streaming count/min/max/mean/variance (Welford's algorithm).

    Welford keeps the variance numerically stable for long streams and
    makes two summaries mergeable — which is what lets hourly aggregates
    feed daily ones without reprocessing raw data.
    """

    count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf
    mean: float = 0.0
    m2: float = 0.0

    def observe(self, value: float) -> None:
        """Feed one reading."""
        self.count += 1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "AggregateStats") -> "AggregateStats":
        """Combine two summaries (Chan et al. parallel variance)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.mean = other.mean
            self.m2 = other.m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / total
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def snapshot(self) -> dict:
        """A serializable summary (None min/max when empty)."""
        return {
            "count": self.count,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "mean": None if self.count == 0 else self.mean,
            "stddev": None if self.count == 0 else self.stddev,
        }


class BucketedAggregates:
    """Per-time-bucket aggregate stats (e.g. hourly or daily).

    ``max_buckets`` bounds retention: when a new bucket would exceed the
    cap, the oldest populated bucket is evicted (``evicted_buckets``
    counts them).  ``None`` retains everything — the pre-cap behaviour,
    which on long runs grows without bound.

    Bucket indexes are kept in an always-sorted list, so :meth:`series`
    binary-searches to exactly the requested range — O(log n + k) per
    dashboard read — instead of scanning every populated bucket.
    """

    def __init__(
        self, bucket_seconds: float, max_buckets: int | None = None
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket size must be positive")
        if max_buckets is not None and max_buckets < 1:
            raise ValueError("max_buckets must be >= 1 (or None)")
        self.bucket_seconds = bucket_seconds
        self.max_buckets = max_buckets
        self.evicted_buckets = 0
        self._buckets: dict[int, AggregateStats] = {}
        self._order: list[int] = []  # populated bucket indexes, sorted

    def bucket_of(self, timestamp: float) -> int:
        """The bucket index a timestamp falls into."""
        return int(timestamp // self.bucket_seconds)

    def _ensure(self, bucket: int) -> AggregateStats:
        stats = self._buckets.get(bucket)
        if stats is None:
            stats = AggregateStats()
            self._buckets[bucket] = stats
            if not self._order or bucket > self._order[-1]:
                self._order.append(bucket)
            else:
                bisect.insort(self._order, bucket)
            if self.max_buckets is not None and len(self._order) > self.max_buckets:
                oldest = self._order.pop(0)
                del self._buckets[oldest]
                self.evicted_buckets += 1
        return stats

    def observe(self, point: DataPoint) -> int:
        """Feed one point; returns the bucket index it landed in.

        A point older than the retention horizon (its bucket would be
        evicted immediately under ``max_buckets``) is dropped.
        """
        bucket = self.bucket_of(point.timestamp)
        self._ensure(bucket).observe(point.value)
        return bucket

    def merge_bucket(self, bucket: int, stats: AggregateStats) -> None:
        """Merge a pre-aggregated summary into a bucket (hour → day)."""
        self._ensure(bucket).merge(stats)

    def stats_for(self, bucket: int) -> AggregateStats | None:
        """The stats of one bucket, or None."""
        return self._buckets.get(bucket)

    def pop_bucket(self, bucket: int) -> AggregateStats | None:
        """Remove and return one bucket's stats (None when absent)."""
        stats = self._buckets.pop(bucket, None)
        if stats is not None:
            del self._order[bisect.bisect_left(self._order, bucket)]
        return stats

    def buckets(self) -> list[int]:
        """All populated bucket indexes, sorted."""
        return list(self._order)

    def series(self, start: float, end: float) -> list[tuple[int, dict]]:
        """(bucket, stats snapshot) pairs overlapping [start, end)."""
        if end <= start:
            return []
        first = self.bucket_of(start)
        last = self.bucket_of(end - 1e-9)
        lo = bisect.bisect_left(self._order, first)
        hi = bisect.bisect_right(self._order, last, lo)
        return [
            (bucket, self._buckets[bucket].snapshot())
            for bucket in self._order[lo:hi]
        ]
