"""The Structural Health Monitoring Data Platform (SHMDP) facade.

This is the deployable surface of case study 1: it provisions tenants
exactly as the paper's evaluation does ("For every 100 sensors, a new
organization was constructed with a single user and a single project ...
these 100 sensors represent 210 sensor channels in total"), and exposes the
three request types the benchmark issues: data insertion, organization
live-data queries, and raw time-range queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aodb.database import AodbDatabase
from ..storage.archive import ArchiveLog
from .aggregator import Aggregator
from .channel import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_WINDOW_CAPACITY,
    PhysicalSensorChannel,
    VirtualSensorChannel,
)
from .model import SensorType
from .organization import Organization
from .sensor import Sensor

ACTOR_CLASSES = (
    Organization,
    Sensor,
    PhysicalSensorChannel,
    VirtualSensorChannel,
    Aggregator,
)


@dataclass
class ProvisionReport:
    """What a provisioning run created (matches the paper's §6.1 math)."""

    organizations: int = 0
    users: int = 0
    projects: int = 0
    sensors: int = 0
    physical_channels: int = 0
    virtual_channels: int = 0
    aggregators: int = 0
    sensor_ids: list[str] = field(default_factory=list)
    org_ids: list[str] = field(default_factory=list)

    @property
    def total_channels(self) -> int:
        return self.physical_channels + self.virtual_channels


def org_id_for(index: int) -> str:
    return f"org-{index}"

def sensor_id_for(org_id: str, index: int) -> str:
    return f"{org_id}/s-{index}"

def channel_id_for(sensor_id: str, index: int) -> str:
    return f"{sensor_id}/c-{index}"

def virtual_channel_id_for(sensor_id: str) -> str:
    return f"{sensor_id}/vc"

def aggregator_id_for(channel_id: str, level: str) -> str:
    return f"{channel_id}/{level}"


class ShmPlatform:
    """End-to-end SHM data platform over an actor-oriented database."""

    def __init__(
        self,
        database: AodbDatabase,
        window_capacity: int = DEFAULT_WINDOW_CAPACITY,
        enable_aggregation: bool = True,
        archive: ArchiveLog | None = None,
        dedup_ingest: bool = False,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.db = database
        self.runtime = database.runtime
        self.window_capacity = window_capacity
        # Points per sealed compressed block in channel windows (0 = raw).
        self.block_size = block_size
        self.enable_aggregation = enable_aggregation
        # Idempotent ingestion: sensors keep per-channel timestamp
        # watermarks and channels drop non-monotonic readings, so duplicated
        # deliveries (chaos duplication, at-least-once retries) do not
        # inflate stored counts.
        self.dedup_ingest = dedup_ingest
        self.archive = archive if archive is not None else ArchiveLog()
        # Channels archive evicted window points through this hook.
        self.runtime.archive = self.archive
        for actor_class in ACTOR_CLASSES:
            self.db.register_actor(actor_class)

    # -- provisioning ----------------------------------------------------------

    async def create_organization(
        self, org_id: str, name: str, admin_id: str = "admin", admin_name: str = "Admin"
    ) -> dict:
        """Create a tenant with an admin user and no projects yet."""
        org = self.runtime.ref("Organization", org_id)
        summary = await org.setup(name)
        await org.add_user(admin_id, admin_name, role="admin")
        return summary

    async def add_sensor(
        self,
        org_id: str,
        project_id: str,
        sensor_id: str,
        sensor_type: SensorType = SensorType.EXTENSION,
        physical_channels: int = 2,
        with_virtual_channel: bool = False,
        alert_rules: list[dict] | None = None,
        position: tuple[float, float] | None = None,
    ) -> dict:
        """Provision one sensor: its channel actors, aggregators, registry."""
        channel_ids = [
            channel_id_for(sensor_id, index) for index in range(physical_channels)
        ]
        virtual_id = virtual_channel_id_for(sensor_id) if with_virtual_channel else None
        channel_configs = []
        for channel_id in channel_ids:
            config = {
                "channel_id": channel_id,
                "window_capacity": self.window_capacity,
                "alert_rules": list(alert_rules or ()),
                "subscribers": [virtual_id] if virtual_id else [],
                "dedup": self.dedup_ingest,
                "block_size": self.block_size,
            }
            if self.enable_aggregation:
                config["aggregator_id"] = aggregator_id_for(channel_id, "hour")
            channel_configs.append(config)
        virtual_config = None
        if virtual_id:
            virtual_config = {
                "channel_id": virtual_id,
                "input_channel_ids": channel_ids,
                "equation": {"kind": "sum"},
                "window_capacity": self.window_capacity,
                "block_size": self.block_size,
            }
            if self.enable_aggregation:
                virtual_config["aggregator_id"] = aggregator_id_for(virtual_id, "hour")
        sensor = self.runtime.ref("Sensor", sensor_id)
        summary = await sensor.configure(
            org_id,
            sensor_type.value,
            channel_configs,
            virtual_channel_config=virtual_config,
            position=position,
            dedup_ingest=self.dedup_ingest,
        )
        if self.enable_aggregation:
            all_channel_ids = channel_ids + ([virtual_id] if virtual_id else [])
            for channel_id in all_channel_ids:
                hour_id = aggregator_id_for(channel_id, "hour")
                day_id = aggregator_id_for(channel_id, "day")
                await self.runtime.ref("Aggregator", hour_id).configure(
                    channel_id, level="hour", downstream_id=day_id
                )
                await self.runtime.ref("Aggregator", day_id).configure(
                    channel_id, level="day"
                )
        await self.runtime.ref("Organization", org_id).register_sensor(
            project_id,
            sensor_id,
            sensor_type.value,
            channel_ids,
            virtual_channel_ids=[virtual_id] if virtual_id else [],
        )
        return summary

    async def provision(
        self,
        total_sensors: int,
        sensors_per_org: int = 100,
        virtual_every: int = 10,
        sensor_type: SensorType = SensorType.EXTENSION,
        alert_rules: list[dict] | None = None,
    ) -> ProvisionReport:
        """Build the paper's evaluation structure for ``total_sensors``.

        One organization (with a single user and project) per
        ``sensors_per_org`` sensors; two physical channels per sensor; every
        ``virtual_every``-th sensor additionally gets a virtual summation
        channel.
        """
        if total_sensors < 1:
            raise ValueError("need at least one sensor")
        report = ProvisionReport()
        for sensor_index in range(total_sensors):
            org_index = sensor_index // sensors_per_org
            org_id = org_id_for(org_index)
            if sensor_index % sensors_per_org == 0:
                await self.create_organization(org_id, f"Organization {org_index}")
                project_id = f"{org_id}/project-0"
                await self.runtime.ref("Organization", org_id).add_project(
                    project_id, f"Structure {org_index}"
                )
                report.organizations += 1
                report.users += 1
                report.projects += 1
                report.org_ids.append(org_id)
            local_index = sensor_index % sensors_per_org
            sensor_id = sensor_id_for(org_id, local_index)
            with_virtual = bool(virtual_every) and (local_index % virtual_every) == 0
            await self.add_sensor(
                org_id,
                f"{org_id}/project-0",
                sensor_id,
                sensor_type=sensor_type,
                physical_channels=2,
                with_virtual_channel=with_virtual,
                alert_rules=alert_rules,
            )
            report.sensors += 1
            report.physical_channels += 2
            if with_virtual:
                report.virtual_channels += 1
            if self.enable_aggregation:
                report.aggregators += 2 * (3 if with_virtual else 2)
            report.sensor_ids.append(sensor_id)
        return report

    # -- request entry points (the benchmark's three request types) -------------

    async def ingest(
        self,
        sensor_id: str,
        batches: dict[str, list[tuple[float, float]]],
        trace=None,
    ) -> int:
        """Data-insertion request: one sensor's batch for each channel.

        ``trace`` optionally parents the dispatch under an existing span
        (the ingest gateway passes its per-envelope span here).
        """
        return await self.runtime.ref("Sensor", sensor_id, trace=trace).ingest(
            batches
        )

    async def live_data(
        self, org_id: str, user_id: str | None = None, trace=None
    ) -> dict:
        """Live-data request: latest value of every channel of a tenant."""
        return await self.runtime.ref("Organization", org_id, trace=trace).live_data(
            user_id=user_id
        )

    async def raw_range(
        self,
        channel_id: str,
        start: float,
        end: float,
        virtual: bool = False,
        trace=None,
    ) -> list[tuple[float, float]]:
        """Raw-data request: a time range from one sensor channel actor."""
        type_name = "VirtualSensorChannel" if virtual else "PhysicalSensorChannel"
        return await self.runtime.ref(type_name, channel_id, trace=trace).query_range(
            start, end
        )

    # -- additional online services ------------------------------------------------

    async def aggregates(
        self, channel_id: str, level: str, start: float, end: float
    ) -> list[tuple[int, dict]]:
        """Statistical aggregate series for plots (functional requirement 6)."""
        aggregator_id = aggregator_id_for(channel_id, level)
        return await self.runtime.ref("Aggregator", aggregator_id).series(start, end)

    async def range_aggregate(
        self, channel_id: str, start: float, end: float, virtual: bool = False
    ) -> dict:
        """Count/min/max/sum/mean over a channel time range.

        Served by the channel's tiered window: sealed blocks fully inside
        the range answer from their summaries without decompression.
        """
        type_name = "VirtualSensorChannel" if virtual else "PhysicalSensorChannel"
        return await self.runtime.ref(type_name, channel_id).aggregate_range(
            start, end
        )

    async def storage_stats(self, sensor_id: str) -> dict:
        """Live-memory accounting across one sensor's channel windows."""
        return await self.runtime.ref("Sensor", sensor_id).storage_stats()

    async def accumulated_change(self, channel_id: str, virtual: bool = False) -> dict:
        """Accumulated movement of one stream (functional requirement 4)."""
        type_name = "VirtualSensorChannel" if virtual else "PhysicalSensorChannel"
        return await self.runtime.ref(type_name, channel_id).accumulated_change()

    async def alerts(self, org_id: str, limit: int = 100) -> list:
        """Recent alerts of one organization."""
        return await self.runtime.ref("Organization", org_id).alerts(limit)

    async def organization_summary(self, org_id: str) -> dict:
        """Structural summary of one tenant."""
        return await self.runtime.ref("Organization", org_id).describe()
