"""Aggregator actors: statistical summaries per time bucket.

The model (§4.2) conceptualizes aggregations as active entities "since
there can be parallelism in computing these aggregations across levels of
detail (e.g., hourly aggregates serving as input to daily aggregates)".
One Aggregator actor summarizes one channel at one level; when a bucket
closes it forwards the bucket's summary one-way to the next level.
"""

from __future__ import annotations

from ..runtime.actor import Actor, actor_method
from ..runtime.persistence import WritePolicy
from .model import DataPoint
from .timeseries import AggregateStats, BucketedAggregates

LEVEL_SECONDS = {
    "minute": 60.0,
    "hour": 3600.0,
    "day": 86400.0,
    "month": 2592000.0,
}


def _stats_to_dict(stats: AggregateStats) -> dict:
    return {
        "count": stats.count,
        "min": stats.minimum,
        "max": stats.maximum,
        "mean": stats.mean,
        "m2": stats.m2,
    }


def _stats_from_dict(payload: dict) -> AggregateStats:
    return AggregateStats(
        count=payload["count"],
        minimum=payload["min"],
        maximum=payload["max"],
        mean=payload["mean"],
        m2=payload["m2"],
    )


class Aggregator(Actor):
    """Per-channel, per-level statistical aggregation."""

    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE
    placement = "prefer_local"

    def __init__(self, context):
        super().__init__(context)
        self.buckets = BucketedAggregates(LEVEL_SECONDS["hour"])
        # Contributions not yet forwarded downstream.  Welford summaries
        # cannot be *subtracted*, so "what did I already send?" is tracked
        # by accumulating un-forwarded deltas separately; forwarding pops
        # from here, which makes flush-then-close send each reading exactly
        # once instead of re-sending the whole bucket.
        self._pending = BucketedAggregates(LEVEL_SECONDS["hour"])
        self._last_open_bucket: int | None = None

    async def on_activate(self):
        level = self.state.get("level", "hour")
        bucket_seconds = self.state.get("bucket_seconds", LEVEL_SECONDS[level])
        max_buckets = self.state.get("max_buckets")
        self.buckets = BucketedAggregates(bucket_seconds, max_buckets=max_buckets)
        for bucket_str, payload in self.state.get("buckets", {}).items():
            self.buckets.merge_bucket(int(bucket_str), _stats_from_dict(payload))
        self._pending = BucketedAggregates(bucket_seconds)
        for bucket_str, payload in self.state.get("pending_buckets", {}).items():
            self._pending.merge_bucket(int(bucket_str), _stats_from_dict(payload))
        self._last_open_bucket = self.state.get("last_open_bucket")

    async def on_deactivate(self):
        self.state["buckets"] = {
            str(bucket): _stats_to_dict(self.buckets.stats_for(bucket))
            for bucket in self.buckets.buckets()
        }
        self.state["pending_buckets"] = {
            str(bucket): _stats_to_dict(self._pending.stats_for(bucket))
            for bucket in self._pending.buckets()
        }
        self.state["last_open_bucket"] = self._last_open_bucket
        self.mark_dirty()

    async def configure(
        self,
        channel_id: str,
        level: str = "hour",
        downstream_id: str | None = None,
        bucket_seconds: float | None = None,
        max_buckets: int | None = None,
    ) -> dict:
        """Provision: which channel, what bucket size, where rollups go.

        ``max_buckets`` bounds retention — the oldest bucket is evicted
        when a new one would exceed the cap (None keeps everything).
        """
        if level not in LEVEL_SECONDS and bucket_seconds is None:
            raise ValueError(f"unknown level {level!r} and no bucket_seconds")
        self.state["channel_id"] = channel_id
        self.state["level"] = level
        self.state["bucket_seconds"] = bucket_seconds or LEVEL_SECONDS[level]
        self.state["downstream_id"] = downstream_id
        self.state["max_buckets"] = max_buckets
        self.mark_dirty()
        self.buckets = BucketedAggregates(
            self.state["bucket_seconds"], max_buckets=max_buckets
        )
        self._pending = BucketedAggregates(self.state["bucket_seconds"])
        self._last_open_bucket = None
        return {"aggregator_id": self.actor_id, "level": level}

    @property
    def _downstream_id(self) -> str | None:
        return self.state.get("downstream_id")

    async def ingest(self, points: list[tuple[float, float]]) -> int:
        """Fold a batch of raw readings into the current buckets.

        When the open bucket advances, the closed bucket's un-forwarded
        contributions are sent to the downstream aggregator (hour → day),
        giving the multi-level parallelism the paper's model calls for.
        """
        track = self._downstream_id is not None
        for timestamp, value in points:
            point = DataPoint(timestamp, value)
            bucket = self.buckets.observe(point)
            if track:
                self._pending.observe(point)
            if self._last_open_bucket is None:
                self._last_open_bucket = bucket
            elif bucket > self._last_open_bucket:
                self._forward_closed(self._last_open_bucket)
                self._last_open_bucket = bucket
        return len(points)

    def _forward_closed(self, bucket: int) -> None:
        """Send a bucket's not-yet-forwarded delta downstream (once)."""
        downstream_id = self._downstream_id
        if not downstream_id:
            return
        stats = self._pending.pop_bucket(bucket)
        if stats is None or stats.count == 0:
            # Everything in this bucket was already forwarded (an earlier
            # flush), or the bucket only ever existed downstream-free.
            return
        bucket_start = bucket * self.state["bucket_seconds"]
        self.context.actor("Aggregator", downstream_id).tell(
            "merge_summary", bucket_start, _stats_to_dict(stats)
        )

    async def merge_summary(self, bucket_start: float, payload: dict) -> None:
        """Receive a closed lower-level bucket and fold it into ours."""
        bucket = self.buckets.bucket_of(bucket_start)
        stats = _stats_from_dict(payload)
        self.buckets.merge_bucket(bucket, stats)
        if self._downstream_id is not None:
            # Multi-level chains: what arrives from below is itself a delta
            # this level has not forwarded yet.
            self._pending.merge_bucket(bucket, stats)

    async def flush(self) -> bool:
        """Forward every pending (un-forwarded) contribution downstream.

        Safe to call repeatedly and mid-bucket: only deltas accumulated
        since the previous forward are sent, so a flush followed by the
        bucket closing (or another flush) never double-counts.
        """
        forwarded = False
        for bucket in self._pending.buckets():
            if self._pending.stats_for(bucket).count > 0:
                self._forward_closed(bucket)
                forwarded = True
        return forwarded

    # -- queries ------------------------------------------------------------------

    @actor_method(read_only=True)
    async def series(self, start: float, end: float) -> list[tuple[int, dict]]:
        """Bucket summaries overlapping [start, end) — the plot query."""
        return self.buckets.series(start, end)

    @actor_method(read_only=True)
    async def bucket_stats(self, timestamp: float) -> dict | None:
        """Summary of the bucket containing ``timestamp``."""
        stats = self.buckets.stats_for(self.buckets.bucket_of(timestamp))
        return None if stats is None else stats.snapshot()

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Aggregator metadata and bucket count."""
        return {
            "aggregator_id": self.actor_id,
            "channel_id": self.state.get("channel_id"),
            "level": self.state.get("level"),
            "bucket_seconds": self.state.get("bucket_seconds"),
            "downstream_id": self.state.get("downstream_id"),
            "buckets": len(self.buckets.buckets()),
        }
