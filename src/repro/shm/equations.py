"""Equations for virtual sensor channels.

A virtual sensor channel "represents a computation over potentially multiple
physical channels" (§4.2) — e.g. the benchmark's virtual channel is "a
summation of the two other sensor channels on the corresponding sensor".
An :class:`Equation` combines one aligned reading from each input channel
into one derived value.

Equations are serializable values (stored in actor state), so they are
described declaratively and compiled, not passed as closures.
"""

from __future__ import annotations

import ast
import math
import operator
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import PlatformError


class EquationError(PlatformError):
    """The equation is malformed or cannot be evaluated."""


class Equation:
    """Base: combine one value per input channel into a derived value."""

    def evaluate(self, inputs: Mapping[str, float]) -> float:
        """Compute the derived value from per-channel readings."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Serializable description (kind + parameters)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SumEquation(Equation):
    """Sum of all input readings — the benchmark's virtual channel."""

    def evaluate(self, inputs: Mapping[str, float]) -> float:
        return sum(inputs.values())

    def describe(self) -> dict:
        return {"kind": "sum"}


@dataclass(frozen=True)
class MeanEquation(Equation):
    """Arithmetic mean of the input readings."""

    def evaluate(self, inputs: Mapping[str, float]) -> float:
        if not inputs:
            raise EquationError("mean of zero inputs")
        return sum(inputs.values()) / len(inputs)

    def describe(self) -> dict:
        return {"kind": "mean"}


@dataclass(frozen=True)
class WeightedEquation(Equation):
    """Weighted linear combination keyed by channel id."""

    weights: tuple[tuple[str, float], ...] = ()

    def evaluate(self, inputs: Mapping[str, float]) -> float:
        total = 0.0
        for channel_id, weight in self.weights:
            if channel_id not in inputs:
                raise EquationError(f"missing input channel {channel_id!r}")
            total += weight * inputs[channel_id]
        return total

    def describe(self) -> dict:
        return {"kind": "weighted", "weights": dict(self.weights)}


_ALLOWED_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
    ast.Mod: operator.mod,
}
_ALLOWED_UNARYOPS = {ast.UAdd: operator.pos, ast.USub: operator.neg}
_ALLOWED_FUNCS = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "log": math.log,
    "exp": math.exp,
    "atan2": math.atan2,
    "hypot": math.hypot,
}


@dataclass(frozen=True)
class ExpressionEquation(Equation):
    """A restricted arithmetic expression over named channel variables.

    Example: ``ExpressionEquation("hypot(ax, ay)", {"ax": "s1/c0", "ay":
    "s1/c1"})``.  Only arithmetic operators, numeric literals and a small
    whitelist of math functions are allowed — the expression is parsed with
    :mod:`ast` and interpreted, never ``eval``-ed.
    """

    expression: str
    variables: tuple[tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        # Validate at construction so bad equations fail at provisioning
        # time, not at ingest time.
        tree = self._parse()
        names = {
            node.id
            for node in ast.walk(tree)
            if isinstance(node, ast.Name) and node.id not in _ALLOWED_FUNCS
        }
        declared = {name for name, _cid in self.variables}
        missing = names - declared
        if missing:
            raise EquationError(
                f"expression uses undeclared variables: {sorted(missing)}"
            )

    def _parse(self) -> ast.Expression:
        try:
            tree = ast.parse(self.expression, mode="eval")
        except SyntaxError as exc:
            raise EquationError(f"cannot parse {self.expression!r}: {exc}") from exc
        for node in ast.walk(tree):
            if isinstance(node, (ast.Expression, ast.Constant, ast.Name, ast.Load)):
                continue
            if isinstance(node, ast.BinOp) and type(node.op) in _ALLOWED_BINOPS:
                continue
            if isinstance(node, ast.UnaryOp) and type(node.op) in _ALLOWED_UNARYOPS:
                continue
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ALLOWED_FUNCS
                    and not node.keywords
                ):
                    continue
                raise EquationError(f"disallowed call in {self.expression!r}")
            if isinstance(node, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow,
                                 ast.Mod, ast.UAdd, ast.USub)):
                continue
            raise EquationError(
                f"disallowed syntax {type(node).__name__} in {self.expression!r}"
            )
        return tree

    def evaluate(self, inputs: Mapping[str, float]) -> float:
        bindings = {}
        for name, channel_id in self.variables:
            if channel_id not in inputs:
                raise EquationError(f"missing input channel {channel_id!r}")
            bindings[name] = inputs[channel_id]
        return self._eval_node(self._parse().body, bindings)

    def _eval_node(self, node: ast.AST, bindings: dict[str, float]) -> float:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)):
                return float(node.value)
            raise EquationError(f"non-numeric literal {node.value!r}")
        if isinstance(node, ast.Name):
            if node.id in bindings:
                return bindings[node.id]
            raise EquationError(f"unbound variable {node.id!r}")
        if isinstance(node, ast.BinOp):
            left = self._eval_node(node.left, bindings)
            right = self._eval_node(node.right, bindings)
            return _ALLOWED_BINOPS[type(node.op)](left, right)
        if isinstance(node, ast.UnaryOp):
            return _ALLOWED_UNARYOPS[type(node.op)](
                self._eval_node(node.operand, bindings)
            )
        if isinstance(node, ast.Call):
            func = _ALLOWED_FUNCS[node.func.id]  # validated at parse
            args = [self._eval_node(arg, bindings) for arg in node.args]
            return float(func(*args))
        raise EquationError(f"unexpected node {type(node).__name__}")

    def describe(self) -> dict:
        return {
            "kind": "expression",
            "expression": self.expression,
            "variables": dict(self.variables),
        }


def equation_from_description(description: dict) -> Equation:
    """Rebuild an equation from its :meth:`Equation.describe` output."""
    kind = description.get("kind")
    if kind == "sum":
        return SumEquation()
    if kind == "mean":
        return MeanEquation()
    if kind == "weighted":
        return WeightedEquation(tuple(description["weights"].items()))
    if kind == "expression":
        return ExpressionEquation(
            description["expression"], tuple(description["variables"].items())
        )
    raise EquationError(f"unknown equation kind {kind!r}")
