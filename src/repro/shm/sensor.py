"""The Sensor actor.

A sensor is an active entity (it can be relocated and emits multiple data
streams), so it is its own actor (§4.2).  The benchmarking tool "simulates
sensors by tasks that each call a sensor grain and insert 10 data points"
per physical channel per second; the grain disaggregates the batch to its
channel actors, which (under prefer-local placement, §5) live on the same
silo, so the fan-out is loopback-cheap.
"""

from __future__ import annotations

from ..errors import UnknownEntityError
from ..runtime.actor import Actor, actor_method


class Sensor(Actor):
    """One physical sensor with one or more channels."""

    durable = True
    placement = "pinned"

    async def configure(
        self,
        org_id: str,
        sensor_type: str,
        channel_configs: list[dict],
        virtual_channel_config: dict | None = None,
        position: tuple[float, float] | None = None,
        dedup_ingest: bool = False,
    ) -> dict:
        """Provision this sensor and configure its channel actors.

        ``channel_configs`` is a list of dicts with at least ``channel_id``;
        remaining keys are forwarded to
        :meth:`~repro.shm.channel.PhysicalSensorChannel.configure`.  Routing
        channel configuration through the sensor matters: with prefer-local
        placement the channels activate on the sensor's silo.

        With ``dedup_ingest`` the sensor keeps a per-channel timestamp
        watermark and drops already-seen readings before fanning out, so a
        duplicated insert request is acknowledged without re-storing.
        """
        self.state["org_id"] = org_id
        self.state["sensor_type"] = sensor_type
        self.state["position"] = position
        self.state["dedup_ingest"] = dedup_ingest
        self.state["channel_ids"] = [c["channel_id"] for c in channel_configs]
        self.state["virtual_channel_id"] = (
            virtual_channel_config["channel_id"] if virtual_channel_config else None
        )
        self.mark_dirty()
        for config in channel_configs:
            config = dict(config)
            channel_id = config.pop("channel_id")
            channel = self.context.actor("PhysicalSensorChannel", channel_id)
            await channel.ask(
                "configure",
                org_id=org_id,
                sensor_id=self.actor_id,
                sensor_type=sensor_type,
                **config,
            )
        if virtual_channel_config is not None:
            config = dict(virtual_channel_config)
            channel_id = config.pop("channel_id")
            virtual = self.context.actor("VirtualSensorChannel", channel_id)
            await virtual.ask(
                "configure",
                org_id=org_id,
                sensor_id=self.actor_id,
                **config,
            )
        return {
            "sensor_id": self.actor_id,
            "channels": list(self.state["channel_ids"]),
            "virtual_channel": self.state["virtual_channel_id"],
        }

    async def ingest(self, batches: dict[str, list[tuple[float, float]]]) -> int:
        """Insert one request's data points, per channel.

        ``batches`` maps channel id to a list of ``(timestamp, value)``
        pairs.  The sensor forwards each batch to its channel actor and
        acknowledges only when all channels stored theirs — so the caller's
        measured latency covers the full ingestion pipeline, as in the
        paper's benchmark.
        """
        known = self.state.get("channel_ids", ())
        for channel_id in batches:
            if channel_id not in known:
                unknown = sorted(set(batches) - set(known))
                raise UnknownEntityError(
                    f"sensor {self.actor_id}: unknown channels {unknown}"
                )
        if self.state.get("dedup_ingest"):
            watermarks = self.state.setdefault("ingest_watermark", {})
            fresh_batches: dict[str, list[tuple[float, float]]] = {}
            for channel_id, points in batches.items():
                mark = watermarks.get(channel_id)
                fresh = [
                    p for p in points if mark is None or p[0] > mark
                ]
                if fresh:
                    watermarks[channel_id] = max(p[0] for p in fresh)
                    fresh_batches[channel_id] = fresh
            self.mark_dirty()
            batches = fresh_batches
            if not batches:
                return 0
        futures = [
            self.context.actor("PhysicalSensorChannel", channel_id).ask(
                "ingest", points
            )
            for channel_id, points in batches.items()
        ]
        stored = await self.context.runtime.scheduler.gather(futures)
        return sum(stored)

    async def relocate(self, position: tuple[float, float]) -> tuple:
        """Move the sensor (sensors are relocatable active entities)."""
        self.state["position"] = position
        self.mark_dirty()
        return tuple(position)

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Sensor metadata."""
        return {
            "sensor_id": self.actor_id,
            "org_id": self.state.get("org_id"),
            "sensor_type": self.state.get("sensor_type"),
            "position": self.state.get("position"),
            "channel_ids": list(self.state.get("channel_ids", ())),
            "virtual_channel_id": self.state.get("virtual_channel_id"),
        }
