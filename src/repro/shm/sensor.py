"""The Sensor actor.

A sensor is an active entity (it can be relocated and emits multiple data
streams), so it is its own actor (§4.2).  The benchmarking tool "simulates
sensors by tasks that each call a sensor grain and insert 10 data points"
per physical channel per second; the grain disaggregates the batch to its
channel actors, which (under prefer-local placement, §5) live on the same
silo, so the fan-out is loopback-cheap.
"""

from __future__ import annotations

import math

from ..errors import UnknownEntityError
from ..runtime.actor import Actor, actor_method


class Sensor(Actor):
    """One physical sensor with one or more channels."""

    durable = True
    placement = "pinned"

    async def configure(
        self,
        org_id: str,
        sensor_type: str,
        channel_configs: list[dict],
        virtual_channel_config: dict | None = None,
        position: tuple[float, float] | None = None,
        dedup_ingest: bool = False,
    ) -> dict:
        """Provision this sensor and configure its channel actors.

        ``channel_configs`` is a list of dicts with at least ``channel_id``;
        remaining keys are forwarded to
        :meth:`~repro.shm.channel.PhysicalSensorChannel.configure`.  Routing
        channel configuration through the sensor matters: with prefer-local
        placement the channels activate on the sensor's silo.

        With ``dedup_ingest`` the sensor keeps a per-channel timestamp
        watermark and drops already-seen readings before fanning out, so a
        duplicated insert request is acknowledged without re-storing.
        """
        self.state["org_id"] = org_id
        self.state["sensor_type"] = sensor_type
        self.state["position"] = position
        self.state["dedup_ingest"] = dedup_ingest
        self.state["channel_ids"] = [c["channel_id"] for c in channel_configs]
        self.state["virtual_channel_id"] = (
            virtual_channel_config["channel_id"] if virtual_channel_config else None
        )
        self.mark_dirty()
        for config in channel_configs:
            config = dict(config)
            channel_id = config.pop("channel_id")
            channel = self.context.actor("PhysicalSensorChannel", channel_id)
            await channel.ask(
                "configure",
                org_id=org_id,
                sensor_id=self.actor_id,
                sensor_type=sensor_type,
                **config,
            )
        if virtual_channel_config is not None:
            config = dict(virtual_channel_config)
            channel_id = config.pop("channel_id")
            virtual = self.context.actor("VirtualSensorChannel", channel_id)
            await virtual.ask(
                "configure",
                org_id=org_id,
                sensor_id=self.actor_id,
                **config,
            )
        return {
            "sensor_id": self.actor_id,
            "channels": list(self.state["channel_ids"]),
            "virtual_channel": self.state["virtual_channel_id"],
        }

    async def ingest(self, batches: dict[str, list[tuple[float, float]]]) -> int:
        """Insert one request's data points, per channel.

        ``batches`` maps channel id to a list of ``(timestamp, value)``
        pairs.  The sensor forwards each batch to its channel actor and
        acknowledges only when all channels stored theirs — so the caller's
        measured latency covers the full ingestion pipeline, as in the
        paper's benchmark.
        """
        known = self.state.get("channel_ids", ())
        for channel_id in batches:
            if channel_id not in known:
                unknown = sorted(set(batches) - set(known))
                raise UnknownEntityError(
                    f"sensor {self.actor_id}: unknown channels {unknown}"
                )
        if self.state.get("dedup_ingest"):
            watermarks = self.state.setdefault("ingest_watermark", {})
            fresh_batches: dict[str, list[tuple[float, float]]] = {}
            for channel_id, points in batches.items():
                mark = watermarks.get(channel_id)
                fresh = [
                    p for p in points if mark is None or p[0] > mark
                ]
                if fresh:
                    watermarks[channel_id] = max(p[0] for p in fresh)
                    fresh_batches[channel_id] = fresh
            self.mark_dirty()
            batches = fresh_batches
            if not batches:
                return 0
        futures = [
            self.context.actor("PhysicalSensorChannel", channel_id).ask(
                "ingest", points
            )
            for channel_id, points in batches.items()
        ]
        # Incremental view maintenance rides the same ack: fold the fresh
        # points into this sensor's running stats (the pull fallback reads
        # them via view_sample) and, when standing queries are registered
        # over sensors, emit deltas whose fold ack gates ours — so an
        # acked insert is visible in every registered view exactly once.
        stats = self.state.get("view_stats")
        if stats is None:
            stats = self.state["view_stats"] = [0, 0.0, math.inf, -math.inf]
        for points in batches.values():
            for _ts, value in points:
                stats[0] += 1
                stats[1] += value
                if value < stats[2]:
                    stats[2] = value
                if value > stats[3]:
                    stats[3] = value
        self.mark_dirty()
        database = self.context.runtime.database
        if database is not None:
            views = getattr(database, "views", None)
            if views is not None and views.has_views_for(self.key.type_name):
                delta_tickets = views.emit_from(self, batches)
                if delta_tickets:
                    await self.context.runtime.scheduler.gather(delta_tickets)
        stored = await self.context.runtime.scheduler.gather(futures)
        return sum(stored)

    @actor_method(read_only=True)
    async def view_sample(self, group_by: str | None = None) -> dict:
        """This sensor's running fold state, for pull-based view reads.

        ``db.view(..., source="Sensor", group_by=...)`` fans this out over
        the extent and folds the rows client-side — the scan a registered
        materialized view replaces with a single shard ask.
        """
        stats = self.state.get("view_stats") or [0, 0.0, math.inf, -math.inf]
        group = "all" if group_by is None else str(self.state.get(group_by))
        return {
            "group": group,
            "entity": self.actor_id,
            "count": stats[0],
            "total": stats[1],
            "vmin": stats[2],
            "vmax": stats[3],
        }

    @actor_method(read_only=True)
    async def storage_stats(self) -> dict:
        """Summed tiered-window memory accounting over all channels."""
        channel_ids = list(self.state.get("channel_ids", ()))
        futures = [
            self.context.actor("PhysicalSensorChannel", channel_id).ask(
                "storage_stats"
            )
            for channel_id in channel_ids
        ]
        virtual_id = self.state.get("virtual_channel_id")
        if virtual_id:
            futures.append(
                self.context.actor("VirtualSensorChannel", virtual_id).ask(
                    "storage_stats"
                )
            )
        per_channel = await self.context.runtime.scheduler.gather(futures)
        total = {
            "points": 0, "head_points": 0, "sealed_points": 0, "blocks": 0,
            "block_bytes": 0, "live_bytes": 0, "raw_equivalent_bytes": 0,
        }
        for stats in per_channel:
            for key in total:
                total[key] += stats[key]
        total["channels"] = len(per_channel)
        total["compression_ratio"] = (
            (16.0 * total["sealed_points"]) / total["block_bytes"]
            if total["block_bytes"]
            else 0.0
        )
        return total

    async def relocate(self, position: tuple[float, float]) -> tuple:
        """Move the sensor (sensors are relocatable active entities)."""
        self.state["position"] = position
        self.mark_dirty()
        return tuple(position)

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        """Sensor metadata."""
        return {
            "sensor_id": self.actor_id,
            "org_id": self.state.get("org_id"),
            "sensor_type": self.state.get("sensor_type"),
            "position": self.state.get("position"),
            "channel_ids": list(self.state.get("channel_ids", ())),
            "virtual_channel_id": self.state.get("virtual_channel_id"),
        }
