"""Windowed cluster-load observation shared by the elastic control loops.

The metrics registry exports ``silo.cpu_utilization`` as a *cumulative*
ratio (busy since construction / elapsed): exactly what a figure wants, but
too slow-moving for a control loop — after a rebalance the history keeps the
old skew visible for a long time, which would make a naive controller
thrash.  :class:`WindowedCpuLoad` differentiates the kernel's busy ledger
between consecutive observations instead, giving each silo's utilization
*over the last control interval* — the signal the rebalancer thresholds and
the autoscaler uses for idle detection.

Mailbox depth needs no windowing (it is an instantaneous gauge); the control
loops read it straight from the registry snapshot via
:func:`silo_mailbox_depths`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.runtime import AodbRuntime

#: Added to both sides of utilization ratios so a fully idle silo yields a
#: large-but-finite imbalance instead of a division by zero.
IMBALANCE_EPSILON = 0.05


class WindowedCpuLoad:
    """Per-silo CPU utilization over the interval between observations."""

    def __init__(self, runtime: "AodbRuntime") -> None:
        self._runtime = runtime
        # silo id -> (busy_seconds, observed_at) from the previous pass.
        self._previous: dict[str, tuple[float, float]] = {}

    def observe(self) -> dict[str, float]:
        """Windowed utilization per live silo (draining/crashed excluded).

        The first observation of a silo (no previous sample) reports its
        cumulative utilization, which is the best estimate available and
        correct for a silo that just joined (its history *is* the window).
        """
        now = self._runtime.scheduler.now
        loads: dict[str, float] = {}
        seen: set[str] = set()
        for silo in self._runtime.silos():
            if silo.crashed or silo.draining or silo.stopping:
                continue
            seen.add(silo.silo_id)
            busy = silo.cpu.busy_seconds
            previous = self._previous.get(silo.silo_id)
            self._previous[silo.silo_id] = (busy, now)
            if previous is None or now <= previous[1]:
                loads[silo.silo_id] = silo.cpu.utilization()
                continue
            prev_busy, prev_at = previous
            capacity = silo.cpu.cores * (now - prev_at)
            loads[silo.silo_id] = min(1.0, max(0.0, busy - prev_busy) / capacity)
        # Forget silos that left the cluster so a re-added id starts fresh.
        for silo_id in list(self._previous):
            if silo_id not in seen:
                del self._previous[silo_id]
        return loads


def imbalance(loads: dict[str, float]) -> float:
    """Max/min load ratio with an epsilon floor; 1.0 when < 2 silos."""
    if len(loads) < 2:
        return 1.0
    values = loads.values()
    return (max(values) + IMBALANCE_EPSILON) / (min(values) + IMBALANCE_EPSILON)


def silo_mailbox_depths(snapshot: dict[str, Any]) -> dict[str, float]:
    """Per-silo ``silo.mailbox_depth`` gauges out of a registry snapshot.

    Snapshot keys look like ``silo.mailbox_depth{silo=silo-1}``; this is the
    inverse of :func:`repro.obs.metrics.format_metric` for the one label the
    probe carries.
    """
    depths: dict[str, float] = {}
    for key, value in snapshot.items():
        name, brace, rest = key.partition("{")
        if name != "silo.mailbox_depth" or not brace:
            continue
        for pair in rest.rstrip("}").split(","):
            label, _, silo_id = pair.partition("=")
            if label == "silo" and isinstance(value, (int, float)):
                depths[silo_id] = float(value)
    return depths
