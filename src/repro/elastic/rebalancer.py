"""Load-aware rebalancing: migrate hot activations off overloaded silos.

The runtime gives the cluster a *mechanism* for moving live actors
(:meth:`~repro.runtime.runtime.AodbRuntime.migrate`); this module supplies
the *policy*.  A :class:`Rebalancer` runs on a virtual-time timer, observes
the same signals the observability layer already exports — windowed per-silo
CPU utilization, mailbox depth gauges, and (when enabled) the profiler's
hot-activation ranking — and, when the cluster stays imbalanced for several
consecutive cycles, migrates a bounded number of the hottest movable
activations from the hottest silo to the coolest one.

Two guards keep it from thrashing, the classic failure mode of feedback
placement (Orleans' ActivationShedder has the same pair):

- **hysteresis** — imbalance must persist for ``hysteresis_cycles``
  consecutive observations before any migration happens, so a single bursty
  window does nothing; the streak also resets after acting, so the next
  wave needs fresh evidence measured *after* the moves landed;
- **budget** — at most ``migration_budget`` activations move per cycle, so
  a badly skewed cluster converges over several cycles instead of stampeding
  every actor to whichever silo looked idle at one instant.

Pinned activations (``PinnedPlacement`` pins, exact or prefix) are never
moved: a pin is an operator statement about *where* an actor must live, and
the rebalancer must not override it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .load import WindowedCpuLoad, imbalance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.scheduler import Scheduler, Task
    from ..runtime.key import ActorKey
    from ..runtime.runtime import AodbRuntime


@dataclass(frozen=True)
class RebalancerConfig:
    """Policy knobs for the rebalancing loop."""

    #: Virtual seconds between observations (and hence the CPU window).
    interval: float = 1.0
    #: Windowed max/min silo-utilization ratio that counts as imbalanced.
    imbalance_threshold: float = 2.0
    #: Consecutive imbalanced cycles required before migrating anything.
    hysteresis_cycles: int = 2
    #: Maximum activations migrated per acting cycle.
    migration_budget: int = 4
    #: Ignore imbalance while the hottest silo is below this utilization —
    #: ratios are noise when the whole cluster is idle.
    min_utilization: float = 0.10

    def validate(self) -> None:
        if self.interval <= 0:
            raise ValueError("rebalancer interval must be positive")
        if self.imbalance_threshold <= 1.0:
            raise ValueError("imbalance threshold must exceed 1.0")
        if self.hysteresis_cycles < 1:
            raise ValueError("hysteresis_cycles must be >= 1")
        if self.migration_budget < 1:
            raise ValueError("migration_budget must be >= 1")


@dataclass(frozen=True)
class RebalanceEvent:
    """One migration the rebalancer performed (for reports and tests)."""

    at: float
    key: "ActorKey"
    source: str
    target: str


class Rebalancer:
    """Timer-driven feedback loop over the runtime's migration mechanism."""

    def __init__(
        self, runtime: "AodbRuntime", config: RebalancerConfig | None = None
    ) -> None:
        self.runtime = runtime
        self.config = config or RebalancerConfig()
        self.config.validate()
        self.cycles = 0
        self.migrations = 0
        self.migration_failures = 0
        self.events: list[RebalanceEvent] = []
        self._window = WindowedCpuLoad(runtime)
        self._streak = 0
        self._task: "Task | None" = None
        self.last_imbalance = 1.0
        runtime.metrics.register_probe(
            "elastic.rebalancer_cycles", lambda: self.cycles
        )
        runtime.metrics.register_probe(
            "elastic.rebalancer_migrations", lambda: self.migrations
        )

    # -- candidate selection ----------------------------------------------------

    def _movable(self, key: "ActorKey") -> bool:
        return self.runtime.pinned_placement.pinned_to(key) is None

    def _candidates(self, silo_id: str, budget: int) -> list["ActorKey"]:
        """The hottest movable activations resident on ``silo_id``.

        With the profiler enabled, "hot" is exact CPU attribution
        (:meth:`~repro.obs.profile.Profiler.hot_activation_keys`); without
        it, mailbox depth then messages handled approximate the same
        ranking from always-on runtime state.
        """
        silo = self.runtime.silo(silo_id)
        resident = {
            activation.key
            for activation in silo.activations()
            if not activation.closing
        }
        picked: list["ActorKey"] = []
        if self.runtime.profiler.enabled:
            # Ask for a deep ranking: the hottest activations cluster on
            # the hot silo, but the list is cluster-wide.
            for key in self.runtime.profiler.hot_activation_keys(
                top=max(64, budget * 8)
            ):
                if key in resident and self._movable(key):
                    picked.append(key)
                    if len(picked) >= budget:
                        return picked
        ranked = sorted(
            (a for a in silo.activations() if not a.closing),
            key=lambda a: (-len(a.mailbox), -a.messages_handled),
        )
        for activation in ranked:
            if activation.key in resident and activation.key not in picked:
                if self._movable(activation.key):
                    picked.append(activation.key)
                    if len(picked) >= budget:
                        break
        return picked

    # -- the control loop -------------------------------------------------------

    async def run_cycle(self) -> int:
        """One observe → decide → (maybe) act pass; returns migrations done."""
        self.cycles += 1
        loads = self._window.observe()
        self.last_imbalance = imbalance(loads)
        if (
            len(loads) < 2
            or max(loads.values()) < self.config.min_utilization
            or self.last_imbalance <= self.config.imbalance_threshold
        ):
            self._streak = 0
            return 0
        self._streak += 1
        if self._streak < self.config.hysteresis_cycles:
            return 0
        # Act, then demand fresh post-move evidence before acting again.
        self._streak = 0
        hottest = max(loads, key=lambda s: loads[s])
        coolest = min(loads, key=lambda s: loads[s])
        if hottest == coolest:
            return 0
        # Never move more than half the activation-count gap (but always at
        # least one): moving the full budget between near-balanced silos
        # overshoots the equilibrium and the next wave flips the same
        # actors straight back — ping-pong, the exact thrash the budget is
        # meant to prevent.
        gap = (
            self.runtime.silo(hottest).activation_count
            - self.runtime.silo(coolest).activation_count
        )
        budget = min(self.config.migration_budget, max(1, (gap + 1) // 2))
        moved = 0
        for key in self._candidates(hottest, budget):
            try:
                ok = await self.runtime.migrate(key, coolest)
            except Exception:
                self.migration_failures += 1
                continue
            if ok:
                moved += 1
                self.migrations += 1
                self.events.append(
                    RebalanceEvent(
                        at=self.runtime.scheduler.now,
                        key=key,
                        source=hottest,
                        target=coolest,
                    )
                )
                recorder = self.runtime.recorder
                if recorder is not None:
                    recorder.journal("elastic").record(
                        "rebalance", key.qualified(), f"{hottest}->{coolest}"
                    )
            else:
                self.migration_failures += 1
        return moved

    def attach(self, scheduler: "Scheduler") -> "Task":
        """Run a cycle every ``config.interval`` until :meth:`detach`."""
        if self._task is not None:
            raise RuntimeError("rebalancer already attached")

        async def loop() -> None:
            while True:
                await scheduler.sleep(self.config.interval)
                await self.run_cycle()

        self._task = scheduler.spawn(loop(), name="rebalancer")
        return self._task

    def detach(self) -> None:
        """Stop the loop (idempotent)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
