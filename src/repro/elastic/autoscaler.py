"""SLO-driven autoscaling: grow on firing alerts, shrink on sustained idle.

The paper provisions a *fixed* cluster per experiment; real SHM deployments
see diurnal load, so a fixed cluster is either over-provisioned at night or
under-provisioned at the commute peak.  The :class:`Autoscaler` closes that
loop using pieces that already exist:

- **scale up** keys off the :class:`~repro.obs.health.HealthMonitor` — when
  any of the configured :class:`~repro.obs.health.SloRule` names is firing
  (its own for/clear hysteresis already debounced it), a silo is taken from
  the configured :class:`SiloSpec` pool and added to the cluster;
- **scale down** keys off sustained idleness — when every silo's *windowed*
  CPU utilization stays under ``scale_down_utilization`` for
  ``scale_down_cycles`` consecutive observations, the least-loaded silo is
  gracefully drained (:meth:`~repro.runtime.runtime.AodbRuntime.drain_silo`:
  excluded from placement, live activations migrated out, then shut down)
  and its spec returns to the pool.

A shared ``cooldown_seconds`` lockout after *either* action gives the
cluster time to re-equilibrate before the next decision — without it, the
alert that triggered a scale-up is often still firing one interval later
(histograms remember the bad minute) and the pool would empty in one burst.

The loop also integrates ``silo_seconds`` — live silos x wall time, the
simulation's proxy for the EC2 bill — so experiments can report elasticity
savings against a statically provisioned control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .load import WindowedCpuLoad

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.scheduler import Scheduler, Task
    from ..obs.health import HealthMonitor
    from ..runtime.runtime import AodbRuntime


@dataclass(frozen=True)
class SiloSpec:
    """One launchable server: what ``add_silo`` needs to bring it up."""

    silo_id: str
    cores: int = 2
    speed: float = 1.0
    instance_type: str = "generic"


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs for the autoscaling loop."""

    #: Virtual seconds between decisions (and the idle-detection window).
    interval: float = 1.0
    #: Never drain below this many live silos.
    min_silos: int = 1
    #: Never add beyond this many live silos (pool may be smaller anyway).
    max_silos: int = 8
    #: SLO rule names whose firing triggers a scale-up.
    scale_up_rules: tuple[str, ...] = (
        "ask-p99-latency",
        "mailbox-backlog",
        "cluster-imbalance",
    )
    #: Mean windowed cluster utilization above which to scale up
    #: preemptively (None disables).  The SLO rules are the reactive
    #: backstop — they fire once users already feel queueing; the CPU
    #: trigger adds capacity *before* saturation, while latency is still
    #: flat.  The mean (not the max) is deliberate: right after a scale-up
    #: the new silo is empty and the max stays high until the rebalancer
    #: spreads load, which would double-fire a max-based trigger.
    scale_up_utilization: float | None = None
    #: Consecutive hot cycles required before the CPU trigger acts.
    scale_up_cycles: int = 2
    #: Windowed utilization below which a silo counts as idle.
    scale_down_utilization: float = 0.25
    #: Consecutive all-idle cycles required before draining a silo.
    scale_down_cycles: int = 3
    #: Lockout after any scaling action before the next one.
    cooldown_seconds: float = 5.0

    def validate(self) -> None:
        if self.interval <= 0:
            raise ValueError("autoscaler interval must be positive")
        if self.min_silos < 1:
            raise ValueError("min_silos must be >= 1")
        if self.max_silos < self.min_silos:
            raise ValueError("max_silos must be >= min_silos")
        if self.scale_down_cycles < 1:
            raise ValueError("scale_down_cycles must be >= 1")
        if self.scale_up_cycles < 1:
            raise ValueError("scale_up_cycles must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")


@dataclass(frozen=True)
class ScaleEvent:
    """One scaling action (for reports and tests)."""

    at: float
    direction: str  # "up" | "down"
    silo_id: str
    reason: str
    migrated: int = 0  # activations moved out (scale-down only)


class Autoscaler:
    """Timer-driven elasticity loop over add_silo / drain_silo."""

    def __init__(
        self,
        runtime: "AodbRuntime",
        monitor: "HealthMonitor",
        pool: list[SiloSpec],
        config: AutoscalerConfig | None = None,
    ) -> None:
        self.runtime = runtime
        self.monitor = monitor
        self.pool = list(pool)
        self.config = config or AutoscalerConfig()
        self.config.validate()
        self.cycles = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.silo_seconds = 0.0
        self.events: list[ScaleEvent] = []
        self._window = WindowedCpuLoad(runtime)
        self._idle_streak = 0
        self._hot_streak = 0
        self._last_action_at = float("-inf")
        self._task: "Task | None" = None
        runtime.metrics.register_probe("elastic.scale_ups", lambda: self.scale_ups)
        runtime.metrics.register_probe(
            "elastic.scale_downs", lambda: self.scale_downs
        )
        runtime.metrics.register_probe(
            "elastic.pool_available", lambda: len(self.pool)
        )

    # -- observation helpers ----------------------------------------------------

    def _live_silos(self) -> list:
        """Silos currently incurring cost (everything not crashed/stopped)."""
        return [
            silo
            for silo in self.runtime.silos()
            if not silo.crashed and not silo.stopping
        ]

    def _cooling_down(self) -> bool:
        now = self.runtime.scheduler.now
        return now - self._last_action_at < self.config.cooldown_seconds

    # -- the control loop -------------------------------------------------------

    async def run_cycle(self) -> ScaleEvent | None:
        """One observe → decide → (maybe) act pass."""
        self.cycles += 1
        live = self._live_silos()
        # Cost accrues for every live silo over the elapsed interval,
        # draining ones included: they are still running servers.
        self.silo_seconds += len(live) * self.config.interval
        loads = self._window.observe()  # excludes draining silos

        firing = set(self.monitor.active()) & set(self.config.scale_up_rules)
        mean_load = sum(loads.values()) / len(loads) if loads else 0.0
        hot = (
            self.config.scale_up_utilization is not None
            and mean_load > self.config.scale_up_utilization
        )
        self._hot_streak = self._hot_streak + 1 if hot else 0
        cpu_trigger = self._hot_streak >= self.config.scale_up_cycles
        if firing or cpu_trigger:
            self._idle_streak = 0
            if (
                not self._cooling_down()
                and self.pool
                and len(live) < self.config.max_silos
            ):
                self._hot_streak = 0
                reason = sorted(firing)[0] if firing else "cpu-utilization"
                return self._scale_up(reason)
            return None

        if loads and all(
            load < self.config.scale_down_utilization for load in loads.values()
        ):
            self._idle_streak += 1
        else:
            self._idle_streak = 0
        if (
            self._idle_streak >= self.config.scale_down_cycles
            and not self._cooling_down()
            and len(loads) > self.config.min_silos
        ):
            self._idle_streak = 0
            victim = min(loads, key=lambda s: loads[s])
            return await self._scale_down(victim)
        return None

    def _scale_up(self, reason: str) -> ScaleEvent:
        spec = self.pool.pop(0)
        self.runtime.add_silo(
            spec.silo_id,
            cores=spec.cores,
            speed=spec.speed,
            instance_type=spec.instance_type,
        )
        self.scale_ups += 1
        self._last_action_at = self.runtime.scheduler.now
        event = ScaleEvent(
            at=self.runtime.scheduler.now,
            direction="up",
            silo_id=spec.silo_id,
            reason=reason,
        )
        self.events.append(event)
        recorder = self.runtime.recorder
        if recorder is not None:
            recorder.journal("elastic").record("scale-up", spec.silo_id, reason)
        return event

    async def _scale_down(self, silo_id: str) -> ScaleEvent | None:
        silo = self.runtime.silo(silo_id)
        spec = SiloSpec(
            silo_id=silo.silo_id,
            cores=silo.cpu.cores,
            speed=silo.cpu.speed,
            instance_type=silo.instance_type,
        )
        # Take the lockout before draining: the drain itself advances
        # virtual time, and decisions made mid-drain would double-count.
        self._last_action_at = self.runtime.scheduler.now
        try:
            migrated = await self.runtime.drain_silo(silo_id)
        except Exception:
            return None  # e.g. the last peer crashed mid-decision
        self.scale_downs += 1
        self._last_action_at = self.runtime.scheduler.now
        self.pool.append(spec)
        event = ScaleEvent(
            at=self.runtime.scheduler.now,
            direction="down",
            silo_id=silo_id,
            reason="idle",
            migrated=migrated,
        )
        self.events.append(event)
        recorder = self.runtime.recorder
        if recorder is not None:
            recorder.journal("elastic").record("scale-down", silo_id, migrated)
        return event

    def attach(self, scheduler: "Scheduler") -> "Task":
        """Run a cycle every ``config.interval`` until :meth:`detach`."""
        if self._task is not None:
            raise RuntimeError("autoscaler already attached")

        async def loop() -> None:
            while True:
                await scheduler.sleep(self.config.interval)
                await self.run_cycle()

        self._task = scheduler.spawn(loop(), name="autoscaler")
        return self._task

    def detach(self) -> None:
        """Stop the loop (idempotent)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
