"""repro.elastic — elasticity: migration policy, rebalancing, autoscaling.

The runtime supplies the *mechanisms* — live activation migration
(:meth:`~repro.runtime.runtime.AodbRuntime.migrate`), graceful silo drain
(:meth:`~repro.runtime.runtime.AodbRuntime.drain_silo`) and load-aware
placement (``power_of_two``, ``hash_ring``).  This package supplies the
*policies* that drive them from the observability layer's signals:

- :mod:`repro.elastic.load` — :class:`WindowedCpuLoad`: per-silo CPU
  utilization differentiated over the control interval (the cumulative
  ``silo.cpu_utilization`` probe moves too slowly for feedback control);
- :mod:`repro.elastic.rebalancer` — :class:`Rebalancer`: migrates the
  hottest movable activations off the hottest silo when windowed imbalance
  persists, with hysteresis and a per-cycle migration budget so it cannot
  thrash;
- :mod:`repro.elastic.autoscaler` — :class:`Autoscaler`: adds silos from a
  :class:`SiloSpec` pool when configured SLO rules fire, gracefully drains
  the least-loaded silo after sustained idleness, and integrates
  ``silo_seconds`` (the simulated bill) for savings reports.

``python -m repro.bench elastic`` runs the diurnal-ramp experiment: the
autoscaler grows and shrinks the cluster mid-run while sustained ingest
continues, asserting zero lost messages across every migration wave.
"""

from .autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent, SiloSpec
from .load import WindowedCpuLoad, imbalance, silo_mailbox_depths
from .rebalancer import RebalanceEvent, Rebalancer, RebalancerConfig

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "RebalanceEvent",
    "Rebalancer",
    "RebalancerConfig",
    "ScaleEvent",
    "SiloSpec",
    "WindowedCpuLoad",
    "imbalance",
    "silo_mailbox_depths",
]
