"""Multi-actor transactions: strict two-phase locking with rollback.

The paper's fourth modeling principle (§4.4): *"Employ transactions to
update data across actors consistently; however, in the absence of
transactions, keep data related to a constraint in a single actor or design
a multi-actor workflow for updates."*  This module provides the first
option; :mod:`repro.aodb.workflow` provides the third.

Semantics (mirroring Orleans' transaction work cited by the paper):

- A transaction invokes ordinary actor methods through
  :meth:`Transaction.call`.
- The first touch of each participant takes an **exclusive lock** and
  snapshots the actor's transactional state (its ``self.state`` document).
- Locks are held until commit/abort (strict 2PL).  Lock waits time out, and
  a timeout aborts the transaction (deadlock resolution by timeout, the
  same pragmatic policy most lock managers ship).
- Abort restores every touched participant's snapshot — the in-actor
  equivalent of undo logging.

Isolation scope: transactions isolate against *other transactions*.  Raw
sends that bypass the coordinator are not blocked — exactly as in Orleans,
where only methods marked transactional join a transaction.  Transactional
actors should route all writes to transactional state through transactions.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from ..errors import TransactionAbortedError, TransactionConflictError
from ..errors import TimeoutError as KernelTimeoutError
from ..kernel.sync import Lock
from ..runtime.key import ActorKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import AodbDatabase


class LockManager:
    """Per-actor-key exclusive locks with FIFO fairness."""

    def __init__(self, database: "AodbDatabase") -> None:
        self._db = database
        self._locks: dict[ActorKey, Lock] = {}

    def lock_for(self, key: ActorKey) -> Lock:
        lock = self._locks.get(key)
        if lock is None:
            lock = Lock(self._db.runtime.scheduler)
            self._locks[key] = lock
        return lock

    def held(self, key: ActorKey) -> bool:
        """Whether some transaction currently holds ``key``."""
        lock = self._locks.get(key)
        return lock is not None and lock.locked


class Transaction:
    """One unit of multi-actor atomic work.

    Use as an async context manager; exiting normally commits, exiting on an
    exception aborts (rolling back every participant)::

        async with db.transaction() as txn:
            await txn.call("Farmer", "f1", "remove_cow", cow_id)
            await txn.call("Farmer", "f2", "add_cow", cow_id)
            await txn.call("Cow", cow_id, "set_owner", "f2")
    """

    _ids = itertools.count(1)

    def __init__(self, database: "AodbDatabase", lock_timeout: float) -> None:
        self._db = database
        self._lock_timeout = lock_timeout
        self.txn_id = next(Transaction._ids)
        self._held: list[ActorKey] = []
        self._snapshots: dict[ActorKey, Any] = {}
        self.state = "active"  # active | committed | aborted

    # -- participant access -------------------------------------------------------

    async def call(
        self, type_name: str, actor_id: str, method: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Invoke a method on a participant under this transaction."""
        self._check_active()
        key = ActorKey(type_name, actor_id)
        if key not in self._snapshots:
            await self._enlist(key)
        ref = self._db.runtime.ref(type_name, actor_id)
        try:
            return await ref.ask(method, *args, **kwargs)
        except Exception:
            await self.abort()
            raise

    async def _enlist(self, key: ActorKey) -> None:
        lock = self._db.locks.lock_for(key)
        scheduler = self._db.runtime.scheduler
        try:
            await scheduler.timeout(lock.acquire(), self._lock_timeout)
        except KernelTimeoutError:
            await self.abort()
            raise TransactionConflictError(
                f"txn {self.txn_id}: timed out locking {key} "
                f"after {self._lock_timeout}s; aborted"
            ) from None
        self._held.append(key)
        snapshot = await self._db.runtime.send(
            key, "__txn_snapshot__", (), {}, caller_endpoint="client"
        )
        self._snapshots[key] = snapshot

    # -- outcome ----------------------------------------------------------------------

    async def commit(self) -> None:
        """Make all participant updates durable-visible and release locks."""
        self._check_active()
        self.state = "committed"
        self._db.stats_commits += 1
        self._release_all()

    async def abort(self) -> None:
        """Roll every participant back to its snapshot and release locks."""
        if self.state == "aborted":
            return
        if self.state == "committed":
            raise TransactionAbortedError("cannot abort a committed transaction")
        self.state = "aborted"
        self._db.stats_aborts += 1
        for key in reversed(self._held):
            await self._db.runtime.send(
                key,
                "__txn_restore__",
                (self._snapshots[key],),
                {},
                caller_endpoint="client",
            )
        self._release_all()

    def _release_all(self) -> None:
        for key in self._held:
            self._db.locks.lock_for(key).release()
        self._held.clear()

    def _check_active(self) -> None:
        if self.state != "active":
            raise TransactionAbortedError(
                f"txn {self.txn_id} is {self.state}, not active"
            )

    # -- context manager ------------------------------------------------------------

    async def __aenter__(self) -> "Transaction":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            await self.commit()
            return False
        if self.state == "active":
            await self.abort()
        return False  # propagate the original exception
