"""Declarative cross-actor constraints — the paper's future work, built.

The paper closes with: "As future work, we plan to ... devise approaches to
enforce constraints in AODBs."  Its §4.4 analysis identifies the mechanism
options (transaction / single-actor encapsulation / workflow); this module
adds the *declaration* layer on top, so applications state constraints once
and the database enforces them:

- :class:`RelationshipConstraint` — a bidirectional one-to-many between an
  owner actor type and a member actor type (e.g. Farmer.herd ↔ Cow.owner).
  ``transfer`` moves a member between owners through the chosen enforcement
  mode; ``verify`` audits the whole relationship against the indexes.
- :class:`UniquenessConstraint` — at most one actor of a type may hold a
  given value of an indexed attribute.

Enforcement modes mirror §4.4: ``"transaction"`` (atomic, isolated) and
``"workflow"`` (compensating saga, eventually consistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import AodbError, TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import AodbDatabase


class ConstraintViolation(AodbError):
    """A declared constraint does not hold (or an operation would break it)."""


@dataclass
class AuditReport:
    """Outcome of verifying a constraint across the database."""

    constraint: str
    checked: int
    violations: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.violations


class RelationshipConstraint:
    """A one-to-many relationship maintained across two actor types.

    Declaration names the four methods involved, so the constraint works
    for any actor pair following the add/remove/set/get protocol::

        herd = RelationshipConstraint(
            db,
            name="ownership",
            owner_type="Farmer", member_type="Cow",
            add_method="add_cow", remove_method="remove_cow",
            set_owner_method="set_owner", owner_attribute="owner_id",
            mode="transaction",
        )
        await herd.link("farm-1", "cow-7")
        await herd.transfer("cow-7", "farm-1", "farm-2")
    """

    def __init__(
        self,
        database: "AodbDatabase",
        name: str,
        owner_type: str,
        member_type: str,
        add_method: str,
        remove_method: str,
        set_owner_method: str,
        owner_attribute: str,
        mode: str = "transaction",
    ) -> None:
        if mode not in ("transaction", "workflow"):
            raise ValueError("mode must be 'transaction' or 'workflow'")
        if not database.indexes.has_index(member_type, owner_attribute):
            raise ConstraintViolation(
                f"{member_type}.{owner_attribute} must be indexed to declare "
                f"relationship {name!r}"
            )
        self.db = database
        self.name = name
        self.owner_type = owner_type
        self.member_type = member_type
        self.add_method = add_method
        self.remove_method = remove_method
        self.set_owner_method = set_owner_method
        self.owner_attribute = owner_attribute
        self.mode = mode

    # -- operations -----------------------------------------------------------

    async def link(self, owner_id: str, member_id: str, *args: Any) -> None:
        """Establish initial ownership (both sides)."""
        owner = self.db.ref(self.owner_type, owner_id)
        member = self.db.ref(self.member_type, member_id)
        await member.ask(self.set_owner_method, owner_id, *args)
        await owner.ask(self.add_method, member_id)

    async def transfer(
        self, member_id: str, from_owner: str, to_owner: str, *args: Any
    ) -> bool:
        """Move a member between owners under the enforcement mode.

        Returns True when the transfer applied; False when it aborted (and
        was rolled back / compensated).
        """
        if self.mode == "transaction":
            return await self._transfer_transactional(
                member_id, from_owner, to_owner, *args
            )
        return await self._transfer_workflow(member_id, from_owner, to_owner, *args)

    async def _transfer_transactional(
        self, member_id: str, from_owner: str, to_owner: str, *args: Any
    ) -> bool:
        try:
            async with self.db.transaction() as txn:
                await txn.call(
                    self.owner_type, from_owner, self.remove_method, member_id
                )
                await txn.call(self.owner_type, to_owner, self.add_method, member_id)
                await txn.call(
                    self.member_type, member_id, self.set_owner_method, to_owner, *args
                )
            return True
        except (TransactionError, Exception):  # noqa: BLE001 - abort => False
            return False

    async def _transfer_workflow(
        self, member_id: str, from_owner: str, to_owner: str, *args: Any
    ) -> bool:
        seller = self.db.ref(self.owner_type, from_owner)
        buyer = self.db.ref(self.owner_type, to_owner)
        member = self.db.ref(self.member_type, member_id)
        workflow = (
            self.db.workflow(f"{self.name}:transfer:{member_id}")
            .step(
                "remove-from-owner",
                lambda: seller.ask(self.remove_method, member_id),
                lambda: seller.ask(self.add_method, member_id),
            )
            .step(
                "add-to-new-owner",
                lambda: buyer.ask(self.add_method, member_id),
                lambda: buyer.ask(self.remove_method, member_id),
            )
            .step(
                "update-member",
                lambda: member.ask(self.set_owner_method, to_owner, *args),
            )
        )
        outcome = await workflow.run()
        return outcome.succeeded

    # -- auditing ---------------------------------------------------------------

    async def verify(self, owner_list_method: str) -> AuditReport:
        """Audit every member against its owner's list.

        ``owner_list_method`` names the owner method returning member ids
        (e.g. ``"herd"``).  Uses the owner index as ground truth for member
        → owner, then checks the inverse direction.
        """
        report = AuditReport(constraint=self.name, checked=0)
        owner_ids = self.db.indexes.extent(self.owner_type)
        listed: dict[str, str] = {}
        for owner_id in owner_ids:
            members = await self.db.ref(self.owner_type, owner_id).ask(
                owner_list_method
            )
            for member_id in members:
                if member_id in listed:
                    report.violations.append(
                        f"{member_id} listed by both {listed[member_id]} "
                        f"and {owner_id}"
                    )
                listed[member_id] = owner_id
        for member_id in self.db.indexes.extent(self.member_type):
            report.checked += 1
            owners = [
                owner_id
                for owner_id in owner_ids
                if member_id
                in self.db.indexes.lookup(
                    self.member_type, self.owner_attribute, owner_id
                )
            ]
            owner = owners[0] if owners else None
            if owner is None:
                # Member without an owner in scope: fine unless listed.
                if member_id in listed:
                    report.violations.append(
                        f"{member_id} listed by {listed[member_id]} but has no owner"
                    )
                continue
            if listed.get(member_id) != owner:
                report.violations.append(
                    f"{member_id}: owner index says {owner}, "
                    f"lists say {listed.get(member_id)}"
                )
        return report


class UniquenessConstraint:
    """At most one actor of a type per value of an indexed attribute."""

    def __init__(
        self, database: "AodbDatabase", type_name: str, attribute: str
    ) -> None:
        if not database.indexes.has_index(type_name, attribute):
            raise ConstraintViolation(
                f"{type_name}.{attribute} must be indexed for uniqueness"
            )
        self.db = database
        self.type_name = type_name
        self.attribute = attribute

    def check_free(self, value: object) -> None:
        """Raise :class:`ConstraintViolation` if ``value`` is taken."""
        holders = self.db.indexes.lookup(self.type_name, self.attribute, value)
        if holders:
            raise ConstraintViolation(
                f"{self.type_name}.{self.attribute}={value!r} already held "
                f"by {holders[0]}"
            )

    async def claim(
        self, actor_id: str, value: object, setter_method: str
    ) -> None:
        """Atomically-enough claim: check, then set through the actor.

        The eager index makes check-then-set safe within one scheduler
        turn; concurrent claims of the same value serialize through the
        index update and the loser's later check fails in ``verify``.
        """
        self.check_free(value)
        await self.db.ref(self.type_name, actor_id).ask(setter_method, value)

    def verify(self) -> AuditReport:
        """Audit: every indexed value maps to at most one actor."""
        report = AuditReport(
            constraint=f"unique:{self.type_name}.{self.attribute}", checked=0
        )
        index = self.db.indexes._indexes.get((self.type_name, self.attribute), {})
        for value, holders in index.items():
            report.checked += 1
            if len(holders) > 1:
                report.violations.append(
                    f"value {value!r} held by {sorted(holders)}"
                )
        return report
