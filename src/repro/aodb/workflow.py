"""Saga-style multi-actor update workflows.

The paper's §4.4 offers workflows as the transactions-free alternative for
cross-actor constraints: "design a multi-actor workflow for updates" that
"ensures that all actors in a relationship change are eventually updated to
a consistent state".  A :class:`Workflow` is an ordered list of steps, each
with a forward action and a compensation; if step *k* fails, compensations
for steps *k-1 … 0* run in reverse order (the classic saga pattern).

Unlike a transaction, a workflow provides no isolation — intermediate
states are visible — but it never holds locks and always terminates in
either the fully-applied or fully-compensated state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

ActionFn = Callable[[], Awaitable[Any]]
CompensationFn = Callable[[], Awaitable[Any]]


@dataclass
class WorkflowStep:
    """One forward action and its compensation."""

    name: str
    action: ActionFn
    compensation: CompensationFn | None = None


@dataclass
class WorkflowOutcome:
    """What happened: which steps applied, whether we had to compensate."""

    succeeded: bool
    applied_steps: list[str] = field(default_factory=list)
    compensated_steps: list[str] = field(default_factory=list)
    failed_step: str | None = None
    error: BaseException | None = None
    results: dict[str, Any] = field(default_factory=dict)


class Workflow:
    """An ordered, compensable multi-actor update."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._steps: list[WorkflowStep] = []

    def step(
        self,
        name: str,
        action: ActionFn,
        compensation: CompensationFn | None = None,
    ) -> "Workflow":
        """Append a step; returns self for chaining."""
        self._steps.append(WorkflowStep(name, action, compensation))
        return self

    def __len__(self) -> int:
        return len(self._steps)

    async def run(self) -> WorkflowOutcome:
        """Execute all steps; on failure, compensate applied steps in reverse.

        A failing *compensation* is re-raised (there is no safe automatic
        recovery from a broken undo; the operator must intervene), after
        the remaining compensations were still attempted.
        """
        outcome = WorkflowOutcome(succeeded=True)
        applied: list[WorkflowStep] = []
        for step in self._steps:
            try:
                outcome.results[step.name] = await step.action()
            except BaseException as exc:  # noqa: BLE001 - drives compensation
                outcome.succeeded = False
                outcome.failed_step = step.name
                outcome.error = exc
                break
            applied.append(step)
            outcome.applied_steps.append(step.name)
        if outcome.succeeded:
            return outcome
        compensation_errors: list[BaseException] = []
        for step in reversed(applied):
            if step.compensation is None:
                continue
            try:
                await step.compensation()
                outcome.compensated_steps.append(step.name)
            except BaseException as exc:  # noqa: BLE001 - collected below
                compensation_errors.append(exc)
        if compensation_errors:
            raise compensation_errors[0]
        return outcome
