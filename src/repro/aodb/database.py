"""The actor-oriented database facade.

:class:`AodbDatabase` composes the actor runtime with the database features
the AODB vision adds on top: secondary indexes, a declarative query layer,
multi-actor transactions, and saga workflows.  Applications construct one
database over one runtime and talk to both::

    db = AodbDatabase(runtime)
    db.register_actor(Cow)                 # forwards to the runtime,
                                           # declares Cow's indexes
    cows = await db.query("Cow").where(owner_id="f1").call("describe").run()
    async with db.transaction() as txn:
        ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import QueryError
from ..runtime.actor import Actor
from ..runtime.key import ActorKey
from ..runtime.runtime import AodbRuntime
from .index import IndexRegistry
from .query import Query
from .transactions import LockManager, Transaction
from .views import (
    MaterializedViewHandle,
    PullViewHandle,
    ViewDef,
    ViewRegistry,
)
from .workflow import Workflow

if TYPE_CHECKING:  # pragma: no cover
    pass

DEFAULT_LOCK_TIMEOUT = 5.0


class AodbDatabase:
    """Database features layered over an :class:`AodbRuntime`."""

    def __init__(self, runtime: AodbRuntime) -> None:
        self.runtime = runtime
        self.indexes = IndexRegistry()
        self.views = ViewRegistry(self)
        self.locks = LockManager(self)
        self.stats_commits = 0
        self.stats_aborts = 0
        # Let the runtime notify us of activations (extent maintenance)
        # and let actors reach the index registry via their context.
        runtime.database = self

    # -- registration ---------------------------------------------------------

    def register_actor(
        self, actor_class: type[Actor], name: str | None = None
    ) -> type[Actor]:
        """Register with the runtime and declare the class's indexes."""
        registered = self.runtime.register_actor(actor_class, name=name)
        self.indexes.declare_for(actor_class)
        return registered

    def register_actors(self, actor_classes) -> None:
        """Register several actor classes at once."""
        for actor_class in actor_classes:
            self.register_actor(actor_class)

    # -- runtime hooks -----------------------------------------------------------

    def note_activation(self, key: ActorKey) -> None:
        """Called by the runtime when an actor is (re)activated."""
        self.indexes.note_instance(key.type_name, key.actor_id)

    def forget_actor(self, key: ActorKey) -> None:
        """Hard-delete an actor from indexes and extent (app-level delete)."""
        self.indexes.remove_actor(key)

    # -- feature entry points ---------------------------------------------------

    def query(self, type_name: str) -> Query:
        """Start a declarative query over actors of one type."""
        self.runtime.actor_type(type_name)  # fail fast on unknown types
        return Query(self, type_name)

    def register_view(self, definition: ViewDef) -> ViewDef:
        """Register a standing query, maintained incrementally from the
        ingest write path (see :mod:`repro.aodb.views`)."""
        return self.views.register(definition)

    def view(
        self,
        name: str,
        source: str | None = None,
        group_by: str | None = None,
    ) -> MaterializedViewHandle | PullViewHandle:
        """A read handle over a standing query.

        A registered ``name`` returns the materialized handle — one ask
        per group asked.  An unregistered shape falls back to the
        pull-based query layer when ``source`` names the actor type to
        scan: every read fans out ``view_sample`` over the extent and
        folds client-side with the same algebra, so the two paths agree
        on results and differ only (enormously) in cost.
        """
        if self.views.registered(name):
            return MaterializedViewHandle(self, self.views.definition(name))
        if source is None:
            raise QueryError(
                f"no registered view named {name!r}; pass source= (and "
                "optionally group_by=) to fall back to a pull-based scan"
            )
        self.runtime.actor_type(source)  # fail fast on unknown types
        return PullViewHandle(self, source, group_by)

    def transaction(self, lock_timeout: float = DEFAULT_LOCK_TIMEOUT) -> Transaction:
        """Begin a multi-actor transaction (strict 2PL, timeout aborts)."""
        return Transaction(self, lock_timeout)

    def workflow(self, name: str = "workflow") -> Workflow:
        """Build a compensable multi-actor workflow (saga)."""
        return Workflow(name)

    # -- convenience -----------------------------------------------------------------

    def ref(self, type_name: str, actor_id: str):
        """Shorthand for ``runtime.ref`` (client endpoint)."""
        return self.runtime.ref(type_name, actor_id)

    # -- time-series reads ------------------------------------------------------------

    async def timeseries_range(
        self, type_name: str, actor_id: str, start: float, end: float
    ) -> list[tuple[float, float]]:
        """Raw ``(timestamp, value)`` pairs over [start, end) from one
        channel actor's tiered window, stitched across hot head and sealed
        compressed blocks (blocks outside the range are skipped by their
        summaries without decompression)."""
        return await self.ref(type_name, actor_id).query_range(start, end)

    async def timeseries_aggregate(
        self, type_name: str, actor_id: str, start: float, end: float
    ) -> dict:
        """Count/min/max/sum/mean over [start, end) from one channel
        actor's tiered window; sealed blocks fully inside the range are
        answered from per-block summaries alone."""
        return await self.ref(type_name, actor_id).aggregate_range(start, end)
