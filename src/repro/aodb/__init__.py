"""Database features over the actor runtime: indexes, queries, transactions,
and saga workflows — the "actor-oriented database" layer."""

from .constraints import (
    AuditReport,
    ConstraintViolation,
    RelationshipConstraint,
    UniquenessConstraint,
)
from .database import AodbDatabase
from .index import MISSING, IndexRegistry
from .query import Query, QueryResult
from .transactions import LockManager, Transaction
from .workflow import Workflow, WorkflowOutcome, WorkflowStep

__all__ = [
    "AodbDatabase",
    "AuditReport",
    "ConstraintViolation",
    "IndexRegistry",
    "MISSING",
    "RelationshipConstraint",
    "UniquenessConstraint",
    "LockManager",
    "Query",
    "QueryResult",
    "Transaction",
    "Workflow",
    "WorkflowOutcome",
    "WorkflowStep",
]
