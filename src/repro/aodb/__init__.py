"""Database features over the actor runtime: indexes, queries, transactions,
and saga workflows — the "actor-oriented database" layer."""

from .constraints import (
    AuditReport,
    ConstraintViolation,
    RelationshipConstraint,
    UniquenessConstraint,
)
from .database import AodbDatabase
from .index import MISSING, IndexRegistry
from .query import Query, QueryResult
from .transactions import LockManager, Transaction
from .views import (
    MaterializedView,
    MaterializedViewHandle,
    PullViewHandle,
    ViewDef,
    ViewRegistry,
)
from .workflow import Workflow, WorkflowOutcome, WorkflowStep

__all__ = [
    "AodbDatabase",
    "AuditReport",
    "ConstraintViolation",
    "IndexRegistry",
    "MISSING",
    "MaterializedView",
    "MaterializedViewHandle",
    "PullViewHandle",
    "RelationshipConstraint",
    "UniquenessConstraint",
    "LockManager",
    "Query",
    "QueryResult",
    "Transaction",
    "ViewDef",
    "ViewRegistry",
    "Workflow",
    "WorkflowOutcome",
    "WorkflowStep",
]
