"""A small declarative query layer over actors.

The paper notes that "declarative queries cannot access data across actors,
and thus needed to be decomposed by the developer" — this module is exactly
that decomposition, packaged once: restrict a set of actors of one type via
indexes (or the extent), then fan out a method call to the survivors and
collect results, optionally filtering and projecting.

Example::

    rows = await (
        db.query("Cow")
        .where(owner_id="farmer-1")
        .call("current_location")
        .run()
    )
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import AodbDatabase


class QueryResult:
    """One row per actor: its id plus the value its method returned."""

    __slots__ = ("actor_id", "value")

    def __init__(self, actor_id: str, value: Any) -> None:
        self.actor_id = actor_id
        self.value = value

    def __repr__(self) -> str:
        return f"QueryResult({self.actor_id!r}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QueryResult)
            and other.actor_id == self.actor_id
            and other.value == self.value
        )


class Query:
    """A fluent, immutable query builder.

    Each step returns a *new* ``Query`` with the step applied, so a
    partially built query can be kept and extended along different
    branches without the branches aliasing each other's criteria::

        base = db.query("Sensor").where(project="bridge-a")
        hot = base.filter_values(lambda v: v > 100)   # base is unchanged
    """

    def __init__(self, database: "AodbDatabase", type_name: str) -> None:
        self._db = database
        self._type_name = type_name
        self._criteria: dict[str, object] = {}
        self._method: str | None = None
        self._args: tuple = ()
        self._kwargs: dict[str, Any] = {}
        self._predicate: Callable[[Any], bool] | None = None
        self._limit: int | None = None

    def _clone(self) -> "Query":
        copy = Query(self._db, self._type_name)
        copy._criteria = dict(self._criteria)
        copy._method = self._method
        copy._args = self._args
        copy._kwargs = dict(self._kwargs)
        copy._predicate = self._predicate
        copy._limit = self._limit
        return copy

    def where(self, **criteria: object) -> "Query":
        """Restrict to actors whose indexed attributes equal these values."""
        for attr in criteria:
            if not self._db.indexes.has_index(self._type_name, attr):
                raise QueryError(
                    f"{self._type_name}.{attr} is not indexed; "
                    "declare an index or drop the criterion"
                )
        copy = self._clone()
        copy._criteria.update(criteria)
        return copy

    def call(self, method: str, *args: Any, **kwargs: Any) -> "Query":
        """Fan out ``method(*args, **kwargs)`` to every matching actor."""
        copy = self._clone()
        copy._method = method
        copy._args = args
        copy._kwargs = kwargs
        return copy

    def filter_values(self, predicate: Callable[[Any], bool]) -> "Query":
        """Keep only rows whose returned value satisfies ``predicate``."""
        copy = self._clone()
        copy._predicate = predicate
        return copy

    def limit(self, count: int) -> "Query":
        """Truncate the *candidate set* (by sorted actor id) before fan-out."""
        if count < 0:
            raise QueryError("limit must be >= 0")
        copy = self._clone()
        copy._limit = count
        return copy

    def candidate_ids(self) -> list[str]:
        """Resolve the candidate actor ids without fanning out."""
        if self._criteria:
            ids = self._db.indexes.lookup_many(self._type_name, self._criteria)
        else:
            ids = self._db.indexes.extent(self._type_name)
        if self._limit is not None:
            ids = ids[: self._limit]
        return ids

    async def run(self) -> list[QueryResult]:
        """Execute: resolve candidates, fan out, gather, filter."""
        if self._method is None:
            raise QueryError("query has no .call(method); nothing to execute")
        ids = self.candidate_ids()
        runtime = self._db.runtime
        futures = [
            runtime.ref(self._type_name, actor_id).ask(
                self._method, *self._args, **self._kwargs
            )
            for actor_id in ids
        ]
        values = await runtime.scheduler.gather(futures)
        rows = [QueryResult(actor_id, value) for actor_id, value in zip(ids, values)]
        if self._predicate is not None:
            rows = [row for row in rows if self._predicate(row.value)]
        return rows

    async def count(self) -> int:
        """Number of candidate actors (no fan-out unless filtering)."""
        if self._predicate is None:
            return len(self.candidate_ids())
        return len(await self.run())

    async def ids(self) -> list[str]:
        """The candidate actor ids (post-filter if a predicate is set)."""
        if self._predicate is None:
            return self.candidate_ids()
        return [row.actor_id for row in await self.run()]
