"""Secondary indexes over actor state.

The AODB vision (Bernstein et al., cited throughout the paper) enriches the
actor runtime with database features; indexing is the first of them.  An
index here maps ``(actor type, attribute) → value → set of actor ids`` and
is maintained *eagerly*: actors update it synchronously as part of the state
mutation (`Actor.set_indexed`), so a lookup immediately after a write
observes the write.

The registry also maintains per-type **extents** — the set of actor ids
known to exist — which gives the query layer something to scan when no
index applies.  Virtual actors conceptually always exist, so the extent
records every actor that has been activated or explicitly registered.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import IndexError_
from ..runtime.key import ActorKey


class _Missing:
    """Sentinel for "no value": distinct from None, which is indexable."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MISSING"


MISSING = _Missing()


class IndexRegistry:
    """Eagerly-maintained hash indexes plus per-type extents."""

    def __init__(self) -> None:
        # (type_name, attr) -> value -> set of actor ids
        self._indexes: dict[tuple[str, str], dict[object, set[str]]] = {}
        self._extents: dict[str, set[str]] = defaultdict(set)
        self.updates = 0
        self.lookups = 0

    # -- declaration ------------------------------------------------------------

    def declare(self, type_name: str, attr: str) -> None:
        """Create an (empty) index on ``type_name.attr``; idempotent."""
        self._indexes.setdefault((type_name, attr), {})

    def declare_for(self, actor_class: type) -> None:
        """Declare indexes for every attribute the class lists as indexed."""
        for attr in getattr(actor_class, "indexed_attributes", ()):
            self.declare(actor_class.__name__, attr)

    def has_index(self, type_name: str, attr: str) -> bool:
        """Whether an index exists on ``type_name.attr``."""
        return (type_name, attr) in self._indexes

    # -- maintenance -----------------------------------------------------------

    def update(
        self, key: ActorKey, attr: str, old_value: object, new_value: object
    ) -> None:
        """Move ``key`` from the old value's bucket to the new value's.

        ``old_value=MISSING`` inserts; ``new_value=MISSING`` removes.
        ``None`` is an ordinary, indexable value — an attribute explicitly
        set to None round-trips through lookups like any other (an earlier
        revision used None as the sentinel, which silently dropped such
        attributes from the index).  For backward compatibility None is
        still accepted in the *old_value* position as "no previous value":
        discarding from the None bucket is a no-op unless the actor really
        was indexed under None.  Unhashable values are rejected — index
        keys must be value-like.
        """
        index = self._indexes.get((key.type_name, attr))
        if index is None:
            raise IndexError_(
                f"no index declared on {key.type_name}.{attr}; "
                "declare it before updating"
            )
        self.updates += 1
        if old_value is not MISSING:
            bucket = index.get(old_value)
            if bucket is not None:
                bucket.discard(key.actor_id)
                if not bucket:
                    del index[old_value]
        if new_value is not MISSING:
            try:
                index.setdefault(new_value, set()).add(key.actor_id)
            except TypeError as exc:
                raise IndexError_(
                    f"unhashable index value for {key.type_name}.{attr}: "
                    f"{new_value!r}"
                ) from exc

    def remove_actor(self, key: ActorKey) -> None:
        """Purge an actor from every index and its extent (hard delete)."""
        for (type_name, _attr), index in self._indexes.items():
            if type_name != key.type_name:
                continue
            empty = [
                value
                for value, bucket in index.items()
                if bucket.discard(key.actor_id) or not bucket
            ]
            for value in empty:
                if not index[value]:
                    del index[value]
        self._extents[key.type_name].discard(key.actor_id)

    # -- extent ---------------------------------------------------------------

    def note_instance(self, type_name: str, actor_id: str) -> None:
        """Record that ``type_name/actor_id`` exists."""
        self._extents[type_name].add(actor_id)

    def extent(self, type_name: str) -> list[str]:
        """All known actor ids of a type, sorted for determinism."""
        return sorted(self._extents.get(type_name, ()))

    def extent_size(self, type_name: str) -> int:
        """Number of known instances of a type."""
        return len(self._extents.get(type_name, ()))

    # -- lookups -----------------------------------------------------------------

    def lookup(self, type_name: str, attr: str, value: object) -> list[str]:
        """Actor ids whose indexed ``attr`` equals ``value`` (sorted)."""
        index = self._indexes.get((type_name, attr))
        if index is None:
            raise IndexError_(f"no index declared on {type_name}.{attr}")
        self.lookups += 1
        return sorted(index.get(value, ()))

    def lookup_many(
        self, type_name: str, criteria: dict[str, object]
    ) -> list[str]:
        """Actor ids matching *all* indexed equality criteria (sorted)."""
        if not criteria:
            raise IndexError_("lookup_many requires at least one criterion")
        result: set[str] | None = None
        for attr, value in criteria.items():
            matches = set(self.lookup(type_name, attr, value))
            result = matches if result is None else result & matches
            if not result:
                return []
        return sorted(result or ())
