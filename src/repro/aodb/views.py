"""Incremental materialized views over the ingest stream.

The pull-based query layer (:mod:`repro.aodb.query`) decomposes a
declarative read into a fan-out over live actors — correct, but every
dashboard refresh re-reads every source actor, which collapses under the
paper's "98% inserts" workload the moment readers scale with writers.
Actor-oriented databases argue the runtime should instead maintain
*standing* query results as the writes flow through (ActorDB's
single-writer incremental view maintenance; Bernstein et al.'s indexing
and continuous-query directions).  This module is that feature:

- :class:`ViewDef` declares one standing query over a source actor type —
  a group key (a state attribute of the source), a fold kind
  (``aggregate`` | ``window`` | ``topk``) and a staleness bound;
- :class:`MaterializedView` is an ordinary durable virtual actor holding
  one *group's* fold state (actor id ``view::group``), so views shard by
  group key, place like any grain, and migrate/rebalance with the fleet;
- :class:`ViewRegistry` (``db.views``) hooks the ingestion write path:
  sources call :meth:`ViewRegistry.emit_from` with each freshly accepted
  batch, deltas coalesce per (source silo → shard) through a
  :class:`~repro.net.deltas.DeltaCoalescer` and ride the envelope batcher
  to the owning view actor, which folds them idempotently (per-stream
  sequence watermarks — the same watermark idea ``dedup_ingest`` uses);
- ``db.view(name)`` reads a registered view with **one ask per group
  asked**; ``db.view(name, source=..., group_by=...)`` falls back to a
  pull-based scan for unregistered shapes, folding ``view_sample`` rows
  client-side with the *same* fold code, so both paths agree bit-for-bit
  on aggregate results and the bench can compare their costs honestly.

Exactly-once, spelled out: delta emission is awaited by the source's
insert ack (at-least-once — lost flushes surface as retries of the same
sequence number), folding drops any sequence at or below the stream's
high-water mark (at-most-once), and flushes on one stream are chained in
FIFO order by the coalescer so the max-watermark test is sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import QueryError
from ..runtime.actor import Actor, actor_method

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.futures import Future
    from ..net.deltas import DeltaCoalescer
    from .database import AodbDatabase

VIEW_ACTOR_TYPE = "MaterializedView"
VIEW_KINDS = ("aggregate", "window", "topk")
RANK_FIELDS = ("mean", "max", "min", "count", "total")

#: Group value used when a view has no group key (one global shard).
GLOBAL_GROUP = "all"


def shard_id(view_name: str, group: str) -> str:
    """The view actor id owning ``group`` of ``view_name``."""
    return f"{view_name}::{group}"


# -- fold algebra (shared by view actors and the pull fallback) ----------------


def empty_stats() -> list[float]:
    """A fresh ``[count, total, vmin, vmax]`` accumulator."""
    return [0, 0.0, math.inf, -math.inf]


def fold_stats(
    target: list[float], count: int, total: float, vmin: float, vmax: float
) -> None:
    """Merge one delta into an accumulator (commutative, associative)."""
    target[0] += count
    target[1] += total
    if vmin < target[2]:
        target[2] = vmin
    if vmax > target[3]:
        target[3] = vmax


def stats_summary(stats: list[float] | None) -> dict:
    """The reader-facing shape of one accumulator."""
    if not stats or not stats[0]:
        return {"count": 0, "total": 0.0, "mean": None, "min": None, "max": None}
    count = int(stats[0])
    return {
        "count": count,
        "total": stats[1],
        "mean": stats[1] / count,
        "min": stats[2],
        "max": stats[3],
    }


def rank_value(stats: list[float], rank_by: str) -> float:
    """The ordering key a top-K view ranks entities by."""
    if rank_by == "mean":
        return stats[1] / stats[0] if stats[0] else 0.0
    if rank_by == "max":
        return stats[3]
    if rank_by == "min":
        return stats[2]
    if rank_by == "count":
        return stats[0]
    return stats[1]  # total


@dataclass(frozen=True)
class ViewDef:
    """One standing query: what to fold, how to shard, how stale is OK.

    ``group_by`` names a state attribute of the source actor (``None``
    folds everything into the single :data:`GLOBAL_GROUP` shard).  For
    ``window`` views, points bucket by ``floor(ts / window_seconds)`` and
    the shard retains the ``max_buckets`` most recent buckets.  For
    ``topk`` views the shard keeps bounded per-entity stats — at most
    ``4k`` (min 32) entities, evicting the lowest-ranked — plus exact
    group totals, so the exactly-once accounting stays exact even when
    the entity table is pruned.  ``staleness_bound`` is the freshness
    contract the ``view-staleness`` SLO rule and the bench assert.
    """

    name: str
    source: str
    group_by: str | None = None
    kind: str = "aggregate"
    window_seconds: float = 60.0
    max_buckets: int = 16
    k: int = 10
    rank_by: str = "mean"
    staleness_bound: float = 1.0

    def validate(self) -> None:
        if not self.name or "::" in self.name:
            raise QueryError(f"view name {self.name!r} must be non-empty "
                             "and must not contain '::'")
        if self.kind not in VIEW_KINDS:
            raise QueryError(f"view {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "window" and self.window_seconds <= 0:
            raise QueryError(f"view {self.name!r}: window_seconds must be > 0")
        if self.max_buckets < 1:
            raise QueryError(f"view {self.name!r}: max_buckets must be >= 1")
        if self.k < 1:
            raise QueryError(f"view {self.name!r}: k must be >= 1")
        if self.rank_by not in RANK_FIELDS:
            raise QueryError(
                f"view {self.name!r}: unknown rank_by {self.rank_by!r}"
            )
        if self.staleness_bound <= 0:
            raise QueryError(f"view {self.name!r}: staleness_bound must be > 0")

    @property
    def entity_capacity(self) -> int:
        """Bounded top-K entity table size (pruned past this)."""
        return max(4 * self.k, 32)


class MaterializedView(Actor):
    """One group's fold state — an ordinary durable, migratable grain.

    State document:

    ``watermarks``
        per-stream flush high-water marks (the exactly-once ledger);
    ``totals``
        the group's exact ``[count, total, vmin, vmax]`` (all kinds);
    ``buckets``
        ``{bucket_start: stats}`` for ``window`` views (bounded);
    ``entities``
        ``{entity_id: stats}`` for ``topk`` views (bounded);
    ``applied`` / ``duplicates``
        flush accounting the bench's zero-loss invariant reads back.
    """

    durable = True

    @property
    def view_name(self) -> str:
        return self.actor_id.split("::", 1)[0]

    @property
    def group(self) -> str:
        parts = self.actor_id.split("::", 1)
        return parts[1] if len(parts) > 1 else GLOBAL_GROUP

    def _definition(self) -> ViewDef:
        database = self.context.runtime.database
        views = getattr(database, "views", None)
        if views is None:
            raise QueryError(
                f"view actor {self.actor_id!r} needs an AodbDatabase with a "
                "ViewRegistry on this runtime"
            )
        return views.definition(self.view_name)

    async def apply_deltas(
        self, stream: str, seq: int, entries: list[tuple]
    ) -> dict:
        """Fold one coalesced flush; idempotent by (stream, seq).

        ``entries`` rows are ``(group, entity, bucket, count, total, vmin,
        vmax)`` as shipped by :class:`~repro.net.deltas.DeltaCoalescer`.
        A duplicated delivery (network duplication, an at-least-once
        retry whose first attempt did land) is acknowledged without
        re-folding: the stream's sequences arrive in order (FIFO-chained
        flushes), so ``seq <= watermark`` identifies every replay.
        """
        watermarks = self.state.setdefault("watermarks", {})
        mark = watermarks.get(stream, 0)
        if seq <= mark:
            self.state["duplicates"] = self.state.get("duplicates", 0) + 1
            self.mark_dirty()
            return {"applied": 0, "duplicate": True}
        watermarks[stream] = seq
        defn = self._definition()
        totals = self.state.get("totals")
        if totals is None:
            totals = self.state["totals"] = empty_stats()
        applied = 0
        for _group, entity, bucket, count, total, vmin, vmax in entries:
            fold_stats(totals, count, total, vmin, vmax)
            applied += count
            if defn.kind == "window":
                self._fold_bucket(defn, bucket, count, total, vmin, vmax)
            elif defn.kind == "topk":
                self._fold_entity(defn, entity, count, total, vmin, vmax)
        self.state["applied"] = self.state.get("applied", 0) + applied
        self.mark_dirty()
        return {"applied": applied, "duplicate": False}

    def _fold_bucket(
        self,
        defn: ViewDef,
        bucket: float,
        count: int,
        total: float,
        vmin: float,
        vmax: float,
    ) -> None:
        buckets = self.state.setdefault("buckets", {})
        stats = buckets.get(bucket)
        if stats is None:
            stats = buckets[bucket] = empty_stats()
        fold_stats(stats, count, total, vmin, vmax)
        while len(buckets) > defn.max_buckets:
            del buckets[min(buckets)]  # evict the oldest window

    def _fold_entity(
        self,
        defn: ViewDef,
        entity: str,
        count: int,
        total: float,
        vmin: float,
        vmax: float,
    ) -> None:
        entities = self.state.setdefault("entities", {})
        stats = entities.get(entity)
        if stats is None:
            stats = entities[entity] = empty_stats()
        fold_stats(stats, count, total, vmin, vmax)
        if len(entities) > defn.entity_capacity:
            evict = min(
                entities,
                key=lambda e: (rank_value(entities[e], defn.rank_by), e),
            )
            del entities[evict]

    # -- reads (each one cheap, single-shard) ----------------------------------

    @actor_method(read_only=True)
    async def get(self) -> dict:
        """The group's aggregate — the dashboard's single cheap ask."""
        summary = stats_summary(self.state.get("totals"))
        summary["group"] = self.group
        return summary

    @actor_method(read_only=True)
    async def buckets(self, last: int | None = None) -> list:
        """Windowed rollup, oldest first: ``[bucket_start, summary]``."""
        buckets = self.state.get("buckets", {})
        ordered = sorted(buckets)
        if last is not None:
            ordered = ordered[-last:]
        return [[bucket, stats_summary(buckets[bucket])] for bucket in ordered]

    @actor_method(read_only=True)
    async def top(self, k: int | None = None) -> list:
        """Top-K entities by the view's rank field, best first."""
        defn = self._definition()
        entities = self.state.get("entities", {})
        ordered = sorted(
            entities,
            key=lambda e: (-rank_value(entities[e], defn.rank_by), e),
        )
        limit = defn.k if k is None else min(k, defn.k)
        return [
            {"entity": entity, **stats_summary(entities[entity])}
            for entity in ordered[:limit]
        ]

    @actor_method(read_only=True)
    async def fold_accounting(self) -> dict:
        """Exactly-once ledger: applied points, duplicate flushes, marks."""
        return {
            "group": self.group,
            "applied": self.state.get("applied", 0),
            "duplicates": self.state.get("duplicates", 0),
            "watermarks": dict(self.state.get("watermarks", {})),
            "count": int((self.state.get("totals") or [0])[0]),
        }


class MaterializedViewHandle:
    """Reads over a registered view: one ask per group asked."""

    materialized = True

    def __init__(self, database: "AodbDatabase", definition: ViewDef) -> None:
        self._db = database
        self.definition = definition

    def _ref(self, group: str | None):
        group = GLOBAL_GROUP if group is None else str(group)
        return self._db.runtime.ref(
            VIEW_ACTOR_TYPE, shard_id(self.definition.name, group)
        )

    async def get(self, group: str | None = None) -> dict:
        return await self._ref(group).ask("get")

    async def buckets(self, group: str | None = None, last: int | None = None):
        return await self._ref(group).ask("buckets", last)

    async def top(self, group: str | None = None, k: int | None = None):
        return await self._ref(group).ask("top", k)

    async def fold_accounting(self, group: str | None = None) -> dict:
        return await self._ref(group).ask("fold_accounting")


class PullViewHandle:
    """The fallback for unregistered shapes: scan-and-fold via the query
    layer.  One ask **per source actor in the extent** per read — the cost
    the materialized path exists to avoid — folding ``view_sample`` rows
    with the same algebra, so results agree with a registered view."""

    materialized = False

    def __init__(
        self, database: "AodbDatabase", source: str, group_by: str | None
    ) -> None:
        self._db = database
        self.source = source
        self.group_by = group_by

    async def get(self, group: str | None = None) -> dict:
        group = GLOBAL_GROUP if group is None else str(group)
        rows = await (
            self._db.query(self.source).call("view_sample", self.group_by).run()
        )
        stats = empty_stats()
        for row in rows:
            sample = row.value
            if sample["group"] != group or not sample["count"]:
                continue
            fold_stats(
                stats,
                sample["count"],
                sample["total"],
                sample["vmin"],
                sample["vmax"],
            )
        summary = stats_summary(stats)
        summary["group"] = group
        return summary


class ViewRegistry:
    """Standing-query registry plus the write-path delta plumbing.

    Owned by :class:`~repro.aodb.database.AodbDatabase` (``db.views``).
    Source actors reach it duck-typed through ``runtime.database`` — the
    ingest path never imports this module — and call :meth:`emit_from`
    with each freshly accepted batch; readers come in through
    ``db.view(...)``.  ``journal`` is a duck-typed flight-recorder ring
    (wired by :meth:`~repro.obs.recorder.FlightRecorder.attach`).
    """

    def __init__(self, database: "AodbDatabase") -> None:
        self.database = database
        self._definitions: dict[str, ViewDef] = {}
        self._by_source: dict[str, list[ViewDef]] = {}
        self._coalescers: dict[str, "DeltaCoalescer"] = {}
        # Resilience for the flush ask; None falls through to the
        # runtime config's default_call_deadline / default_retry_policy.
        self.call_deadline: float | None = None
        self.call_retry = None
        self.journal = None
        self._metrics_registered = False
        self._fold_seconds = None
        self.duplicate_flushes = 0
        self.failed_flushes = 0

    # -- registration ----------------------------------------------------------

    def register(self, definition: ViewDef) -> ViewDef:
        """Register one standing query (source type must exist first)."""
        definition.validate()
        self.database.runtime.actor_type(definition.source)  # fail fast
        if definition.name in self._definitions:
            raise QueryError(f"view {definition.name!r} already registered")
        self.database.register_actor(MaterializedView)  # idempotent
        self._definitions[definition.name] = definition
        self._by_source.setdefault(definition.source, []).append(definition)
        self._register_metrics()
        return definition

    def definition(self, name: str) -> ViewDef:
        definition = self._definitions.get(name)
        if definition is None:
            raise QueryError(f"no registered view named {name!r}")
        return definition

    def names(self) -> list[str]:
        return sorted(self._definitions)

    def registered(self, name: str) -> bool:
        return name in self._definitions

    def has_views_for(self, type_name: str) -> bool:
        """Write-path fast check: does this source type feed any view?"""
        return type_name in self._by_source

    # -- delta emission (the ingestion write path calls this) ------------------

    def emit_from(
        self, actor: Actor, batches: dict[str, list[tuple[float, float]]]
    ) -> "list[Future[int]]":
        """Emit deltas for one accepted ingest; returns ack tickets.

        The caller gathers the tickets alongside its storage futures, so
        its insert ack covers view maintenance — that await is what turns
        at-least-once delivery into exactly-once folding.
        """
        definitions = self._by_source.get(actor.key.type_name)
        if not definitions:
            return []
        coalescer = self._coalescer(actor.context.silo_id)
        entity = actor.actor_id
        tickets: "list[Future[int]]" = []
        overall: list[float] | None = None
        for definition in definitions:
            if definition.group_by is None:
                group = GLOBAL_GROUP
            else:
                group = str(actor.state.get(definition.group_by))
            shard = shard_id(definition.name, group)
            if definition.kind == "window":
                # Window widths vary per definition, so bucketing cannot
                # be shared the way the overall fold below is.
                window_folds: dict[float, list[float]] = {}
                width = definition.window_seconds
                for points in batches.values():
                    for ts, value in points:
                        bucket = math.floor(ts / width) * width
                        stats = window_folds.get(bucket)
                        if stats is None:
                            stats = window_folds[bucket] = empty_stats()
                        fold_stats(stats, 1, value, value, value)
                for bucket in sorted(window_folds):
                    stats = window_folds[bucket]
                    tickets.append(
                        coalescer.emit(
                            shard, group, entity, bucket,
                            int(stats[0]), stats[1], stats[2], stats[3],
                        )
                    )
            else:
                if overall is None:
                    overall = empty_stats()
                    for points in batches.values():
                        for _ts, value in points:
                            fold_stats(overall, 1, value, value, value)
                if not overall[0]:
                    continue
                tickets.append(
                    coalescer.emit(
                        shard, group, entity, 0.0,
                        int(overall[0]), overall[1], overall[2], overall[3],
                    )
                )
        return tickets

    def _coalescer(self, silo_id: str) -> "DeltaCoalescer":
        coalescer = self._coalescers.get(silo_id)
        if coalescer is None:
            from ..net.deltas import DeltaCoalescer

            runtime = self.database.runtime
            coalescer = DeltaCoalescer(
                runtime.scheduler,
                self._make_send(silo_id),
                source=silo_id,
                max_delay=runtime.config.view_delta_max_delay,
                max_keys=runtime.config.view_delta_max_keys,
            )
            self._coalescers[silo_id] = coalescer
        return coalescer

    def _make_send(self, silo_id: str):
        async def send(
            shard: str, stream: str, seq: int, entries: list
        ) -> Any:
            runtime = self.database.runtime
            tracer = runtime.tracer
            started = runtime.scheduler.now
            span = None
            if tracer.enabled:
                span = tracer.begin(
                    f"view-fold {shard}#{seq}", "view-fold", stream, started
                )
            journal = self.journal
            if journal is not None:
                journal.record("view-flush", shard, f"#{seq} x{len(entries)}")
            ref = runtime.ref(VIEW_ACTOR_TYPE, shard, caller_endpoint=silo_id)
            try:
                result = await ref.ask(
                    "apply_deltas",
                    stream,
                    seq,
                    list(entries),
                    deadline=self.call_deadline,
                    retry=self.call_retry,
                )
            except Exception as exc:
                self.failed_flushes += 1
                if journal is not None:
                    journal.record("view-flush-failed", shard, repr(exc))
                if span is not None:
                    tracer.finish(
                        span, runtime.scheduler.now, "error", repr(exc)
                    )
                raise
            if span is not None:
                tracer.finish(span, runtime.scheduler.now)
            if self._fold_seconds is not None:
                self._fold_seconds.observe(runtime.scheduler.now - started)
            if result.get("duplicate"):
                self.duplicate_flushes += 1
                if journal is not None:
                    journal.record("view-flush-duplicate", shard, f"#{seq}")
            return result

        return send

    # -- observability ---------------------------------------------------------

    def staleness_seconds(self) -> float:
        """Age of the oldest unacked delta (0.0 when fully folded).

        This is the freshness bound a reader observes: every delta older
        than this is already folded into its view shard.
        """
        now = self.database.runtime.scheduler.now
        worst = 0.0
        for coalescer in self._coalescers.values():
            oldest = coalescer.oldest_pending()
            if oldest is not None and now - oldest > worst:
                worst = now - oldest
        return worst

    def pending_deltas(self) -> int:
        return sum(c.pending_deltas() for c in self._coalescers.values())

    def deltas_emitted(self) -> int:
        return sum(c.deltas_emitted for c in self._coalescers.values())

    def flushes(self) -> int:
        return sum(c.flushes for c in self._coalescers.values())

    def _register_metrics(self) -> None:
        if self._metrics_registered:
            return
        registry = self.database.runtime.metrics
        if registry is None:  # pragma: no cover - runtimes always have one
            return
        self._metrics_registered = True
        registry.register_probe("views.registered", lambda: len(self._definitions))
        registry.register_probe("views.staleness_seconds", self.staleness_seconds)
        registry.register_probe("views.pending_deltas", self.pending_deltas)
        registry.register_probe("views.deltas_emitted", self.deltas_emitted)
        registry.register_probe("views.flushes", self.flushes)
        registry.register_probe(
            "views.duplicate_flushes", lambda: self.duplicate_flushes
        )
        registry.register_probe(
            "views.failed_flushes", lambda: self.failed_flushes
        )
        self._fold_seconds = registry.histogram("views.fold_seconds")
