"""repro — actor-oriented databases for IoT data platforms.

A from-scratch Python reproduction of *"Modeling and Building IoT Data
Platforms with Actor-Oriented Databases"* (Wang et al., EDBT 2019):

- :mod:`repro.kernel` — deterministic discrete-event scheduling kernel;
- :mod:`repro.net` / :mod:`repro.storage` — simulated network and cloud
  storage substrates (DynamoDB-like provisioned KV store, RDS-like system
  store, archive log);
- :mod:`repro.runtime` — an Orleans-style virtual-actor runtime (the AODB
  core): activation on demand, turn-based concurrency, placement
  strategies, durable state, timers & reminders, silo lifecycle;
- :mod:`repro.aodb` — database features over the runtime: secondary
  indexes, declarative queries, multi-actor transactions, saga workflows;
- :mod:`repro.shm` — case study 1: the structural health monitoring data
  platform (the paper's benchmarked prototype);
- :mod:`repro.cattle` — case study 2: beef cattle tracking & tracing, in
  both the actor-heavy (Fig. 3) and versioned-object (Fig. 5) models;
- :mod:`repro.bench` — the benchmarking tool and experiment drivers that
  regenerate every figure of the paper's evaluation.

Quickstart::

    from repro import AodbDatabase, AodbRuntime, Actor, Scheduler

    class Greeter(Actor):
        async def greet(self, name):
            return f"hello {name}"

    scheduler = Scheduler()
    runtime = AodbRuntime(scheduler)
    runtime.add_silo("silo-1", cores=2)
    db = AodbDatabase(runtime)
    db.register_actor(Greeter)

    async def main():
        return await db.ref("Greeter", "g").greet("world")

    print(scheduler.run_until_complete(main()))
"""

from .aodb import AodbDatabase, Transaction, Workflow
from .errors import FencedWriteError, QuarantinedSiloError, ReproError
from .kernel import Scheduler
from .runtime import (
    Actor,
    ActorKey,
    ActorRef,
    AodbRuntime,
    RuntimeConfig,
    WritePolicy,
    actor_method,
)

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "ActorKey",
    "ActorRef",
    "AodbDatabase",
    "AodbRuntime",
    "FencedWriteError",
    "QuarantinedSiloError",
    "ReproError",
    "RuntimeConfig",
    "Scheduler",
    "Transaction",
    "Workflow",
    "WritePolicy",
    "actor_method",
    "__version__",
]
