"""Network fault injection for the chaos harness.

A :class:`NetworkFaultInjector` attached to a :class:`~repro.net.network.
Network` perturbs message transfers inside a scripted time window:

- **loss** — the transfer never completes (the message vanishes in flight,
  exactly like a dropped packet: the sender sees silence, not an error, so
  only a call deadline can surface it);
- **duplication** — the invocation is delivered twice (the runtime re-enqueues
  it; ask replies are naturally deduplicated by the one-shot reply future,
  one-way handlers see the duplicate — which is what makes the injector a
  good idempotency test);
- **extra delay** — an additional latency charge per transfer, modeling
  congestion.

All randomness comes from a caller-provided seeded stream, so chaos runs are
bit-for-bit reproducible.
"""

from __future__ import annotations

import math
import random

__all__ = ["NetworkFaultInjector"]


class NetworkFaultInjector:
    """Probabilistic, time-windowed message faults over one network."""

    def __init__(
        self,
        rng: random.Random,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        extra_delay: float = 0.0,
        start: float = 0.0,
        end: float = math.inf,
        protected: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        for name, rate in (("loss_rate", loss_rate), ("duplication_rate", duplication_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        self._rng = rng
        self.loss_rate = loss_rate
        self.duplication_rate = duplication_rate
        self.extra_delay = extra_delay
        self.start = start
        self.end = end
        # Endpoints whose traffic is never faulted (e.g. the system-store
        # path, or a control plane the experiment wants reliable).
        self.protected = frozenset(protected)
        self.injected_losses = 0
        self.injected_duplicates = 0

    def _applies(self, source: str, target: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return source not in self.protected and target not in self.protected

    def drops(self, source: str, target: str, now: float) -> bool:
        """Whether this transfer is lost in flight."""
        if not self._applies(source, target, now) or self.loss_rate <= 0:
            return False
        if self._rng.random() < self.loss_rate:
            self.injected_losses += 1
            return True
        return False

    def duplicates(self, source: str, target: str, now: float) -> bool:
        """Whether this delivery arrives twice."""
        if not self._applies(source, target, now) or self.duplication_rate <= 0:
            return False
        if self._rng.random() < self.duplication_rate:
            self.injected_duplicates += 1
            return True
        return False

    def extra_delay_for(self, source: str, target: str, now: float) -> float:
        """Additional latency charged to this transfer."""
        if not self._applies(source, target, now):
            return 0.0
        return self.extra_delay
