"""Network fault injection for the chaos harness.

A :class:`NetworkFaultInjector` attached to a :class:`~repro.net.network.
Network` perturbs message transfers inside a scripted time window:

- **loss** — the transfer never completes (the message vanishes in flight,
  exactly like a dropped packet: the sender sees silence, not an error, so
  only a call deadline can surface it);
- **duplication** — the invocation is delivered twice (the runtime re-enqueues
  it; ask replies are naturally deduplicated by the one-shot reply future,
  one-way handlers see the duplicate — which is what makes the injector a
  good idempotency test);
- **extra delay** — an additional latency charge per transfer, modeling
  congestion.

All randomness comes from a caller-provided seeded stream, so chaos runs are
bit-for-bit reproducible.
"""

from __future__ import annotations

import math
import random

__all__ = ["NetworkFaultInjector", "PartitionInjector"]


class NetworkFaultInjector:
    """Probabilistic, time-windowed message faults over one network."""

    def __init__(
        self,
        rng: random.Random,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        extra_delay: float = 0.0,
        start: float = 0.0,
        end: float = math.inf,
        protected: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        rates = (("loss_rate", loss_rate), ("duplication_rate", duplication_rate))
        for name, rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        self._rng = rng
        self.loss_rate = loss_rate
        self.duplication_rate = duplication_rate
        self.extra_delay = extra_delay
        self.start = start
        self.end = end
        # Endpoints whose traffic is never faulted (e.g. the system-store
        # path, or a control plane the experiment wants reliable).
        self.protected = frozenset(protected)
        self.injected_losses = 0
        self.injected_duplicates = 0

    def _applies(self, source: str, target: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return source not in self.protected and target not in self.protected

    def drops(self, source: str, target: str, now: float) -> bool:
        """Whether this transfer is lost in flight."""
        if not self._applies(source, target, now) or self.loss_rate <= 0:
            return False
        if self._rng.random() < self.loss_rate:
            self.injected_losses += 1
            return True
        return False

    def duplicates(self, source: str, target: str, now: float) -> bool:
        """Whether this delivery arrives twice."""
        if not self._applies(source, target, now) or self.duplication_rate <= 0:
            return False
        if self._rng.random() < self.duplication_rate:
            self.injected_duplicates += 1
            return True
        return False

    def extra_delay_for(self, source: str, target: str, now: float) -> float:
        """Additional latency charged to this transfer."""
        if not self._applies(source, target, now):
            return 0.0
        return self.extra_delay


class PartitionInjector:
    """Scripted bidirectional network partitions between endpoint groups.

    Each scenario is ``(groups, start, end)``: during ``[start, end)`` any
    transfer whose source and target fall in *different* named groups is
    dropped, in both directions.  Endpoints not named in any group are
    unaffected — they can still reach everyone — which lets an experiment
    split the silo fabric while keeping, say, the client reachable.

    The pseudo-endpoint ``"system-store"`` may be named in a group to model
    a silo losing sight of cluster system storage (the membership table):
    the runtime consults :meth:`blocks` for its lease refreshes even though
    the store is not a real network endpoint.  Partitions are deterministic
    (no randomness), so the same script always splits the same messages.
    """

    def __init__(
        self,
        scenarios: list[tuple[list[set[str] | frozenset[str]], float, float]],
    ) -> None:
        self._scenarios: list[tuple[list[frozenset[str]], float, float]] = []
        for groups, start, end in scenarios:
            if end < start:
                raise ValueError("partition window must have end >= start")
            frozen = [frozenset(group) for group in groups]
            if len(frozen) < 2:
                raise ValueError("a partition needs at least two groups")
            self._scenarios.append((frozen, start, end))
        self.blocked_messages = 0

    def _group_of(
        self, groups: list[frozenset[str]], endpoint: str
    ) -> int | None:
        for index, group in enumerate(groups):
            if endpoint in group:
                return index
        return None

    def blocks(self, source: str, target: str, now: float) -> bool:
        """Whether a transfer between these endpoints is cut right now.

        True iff some active scenario names both endpoints in different
        groups.  Does not bump the counter — callers that actually drop a
        message call :meth:`record_blocked`.
        """
        for groups, start, end in self._scenarios:
            if not start <= now < end:
                continue
            src_group = self._group_of(groups, source)
            dst_group = self._group_of(groups, target)
            if src_group is None or dst_group is None:
                continue
            if src_group != dst_group:
                return True
        return False

    def record_blocked(self, count: int = 1) -> None:
        """Account ``count`` messages dropped at a partition boundary."""
        self.blocked_messages += count

    def heals_at(self) -> float:
        """Virtual time when the last scripted partition heals."""
        return max((end for _groups, _start, end in self._scenarios), default=0.0)
