"""Latency models for the simulated network.

A latency model maps one message transfer to a delay in seconds.  Models are
deliberately simple and composable; all randomness comes from a stream that
the caller supplies, keeping simulations deterministic.
"""

from __future__ import annotations

import math
import random
from typing import Protocol


class LatencyModel(Protocol):
    """Anything that can produce a per-message delay in seconds."""

    def sample(self, rng: random.Random) -> float:
        """Return the delay, in seconds, for one message."""
        ...  # pragma: no cover - protocol


class ConstantLatency:
    """Always the same delay — useful for tests and tight calibration."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency must be >= 0")
        self.seconds = seconds

    def sample(self, rng: random.Random) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantLatency({self.seconds})"


class UniformLatency:
    """Uniform jitter in ``[low, high]`` — a plain LAN approximation."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency:
    """Heavy-tailed latency, parameterized by median and tail dispersion.

    Real datacenter RPC latency is famously right-skewed; a log-normal with a
    modest ``sigma`` captures the occasional slow transfer without making the
    common case noisy.
    """

    def __init__(self, median: float, sigma: float = 0.25) -> None:
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        if self.sigma == 0:
            return self.median
        return rng.lognormvariate(self._mu, self.sigma)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


ZERO_LATENCY = ConstantLatency(0.0)
