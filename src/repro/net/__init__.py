"""Simulated network substrate: endpoints, transfers and latency models."""

from .faults import NetworkFaultInjector, PartitionInjector
from .latency import (
    ZERO_LATENCY,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from .network import Network, NetworkStats

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Network",
    "NetworkFaultInjector",
    "NetworkStats",
    "PartitionInjector",
    "UniformLatency",
    "ZERO_LATENCY",
]
