"""Adaptive per-destination delivery batching (the actor-message Nagle).

Every remote invocation pays a per-message cost twice: a latency sample on
the wire and a dispatch charge on the receiving silo.  Under ingestion load
the same (source endpoint, target silo) path carries hundreds of messages
per virtual millisecond, so the fast path coalesces them: messages joining
the batcher within a bounded window ride one *envelope* — one latency
sample, one loss roll, and a dispatch overhead the cohort shares (Reactors'
batched intra-actor execution; TritanDB's write batching).

Correctness properties the runtime relies on (regression-tested):

- **Per-sender FIFO.** Envelopes on one path depart and *resolve* in FIFO
  order (a flush waits for its predecessor's delivery before releasing its
  members), and members resolve in join order, so two messages from the
  same sender to the same actor can never reorder.
- **Per-message policies.** The batcher only delays *delivery*; deadlines,
  retries and tracing all stay attached to individual invocations.  A
  deadline that lapses while its message sits in an open envelope fails
  exactly that message.
- **Bounded delay.** An envelope departs after ``max_delay`` virtual
  seconds or at ``max_size`` members, whichever comes first — and the
  window *adapts*: after two consecutive single-message envelopes on a path
  (traffic too sparse to coalesce), further messages depart immediately
  until coalescing resumes, so idle paths pay no batching latency at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.futures import _PENDING as _F_PENDING
from ..kernel.futures import Future
from ..kernel.scheduler import Scheduler
from .network import Network


@dataclass
class _OpenEnvelope:
    """One forming batch on a (source, target) path."""

    members: list[tuple[Future[tuple[float, int]], float]] = field(
        default_factory=list
    )
    opened_at: float = 0.0
    departed: bool = False


#: Consecutive single-message envelopes after which a path is considered
#: sparse and stops paying the batching delay.
SOLO_STREAK_LIMIT = 2

#: On a sparse path, every Nth envelope still holds the full window open (a
#: *probe*).  Without probes, immediate mode would be self-perpetuating:
#: cohort-1 envelopes keep the streak alive, so a path that went sparse once
#: (e.g. during sequential provisioning) could never rediscover coalescing
#: when load arrives.  With probes, at most PROBE_INTERVAL envelopes after
#: traffic picks up, one windowed envelope forms a cohort and the path flips
#: back to batching.
PROBE_INTERVAL = 8


class EnvelopeBatcher:
    """Coalesces same-path deliveries into bounded envelopes."""

    def __init__(
        self,
        network: Network,
        scheduler: Scheduler,
        max_size: int = 64,
        max_delay: float = 0.0002,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.network = network
        self.scheduler = scheduler
        self.max_size = max_size
        self.max_delay = max_delay
        self._open: dict[tuple[str, str], _OpenEnvelope] = {}
        # FIFO chain per path: each flush awaits the previous envelope's
        # delivery before resolving its own members.
        self._last_delivered: dict[tuple[str, str], Future[None]] = {}
        self._solo_streak: dict[tuple[str, str], int] = {}
        self.flushes = 0
        self.immediate_flushes = 0
        #: Optional flight-recorder ring (duck-typed; obs never imported here).
        self.journal = None
        #: Optional cohort-size histogram (a MetricsRegistry Histogram the
        #: runtime attaches) — the coalescing-effectiveness distribution.
        self.cohort_histogram = None

    def transfer(self, source: str, target: str) -> Future[tuple[float, int]]:
        """Join the open envelope on (source, target); await departure.

        Resolves to ``(elapsed, cohort)``: the virtual seconds this message
        spent between join and delivery (batch wait plus wire latency, which
        the caller attributes to its trace span's network component) and the
        number of messages that shared the envelope.
        """
        pair = (source, target)
        # One ticket per message: constructor frame and per-message name
        # formatting elided (the path is identified by the spawn names).
        ticket: Future[tuple[float, int]] = Future.__new__(Future)
        ticket._state = _F_PENDING
        ticket._value = None
        ticket._exception = None
        ticket._cb0 = None
        ticket._callbacks = None
        ticket.name = "envelope"
        joined_at = self.scheduler.now
        envelope = self._open.get(pair)
        fresh = envelope is None
        if fresh:
            envelope = _OpenEnvelope(opened_at=joined_at)
            self._open[pair] = envelope
        envelope.members.append((ticket, joined_at))
        if len(envelope.members) >= self.max_size:
            # Size bound hit: seal and ship on a fresh task (the door timer,
            # if one started, finds ``departed`` set and does nothing).
            self._seal(pair, envelope)
            self.scheduler.spawn(
                self._deliver(pair, envelope),
                name=f"envelope-full:{source}->{target}",
            )
        elif fresh:
            delay = self.max_delay
            streak = self._solo_streak.get(pair, 0)
            if (
                streak >= SOLO_STREAK_LIMIT
                and (streak - SOLO_STREAK_LIMIT + 1) % PROBE_INTERVAL != 0
            ):
                # Sparse path: recent envelopes never coalesced, so holding
                # the door open only adds latency.  Depart immediately —
                # except on probe envelopes, which re-test the path.
                delay = 0.0
                self.immediate_flushes += 1
            self.scheduler.spawn(
                self._depart_after(pair, envelope, delay),
                name=f"envelope:{source}->{target}",
            )
        return ticket

    async def _depart_after(
        self, pair: tuple[str, str], envelope: _OpenEnvelope, delay: float
    ) -> None:
        if delay > 0:
            await self.scheduler.sleep(delay)
        else:
            # Round-trip through the scheduler once so every message sent
            # at this same virtual instant still makes the envelope.
            await self.scheduler.sleep(0)
        if not envelope.departed:
            self._seal(pair, envelope)
            await self._deliver(pair, envelope)

    def _seal(self, pair: tuple[str, str], envelope: _OpenEnvelope) -> None:
        """Close the envelope; the next message on this path starts a new one."""
        envelope.departed = True
        if self._open.get(pair) is envelope:
            del self._open[pair]
        if len(envelope.members) <= 1:
            self._solo_streak[pair] = self._solo_streak.get(pair, 0) + 1
        else:
            self._solo_streak[pair] = 0

    async def _deliver(self, pair: tuple[str, str], envelope: _OpenEnvelope) -> None:
        self.flushes += 1
        cohort = len(envelope.members)
        histogram = self.cohort_histogram
        if histogram is not None:
            histogram.observe(cohort)
        journal = self.journal
        if journal is not None:
            journal.record("envelope", pair[1], cohort)
        previous = self._last_delivered.get(pair)
        delivered: Future[None] = Future("delivered")
        self._last_delivered[pair] = delivered
        try:
            delay = self.network.plan_envelope(pair[0], pair[1], cohort)
        except KeyError as exc:
            # The target endpoint vanished (silo torn down mid-flight):
            # surface the routing error on every member instead of hanging.
            for ticket, _joined_at in envelope.members:
                if not ticket.done():
                    ticket.set_exception(exc)
            delivered.set_result(None)
            return
        if delay is None:
            # The whole envelope was lost on the wire: its members park
            # forever (only caller-side deadlines turn that silence into
            # errors), but the path's FIFO chain must stay live so later
            # envelopes keep flowing.
            delivered.set_result(None)
            return
        if delay > 0:
            await self.scheduler.sleep(delay)
        if previous is not None and not previous.done():
            # Keep per-path FIFO even under stochastic latency: never
            # release this envelope before its predecessor delivered.
            await previous
        now = self.scheduler.now
        for ticket, joined_at in envelope.members:
            if not ticket.done():
                ticket.set_result((now - joined_at, cohort))
        delivered.set_result(None)
