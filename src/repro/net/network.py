"""A simulated message network between named endpoints.

The network knows three kinds of paths and charges a (possibly stochastic)
latency for each transfer:

- ``loopback``: sender and receiver are the same endpoint (same silo);
- ``lan``: two distinct endpoints in the cluster (silo to silo, or the
  benchmarking client to a silo);
- custom per-pair overrides for asymmetric topologies.

The actor runtime funnels every remote message through
:meth:`Network.transfer`, which is what makes placement strategies
(§5 of the paper: random vs. prefer-local) observable in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernel.futures import Future
from ..kernel.rng import RngRegistry
from ..kernel.scheduler import Scheduler
from .faults import NetworkFaultInjector, PartitionInjector
from .latency import ConstantLatency, LatencyModel, ZERO_LATENCY


@dataclass
class NetworkStats:
    """Counters the benchmarks read after a run."""

    messages: int = 0
    loopback_messages: int = 0
    remote_messages: int = 0
    lost_messages: int = 0
    duplicated_messages: int = 0
    partitioned_messages: int = 0
    total_latency: float = 0.0
    per_endpoint_sent: dict[str, int] = field(default_factory=dict)
    # Envelope accounting: wire transfers actually performed.  Without
    # batching every message is its own envelope; with batching
    # ``envelopes < messages`` and the gap is the saved per-message work.
    envelopes: int = 0
    batched_messages: int = 0
    largest_envelope: int = 0

    def record(
        self, source: str, loopback: bool, latency: float, count: int = 1
    ) -> None:
        self.messages += count
        if loopback:
            self.loopback_messages += count
        else:
            self.remote_messages += count
        self.total_latency += latency * count
        self.per_endpoint_sent[source] = self.per_endpoint_sent.get(source, 0) + count
        self.envelopes += 1
        if count > 1:
            self.batched_messages += count
        if count > self.largest_envelope:
            self.largest_envelope = count


class Network:
    """Latency-modeled transfers between registered endpoints."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: RngRegistry | None = None,
        loopback: LatencyModel | None = None,
        lan: LatencyModel | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._rng = (rng or RngRegistry(0)).stream("network")
        self.loopback_model = loopback or ZERO_LATENCY
        self.lan_model = lan or ConstantLatency(0.0005)
        self._endpoints: set[str] = set()
        self._overrides: dict[tuple[str, str], LatencyModel] = {}
        self.faults: NetworkFaultInjector | None = None
        self.partitions: PartitionInjector | None = None
        #: Latched True forever once any fault injector has been attached.
        #: Consumers that are only safe under exactly-once delivery (the
        #: runtime's invocation freelist) check this instead of ``faults``,
        #: because a detached injector may already have duplicated messages
        #: whose second delivery is still in flight.
        self.ever_faulted = False
        self.stats = NetworkStats()
        #: Optional flight-recorder ring (duck-typed — see repro.obs.recorder;
        #: the net layer never imports obs).  Partition blocks are recorded.
        self.journal = None

    def inject_faults(self, injector: NetworkFaultInjector | None) -> None:
        """Attach (or, with None, detach) a chaos fault injector."""
        if injector is not None:
            self.ever_faulted = True
        self.faults = injector

    def inject_partitions(self, injector: PartitionInjector | None) -> None:
        """Attach (or, with None, detach) a scripted partition injector."""
        self.partitions = injector

    def partitioned(self, source: str, target: str) -> bool:
        """Whether a scripted partition currently cuts this directed pair."""
        return self.partitions is not None and self.partitions.blocks(
            source, target, self._scheduler.now
        )

    def register(self, endpoint: str) -> None:
        """Add an endpoint; transfers to unknown endpoints are rejected."""
        self._endpoints.add(endpoint)

    def unregister(self, endpoint: str) -> None:
        """Remove an endpoint (a silo leaving the cluster)."""
        self._endpoints.discard(endpoint)

    def knows(self, endpoint: str) -> bool:
        """Return True if ``endpoint`` is registered."""
        return endpoint in self._endpoints

    def set_path_latency(self, source: str, target: str, model: LatencyModel) -> None:
        """Override the latency model for the directed pair (source, target)."""
        self._overrides[(source, target)] = model

    def latency_for(self, source: str, target: str) -> float:
        """Sample the delay for one message from ``source`` to ``target``."""
        if self._overrides:
            override = self._overrides.get((source, target))
            if override is not None:
                return override.sample(self._rng)
        if source == target:
            return self.loopback_model.sample(self._rng)
        return self.lan_model.sample(self._rng)

    def should_duplicate(self, source: str, target: str) -> bool:
        """Chaos hook: whether the delivery just transferred arrives twice.

        Consulted by the runtime after a successful transfer; duplication is
        a *delivery* phenomenon, so re-enqueueing is the receiver side's job.
        """
        if self.faults is None:
            return False
        if not self.faults.duplicates(source, target, self._scheduler.now):
            return False
        self.stats.duplicated_messages += 1
        return True

    async def transfer(self, source: str, target: str) -> float:
        """Delay the caller by one message latency and record stats.

        Returns the sampled delay in virtual seconds so callers (the actor
        runtime) can attribute it to a trace span without re-measuring.

        Raises :class:`KeyError` if either endpoint is unknown — an unknown
        target means cluster membership and the caller's routing disagree,
        which should fail loudly rather than silently deliver.

        When a fault injector is attached, the transfer may be *lost*: the
        awaiting task then parks on a future nothing resolves, exactly like
        a message dropped on the wire.  Only a caller-side deadline turns
        that silence into an error.
        """
        # transfer_many(source, target, 1) with the inner coroutine elided:
        # this runs once per unbatched message and once per reply.
        delay = self.plan_envelope(source, target, 1)
        if delay is None:
            lost: Future[None] = Future(f"lost:{source}->{target}")
            await lost
            return 0.0  # pragma: no cover - the future never resolves
        if delay > 0:
            await self._scheduler.sleep(delay)
        return delay

    def plan_envelope(self, source: str, target: str, count: int) -> float | None:
        """Commit one envelope of ``count`` messages to the wire.

        Validates endpoints, rolls the loss chance once for the whole
        envelope (a dropped envelope loses every message aboard, exactly
        like a lost datagram carrying a batched payload), samples its
        latency and records stats.  Returns the delay the envelope takes to
        arrive, or ``None`` when it was lost — the caller then parks the
        affected messages on futures nothing resolves.
        """
        # The body below is partitioned() + latency_for() + stats.record()
        # inlined: this runs once per unbatched message and once per reply,
        # so the method-call fan-out is part of the per-message bill.
        endpoints = self._endpoints
        if source not in endpoints:
            raise KeyError(f"unknown source endpoint {source!r}")
        if target not in endpoints:
            raise KeyError(f"unknown target endpoint {target!r}")
        stats = self.stats
        partitions = self.partitions
        if partitions is not None and partitions.blocks(
            source, target, self._scheduler.now
        ):
            partitions.record_blocked(count)
            stats.partitioned_messages += count
            stats.lost_messages += count
            journal = self.journal
            if journal is not None:
                journal.record("partition-block", source, target)
            return None
        faults = self.faults
        if faults is not None and faults.drops(source, target, self._scheduler.now):
            stats.lost_messages += count
            return None
        loopback = source == target
        override = self._overrides.get((source, target)) if self._overrides else None
        if override is not None:
            delay = override.sample(self._rng)
        elif loopback:
            delay = self.loopback_model.sample(self._rng)
        else:
            delay = self.lan_model.sample(self._rng)
        if faults is not None:
            delay += faults.extra_delay_for(source, target, self._scheduler.now)
        stats.messages += count
        if loopback:
            stats.loopback_messages += count
        else:
            stats.remote_messages += count
        stats.total_latency += delay * count
        sent = stats.per_endpoint_sent
        sent[source] = sent.get(source, 0) + count
        stats.envelopes += 1
        if count > 1:
            stats.batched_messages += count
        if count > stats.largest_envelope:
            stats.largest_envelope = count
        return delay

    async def transfer_many(self, source: str, target: str, count: int) -> float:
        """Transfer one envelope carrying ``count`` coalesced messages."""
        delay = self.plan_envelope(source, target, count)
        if delay is None:
            lost: Future[None] = Future(f"lost:{source}->{target}")
            await lost
            return 0.0  # pragma: no cover - the future never resolves
        if delay > 0:
            await self._scheduler.sleep(delay)
        return delay

    def register_metrics(self, registry: "object") -> None:
        """Export the network counters as pull-probes on ``registry``.

        Typed loosely to avoid importing :mod:`repro.obs` here (the net
        layer sits below the observability package in the import graph).
        """
        stats = self.stats
        registry.register_probe("net.messages", lambda: stats.messages)
        registry.register_probe("net.remote_messages", lambda: stats.remote_messages)
        registry.register_probe(
            "net.loopback_messages", lambda: stats.loopback_messages
        )
        registry.register_probe("net.lost_messages", lambda: stats.lost_messages)
        registry.register_probe(
            "net.duplicated_messages", lambda: stats.duplicated_messages
        )
        registry.register_probe(
            "net.partitioned_messages", lambda: stats.partitioned_messages
        )
        registry.register_probe(
            "net.total_latency_seconds", lambda: stats.total_latency
        )
        registry.register_probe("net.envelopes", lambda: stats.envelopes)
        registry.register_probe("net.batched_messages", lambda: stats.batched_messages)
        registry.register_probe("net.largest_envelope", lambda: stats.largest_envelope)
