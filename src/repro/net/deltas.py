"""Coalescing delta streams for incremental view maintenance.

Materialized views are maintained by *deltas* flowing from the ingestion
write path to the owning view actor.  Emitting one message per insert per
view would double the write path's message count, so deltas from one source
silo to one view shard coalesce: aggregate deltas are a commutative monoid
(count/sum/min/max merge associatively), so every delta emitted within a
bounded window folds into the open buffer and the whole buffer ships as
**one** ``apply_deltas`` message — which then also rides the envelope
batcher like any other invocation.

Exactly-once folding comes from per-stream sequencing, the same watermark
idea the ingest dedup path uses:

- each (source silo → view shard) stream numbers its flushes with a
  monotonically increasing sequence;
- flushes on one stream are **chained** — the next flush departs only after
  the previous one was acked — so arrivals are in order and the shard's
  per-stream high-water mark suffices to drop duplicated deliveries
  (chaos duplication, at-least-once retry resends) without a dedup set;
- the emitting insert awaits the flush ack, so an insert is only
  acknowledged once every registered view durably observed its delta.
  A lost message surfaces as a retry of the *flush* (idempotent by
  sequence), never as a silently diverged view.

The module is pure mechanism: it knows nothing about actors or view
definitions.  The aodb layer (:mod:`repro.aodb.views`) supplies the
``send`` callable that turns a flush into an actor invocation.
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable

from ..kernel.futures import Future
from ..kernel.scheduler import Scheduler

#: One buffered delta row on the wire:
#: ``(group, entity, bucket, count, total, vmin, vmax)``.
DeltaEntry = tuple[str, str, float, int, float, float, float]

#: ``send(shard_id, stream_id, seq, entries)`` delivers one flush and
#: resolves when the shard acked the fold (raising on definitive failure).
SendFn = Callable[[str, str, int, list[DeltaEntry]], Awaitable[Any]]


class _OpenBuffer:
    """Deltas accumulating toward one shard, keyed for mergeability."""

    __slots__ = (
        "entries", "members", "opened_at", "departed", "raw_deltas",
        "seq", "previous", "acked",
    )

    def __init__(self, opened_at: float) -> None:
        # (group, entity, bucket) -> [count, total, vmin, vmax]
        self.entries: dict[tuple[str, str, float], list[float]] = {}
        # (ticket, emitted_at) per contributing emit call.
        self.members: list[tuple[Future[int], float]] = []
        self.opened_at = opened_at
        self.departed = False
        self.raw_deltas = 0
        # Claimed synchronously at seal time (see _seal), so stream order
        # is fixed before any flush task runs.
        self.seq = 0
        self.previous: Future[None] | None = None
        self.acked: Future[None] | None = None


class DeltaCoalescer:
    """Merges same-shard view deltas into sequenced, chained flushes."""

    def __init__(
        self,
        scheduler: Scheduler,
        send: SendFn,
        source: str,
        max_delay: float = 0.0005,
        max_keys: int = 128,
    ) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if max_keys < 1:
            raise ValueError("max_keys must be >= 1")
        self.scheduler = scheduler
        self.send = send
        self.source = source
        self.max_delay = max_delay
        self.max_keys = max_keys
        self._open: dict[str, _OpenBuffer] = {}
        # Per-shard FIFO chain: the next flush departs only after the
        # previous flush's ack, so stream sequences arrive in order.
        self._last_acked: dict[str, Future[None]] = {}
        self._sequences: dict[str, int] = {}
        # In-flight members per shard (for the staleness probe).
        self._inflight: dict[str, list[tuple[Future[int], float]]] = {}
        self.deltas_emitted = 0
        self.flushes = 0
        self.flush_failures = 0

    # -- emission --------------------------------------------------------------

    def emit(
        self,
        shard_id: str,
        group: str,
        entity: str,
        bucket: float,
        count: int,
        total: float,
        vmin: float,
        vmax: float,
    ) -> Future[int]:
        """Buffer one delta toward ``shard_id``; resolves on fold ack.

        The returned future carries the flush cohort size (how many raw
        deltas shared the flush), mirroring the envelope batcher's ticket.
        """
        self.deltas_emitted += 1
        now = self.scheduler.now
        ticket: Future[int] = Future("view-delta")
        buffer = self._open.get(shard_id)
        fresh = buffer is None
        if fresh:
            buffer = _OpenBuffer(opened_at=now)
            self._open[shard_id] = buffer
        buffer.raw_deltas += 1
        key = (group, entity, bucket)
        entry = buffer.entries.get(key)
        if entry is None:
            buffer.entries[key] = [count, total, vmin, vmax]
        else:
            entry[0] += count
            entry[1] += total
            if vmin < entry[2]:
                entry[2] = vmin
            if vmax > entry[3]:
                entry[3] = vmax
        buffer.members.append((ticket, now))
        if len(buffer.entries) >= self.max_keys:
            self._seal(shard_id, buffer)
            self.scheduler.spawn(
                self._flush(shard_id, buffer), name=f"view-flush:{shard_id}"
            )
        elif fresh:
            self.scheduler.spawn(
                self._depart_after(shard_id, buffer),
                name=f"view-window:{shard_id}",
            )
        return ticket

    async def _depart_after(self, shard_id: str, buffer: _OpenBuffer) -> None:
        if self.max_delay > 0:
            await self.scheduler.sleep(self.max_delay)
        else:
            # One scheduler round trip so same-instant emissions coalesce.
            await self.scheduler.sleep(0)
        if not buffer.departed:
            self._seal(shard_id, buffer)
            await self._flush(shard_id, buffer)

    def _seal(self, shard_id: str, buffer: _OpenBuffer) -> None:
        """Close the buffer and claim its slot in the stream — synchronously,
        so sequence order matches seal order no matter when flush tasks run."""
        buffer.departed = True
        if self._open.get(shard_id) is buffer:
            del self._open[shard_id]
        buffer.seq = self._sequences.get(shard_id, 0) + 1
        self._sequences[shard_id] = buffer.seq
        buffer.previous = self._last_acked.get(shard_id)
        buffer.acked = Future("view-flush-acked")
        self._last_acked[shard_id] = buffer.acked

    async def _flush(self, shard_id: str, buffer: _OpenBuffer) -> None:
        """Ship one sealed buffer: chained, sequenced, acked."""
        previous = buffer.previous
        acked = buffer.acked
        assert acked is not None
        if previous is not None and not previous.done():
            # In-order delivery per stream: the shard's watermark dedup is
            # only sound because sequence N+1 never overtakes N.
            await previous
        seq = buffer.seq
        entries: list[DeltaEntry] = [
            (group, entity, bucket, int(stats[0]), stats[1], stats[2], stats[3])
            for (group, entity, bucket), stats in sorted(buffer.entries.items())
        ]
        inflight = self._inflight.setdefault(shard_id, [])
        inflight.extend(buffer.members)
        self.flushes += 1
        cohort = buffer.raw_deltas
        try:
            await self.send(shard_id, self.source, seq, entries)
        except Exception as exc:
            self.flush_failures += 1
            for ticket, _emitted_at in buffer.members:
                if not ticket.done():
                    ticket.set_exception(exc)
            return
        finally:
            for member in buffer.members:
                inflight.remove(member)
            acked.set_result(None)
        for ticket, _emitted_at in buffer.members:
            if not ticket.done():
                ticket.set_result(cohort)

    # -- introspection ---------------------------------------------------------

    def oldest_pending(self) -> float | None:
        """Emit time of the oldest unacked delta (None when drained)."""
        oldest: float | None = None
        for buffer in self._open.values():
            for _ticket, emitted_at in buffer.members:
                if oldest is None or emitted_at < oldest:
                    oldest = emitted_at
        for members in self._inflight.values():
            for _ticket, emitted_at in members:
                if oldest is None or emitted_at < oldest:
                    oldest = emitted_at
        return oldest

    def pending_deltas(self) -> int:
        """Unacked deltas (buffered plus in flight)."""
        return sum(len(b.members) for b in self._open.values()) + sum(
            len(m) for m in self._inflight.values()
        )
