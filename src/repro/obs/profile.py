"""Continuous per-actor profiler: who is eating the cluster, and where.

The causal tracer (:mod:`repro.obs.trace`) answers "why was *this* request
slow"; the profiler answers the operator's aggregate question — which
(actor class, method) pairs and which individual activations consume the
cluster's virtual CPU, where turns wait (mailbox, core queue, storage), and
whether any mailbox is backing up.

Attribution is exact rather than sampled: every turn the runtime executes
accumulates into two pre-fetched records — one per ``(actor class, method)``
and one per activation — and the CPU split between core-queueing wait and
service comes from the kernel itself
(:meth:`~repro.kernel.resources.CpuResource.consume`'s ``profile`` hook),
the only place that knows it exactly.  Summing the ``cpu_service`` of every
method row therefore reproduces the kernel's own ``busy_seconds`` ledger,
which is what makes the report trustworthy (and testable: coverage ≥ 95%
is an acceptance criterion, with the remainder explained by silos that
left the cluster mid-run).

Like the tracer, the profiler is **disabled by default** and every producer
site guards on ``profiler.enabled`` (a plain attribute read), so the hot
path allocates nothing when profiling is off.  Per-activation records are
capped (``max_activations``) so profiling a million-actor cluster cannot
balloon memory: overflow activations collapse into one ``(other)`` record
and are counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.key import ActorKey
    from ..runtime.silo import Silo


class ProfileRecord:
    """One attribution row: virtual-time totals for a method or activation.

    ``cpu_service`` is pure core-service time (kernel-attributed, sums to
    ``CpuResource.busy_seconds``); ``cpu_wait`` is time spent queueing for
    a free core; ``queue_wait`` is mailbox wait; ``storage_wait`` is
    grain-storage latency charged inside turns (state loads and flushes).
    """

    __slots__ = (
        "label", "calls", "errors", "cpu_service", "cpu_wait",
        "queue_wait", "storage_wait",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.calls = 0
        self.errors = 0
        self.cpu_service = 0.0
        self.cpu_wait = 0.0
        self.queue_wait = 0.0
        self.storage_wait = 0.0

    @property
    def busy(self) -> float:
        """Everything this row did or waited for (excl. child-call waits)."""
        return self.cpu_service + self.cpu_wait + self.queue_wait + self.storage_wait

    def as_dict(self) -> dict:
        """Serializable view (reports, telemetry, tests)."""
        return {
            "label": self.label,
            "calls": self.calls,
            "errors": self.errors,
            "cpu_service": self.cpu_service,
            "cpu_wait": self.cpu_wait,
            "queue_wait": self.queue_wait,
            "storage_wait": self.storage_wait,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ProfileRecord {self.label} calls={self.calls} "
            f"cpu={self.cpu_service:.6f}>"
        )


class Profiler:
    """Exact, always-on-when-enabled attribution of runtime work.

    Producers (the activation turn loop and ``Activation._start``) fetch
    records via :meth:`method_record` / :meth:`activation_record` once per
    turn and accumulate plain floats into them; the kernel CPU hook fills
    in the service/wait split.  Consumers read :meth:`method_rows`,
    :meth:`hot_activations` and :meth:`coverage`.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_activations: int = 4096,
        max_methods: int = 1024,
    ) -> None:
        self.enabled = enabled
        self.max_activations = max_activations
        self.max_methods = max_methods
        self.turns = 0
        self.method_overflow = 0
        self.activation_overflow = 0
        self._methods: dict[tuple[str, str], ProfileRecord] = {}
        self._activations: dict["ActorKey", ProfileRecord] = {}
        # Shared sinks once the caps are hit: attribution stays complete
        # (sums still match the kernel ledger), only the resolution drops.
        self._method_other = ProfileRecord("(other methods)")
        self._activation_other = ProfileRecord("(other activations)")

    # -- producing ------------------------------------------------------------

    def method_record(self, type_name: str, method: str) -> ProfileRecord:
        """The accumulation row for ``(actor class, method)``."""
        key = (type_name, method)
        record = self._methods.get(key)
        if record is None:
            if len(self._methods) >= self.max_methods:
                self.method_overflow += 1
                return self._method_other
            record = ProfileRecord(f"{type_name}.{method}")
            self._methods[key] = record
        return record

    def activation_record(self, key: "ActorKey") -> ProfileRecord:
        """The accumulation row for one activation (capped; see overflow)."""
        record = self._activations.get(key)
        if record is None:
            if len(self._activations) >= self.max_activations:
                self.activation_overflow += 1
                return self._activation_other
            record = ProfileRecord(key.qualified())
            self._activations[key] = record
        return record

    # -- consuming ------------------------------------------------------------

    def method_rows(self) -> list[ProfileRecord]:
        """All method rows, hottest (by CPU service) first."""
        rows = list(self._methods.values())
        if self._method_other.calls or self._method_other.cpu_service:
            rows.append(self._method_other)
        rows.sort(key=lambda r: (-r.cpu_service, r.label))
        return rows

    def hot_activations(self, top: int = 10) -> list[ProfileRecord]:
        """The ``top`` activations by CPU service — the hot-actor detector."""
        rows = list(self._activations.values())
        if self._activation_other.calls or self._activation_other.cpu_service:
            rows.append(self._activation_other)
        rows.sort(key=lambda r: (-r.cpu_service, r.label))
        return rows[:top]

    def hot_activation_keys(self, top: int = 10) -> list["ActorKey"]:
        """Keys of the hottest activations (excludes the overflow sink).

        The elastic rebalancer consumes this to decide *which* activations
        to migrate off an overloaded silo — the same ranking
        :meth:`hot_activations` renders for operators, but addressable.
        """
        keys = list(self._activations.items())
        keys.sort(key=lambda item: (-item[1].cpu_service, item[1].label))
        return [key for key, _ in keys[:top]]

    def attributed_cpu(self) -> float:
        """Total CPU service seconds attributed to method rows."""
        total = sum(r.cpu_service for r in self._methods.values())
        return total + self._method_other.cpu_service

    def coverage(self, kernel_busy_seconds: float) -> float:
        """Attributed CPU over the kernel's own busy ledger (1.0 = all).

        ``kernel_busy_seconds`` is the sum of ``silo.cpu.busy_seconds`` over
        the silos still in the cluster; work done on silos that crashed or
        were shut down mid-run stays attributed here but leaves the kernel
        ledger, so coverage can exceed 1.0 after silo churn.
        """
        if kernel_busy_seconds <= 0.0:
            return 1.0 if self.attributed_cpu() == 0.0 else float("inf")
        return self.attributed_cpu() / kernel_busy_seconds

    def clear(self) -> None:
        """Drop every record (e.g. after provisioning/warmup)."""
        self._methods.clear()
        self._activations.clear()
        self._method_other = ProfileRecord("(other methods)")
        self._activation_other = ProfileRecord("(other activations)")
        self.turns = 0
        self.method_overflow = 0
        self.activation_overflow = 0

    def register_metrics(self, registry) -> None:
        """Export profiler state as pull-probes (snapshot-time only)."""
        registry.register_probe("profile.turns", lambda: self.turns)
        registry.register_probe(
            "profile.attributed_cpu_seconds", self.attributed_cpu
        )
        registry.register_probe(
            "profile.method_overflow", lambda: self.method_overflow
        )
        registry.register_probe(
            "profile.activation_overflow", lambda: self.activation_overflow
        )


def mailbox_backlogs(
    silos: Iterable["Silo"], top: int = 5, minimum: int = 1
) -> list[tuple[str, int, str]]:
    """The ``top`` deepest mailboxes: ``(actor, depth, silo)`` triples.

    Pull-style (walks the catalogs only when called), so backlog detection
    costs nothing during normal execution.  Activations with fewer than
    ``minimum`` queued messages are skipped.
    """
    depths = [
        (activation.key.qualified(), len(activation.mailbox), silo.silo_id)
        for silo in silos
        for activation in silo.activations()
        if len(activation.mailbox) >= minimum
    ]
    depths.sort(key=lambda row: (-row[1], row[0]))
    return depths[:top]


@dataclass
class ProfileReport:
    """A complete profiling snapshot, ready to render or assert against."""

    total_cpu_seconds: float
    attributed_cpu_seconds: float
    turns: int
    rows: list[ProfileRecord]
    hot_activations: list[ProfileRecord]
    backlogs: list[tuple[str, int, str]]
    method_overflow: int = 0
    activation_overflow: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of kernel-measured CPU attributed to method rows."""
        if self.total_cpu_seconds <= 0.0:
            return 1.0 if self.attributed_cpu_seconds == 0.0 else float("inf")
        return self.attributed_cpu_seconds / self.total_cpu_seconds


def build_report(
    profiler: Profiler,
    silos: Iterable["Silo"],
    top_activations: int = 10,
    top_backlogs: int = 5,
) -> ProfileReport:
    """Assemble the operator-facing report from profiler + kernel state."""
    silos = list(silos)
    return ProfileReport(
        total_cpu_seconds=sum(silo.cpu.busy_seconds for silo in silos),
        attributed_cpu_seconds=profiler.attributed_cpu(),
        turns=profiler.turns,
        rows=profiler.method_rows(),
        hot_activations=profiler.hot_activations(top_activations),
        backlogs=mailbox_backlogs(silos, top=top_backlogs),
        method_overflow=profiler.method_overflow,
        activation_overflow=profiler.activation_overflow,
    )
