"""Always-on flight recorder: tail-based retention, ring journals, postmortems.

Production tracing has a dilemma: the traces you need most (the p99
outlier, the fenced zombie write, the migration that stalled) are exactly
the ones a bounded store evicts first.  The :class:`FlightRecorder`
replaces the tracer's silent ``max_spans`` cliff with three pieces that are
cheap enough to leave on forever:

1. **Tail-based trace retention.**  With a recorder attached, the tracer
   stops accumulating spans; instead every completed *root* trace is scored
   at completion and either retained in full (bounded, FIFO-evicted) or
   downsampled to a counter.  The retention predicates: root status other
   than ``ok``, any span error, any retry attempt, any span of an anomaly
   kind (migration, WAL replay, fenced bounce, quarantine park,
   retrying-ask), root latency above a per-span-kind reservoir-estimated
   p99, or a deterministic 1-in-N baseline sample (``tail_keep_rate``).

2. **Ring-buffer event journals.**  Fixed-size flight recorders fed by
   lightweight hooks in the kernel (timer arm/fire/cancel, freelist),
   net (partition blocks, batcher envelopes), storage (fenced bounces,
   group-commit flushes, WAL journal/replay), runtime (quarantine,
   migration phases) and elastic (rebalance/scale decisions).  A record is
   four list stores into preallocated slots — with the default capacity
   (≤ 256 slots) the cursor arithmetic stays inside CPython's small-int
   cache, so steady-state recording performs **zero allocations**, which
   ``benchmarks/bench_obs_overhead.py`` asserts with tracemalloc.

3. **Incident postmortems.**  SLO alert transitions (via
   :meth:`FlightRecorder.watch`) and crash/eviction events trigger a
   black-box dump merging the firing rule, retained traces, ring tails,
   profiler hot-actors and cluster metrics into one causally-ordered
   virtual-time timeline (:class:`Postmortem`, rendered by
   :func:`render_postmortem`).

Lower layers never import this module: each hook site carries a duck-typed
``journal`` attribute defaulting to ``None`` (the same loose-typing rule
``Network.register_metrics`` follows), so the kernel stays free of obs
dependencies and the disabled path is a single attribute check.

Everything is deterministic: reservoir sampling uses a seeded LCG, the
baseline sample is counter-based, and timeline assembly sorts stably by
virtual time — identical seeds reproduce identical retained sets and
identical postmortem timelines bit for bit (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.scheduler import Scheduler
    from .health import Alert, HealthMonitor
    from .trace import Span

__all__ = [
    "ANOMALY_KINDS",
    "FlightRecorder",
    "Postmortem",
    "RecorderConfig",
    "RetainedTrace",
    "RingJournal",
    "render_postmortem",
]

#: Span kinds whose mere presence in a trace marks it anomalous: each one
#: only appears when something unusual happened (a retry storm, a live
#: migration, crash recovery, a fenced zombie write, a quarantine scram).
ANOMALY_KINDS = frozenset(
    {"retrying-ask", "migrate", "wal-replay", "fenced-write", "quarantine-park"}
)

_MASK64 = (1 << 64) - 1


@dataclass
class RecorderConfig:
    """Knobs for the flight recorder (all bounded, all deterministic).

    ``ring_size`` ≤ 256 keeps ring-cursor arithmetic inside CPython's
    small-int cache, which is what makes the hot record path strictly
    allocation-free; larger rings work but churn one ~28-byte int per
    record.
    """

    ring_size: int = 256
    max_retained: int = 256
    reservoir_size: int = 128
    min_latency_samples: int = 32
    p99_refresh: int = 32
    tail_keep_rate: float = 0.0
    max_postmortems: int = 16
    postmortem_traces: int = 8
    postmortem_tail: int = 48

    def validate(self) -> None:
        if self.ring_size < 8:
            raise ValueError("ring_size must be >= 8")
        if self.max_retained < 1:
            raise ValueError("max_retained must be >= 1")
        if self.reservoir_size < 4:
            raise ValueError("reservoir_size must be >= 4")
        if not 0.0 <= self.tail_keep_rate <= 1.0:
            raise ValueError("tail_keep_rate must be in [0, 1]")
        if self.max_postmortems < 1:
            raise ValueError("max_postmortems must be >= 1")


class RingJournal:
    """A fixed-size, allocation-free event ring (one flight recorder).

    Four parallel preallocated lists hold (virtual time, kind, and two
    free-form operands); :meth:`record` overwrites the oldest slot.  The
    clock is read from the scheduler at record time so hook sites do not
    have to thread ``now`` through.  With capacity ≤ 256 the cursor
    increment reuses CPython's cached small ints — zero allocations on the
    steady-state path (asserted in ``bench_obs_overhead``).
    """

    __slots__ = ("name", "enabled", "_capacity", "_clock", "_i", "_t",
                 "_kind", "_a", "_b")

    def __init__(self, name: str, clock: "Scheduler", capacity: int = 256) -> None:
        if capacity < 8:
            raise ValueError("ring capacity must be >= 8")
        self.name = name
        self.enabled = True
        self._capacity = capacity
        self._clock = clock
        self._i = 0
        self._t: list[float | None] = [None] * capacity
        self._kind: list[str] = [""] * capacity
        self._a: list[Any] = [""] * capacity
        self._b: list[Any] = [None] * capacity

    def record(self, kind: str, a: Any = "", b: Any = None) -> None:
        """Overwrite the oldest slot with one event (the hot path)."""
        if not self.enabled:
            return
        i = self._i
        self._t[i] = self._clock.now
        self._kind[i] = kind
        self._a[i] = a
        self._b[i] = b
        i += 1
        if i == self._capacity:
            i = 0
        self._i = i

    def __len__(self) -> int:
        """Occupied slots (scans the ring — snapshot-time use only)."""
        return sum(1 for t in self._t if t is not None)

    def entries(self, last: int | None = None) -> list[tuple]:
        """Events oldest→newest as ``(t, kind, a, b)`` tuples.

        Reconstruction walks the ring from the write cursor (the oldest
        slot once the ring has wrapped), skipping never-written slots.
        """
        capacity = self._capacity
        start = self._i
        out: list[tuple] = []
        for offset in range(capacity):
            j = start + offset
            if j >= capacity:
                j -= capacity
            t = self._t[j]
            if t is None:
                continue
            out.append((t, self._kind[j], self._a[j], self._b[j]))
        if last is not None and len(out) > last:
            del out[: len(out) - last]
        return out

    def clear(self) -> None:
        """Empty the ring (slots stay preallocated)."""
        for i in range(self._capacity):
            self._t[i] = None
            self._kind[i] = ""
            self._a[i] = ""
            self._b[i] = None
        self._i = 0


class _LatencyReservoir:
    """Algorithm-R reservoir of root-trace latencies for one span kind.

    Replacement uses a seeded 64-bit LCG (deterministic, allocation-light);
    the p99 estimate is recomputed lazily every ``refresh`` observations
    instead of per sample.
    """

    __slots__ = ("size", "count", "refresh", "_samples", "_state", "_p99",
                 "_since_refresh")

    def __init__(self, size: int, seed: int, refresh: int = 32) -> None:
        self.size = size
        self.count = 0
        self.refresh = refresh
        self._samples: list[float] = []
        self._state = (seed * 2862933555777941757 + 3037000493) & _MASK64
        self._p99: float | None = None
        self._since_refresh = 0

    def observe(self, value: float) -> None:
        self.count += 1
        samples = self._samples
        if len(samples) < self.size:
            samples.append(value)
        else:
            state = (self._state * 6364136223846793005 + 1442695040888963407) & _MASK64
            self._state = state
            j = state % self.count
            if j < self.size:
                samples[j] = value
        self._since_refresh += 1
        if self._since_refresh >= self.refresh:
            self._since_refresh = 0
            self._p99 = None  # recompute lazily on next read

    def p99(self) -> float:
        estimate = self._p99
        if estimate is None:
            ordered = sorted(self._samples)
            if not ordered:
                return float("inf")
            estimate = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
            self._p99 = estimate
        return estimate


class RetainedTrace:
    """One fully-kept trace: the root span, all spans, and why it was kept."""

    __slots__ = ("trace_id", "root", "spans", "reason", "retained_at")

    def __init__(
        self,
        trace_id: int,
        root: "Span",
        spans: list,
        reason: str,
        retained_at: float,
    ) -> None:
        self.trace_id = trace_id
        self.root = root
        self.spans = spans
        self.reason = reason
        self.retained_at = retained_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RetainedTrace #{self.trace_id} {len(self.spans)} spans "
            f"reason={self.reason!r}>"
        )


class Postmortem:
    """A black-box incident dump: trigger + causally-ordered timeline."""

    __slots__ = ("trigger", "at", "timeline", "traces", "hot_activations",
                 "metrics")

    def __init__(
        self,
        trigger: dict,
        at: float,
        timeline: list[tuple],
        traces: list[RetainedTrace],
        hot_activations: list[dict],
        metrics: dict,
    ) -> None:
        self.trigger = trigger
        self.at = at
        self.timeline = timeline
        self.traces = traces
        self.hot_activations = hot_activations
        self.metrics = metrics

    def sources(self) -> set[str]:
        """Distinct timeline sources (journals, trace ids, markers)."""
        return {source for _t, source, _text in self.timeline}

    def as_dict(self) -> dict:
        """A serializable view (timeline text lines, trace summaries)."""
        return {
            "trigger": dict(self.trigger),
            "at": self.at,
            "timeline": [
                {"t": t, "source": source, "event": text}
                for t, source, text in self.timeline
            ],
            "traces": [
                {
                    "trace_id": rt.trace_id,
                    "reason": rt.reason,
                    "spans": len(rt.spans),
                    "root_status": rt.root.status,
                }
                for rt in self.traces
            ],
            "hot_activations": list(self.hot_activations),
            "metrics": dict(self.metrics),
        }


def _span_text(span: "Span") -> str:
    """One timeline line for a retained span (built at dump time)."""
    where = span.silo_id or span.caller
    duration = span.duration * 1000.0
    text = (
        f"span {span.kind} {span.name} [{where}] "
        f"status={span.status} dur={duration:.3f}ms"
    )
    if span.error:
        text += f" error={span.error}"
    return text


def _trigger_text(trigger: dict) -> str:
    kind = trigger.get("type", "incident")
    detail = " ".join(
        f"{key}={trigger[key]}"
        for key in sorted(trigger)
        if key not in ("type", "at")
    )
    return f"{kind} {detail}".strip()


class FlightRecorder:
    """Bounded always-on observability: retention, rings, postmortems.

    Attach order: build the recorder with the deployment's scheduler, then
    :meth:`attach` it to a runtime (which wires the tracer, the kernel/net/
    storage journals and the registry probes) and optionally :meth:`watch`
    a :class:`~repro.obs.health.HealthMonitor` so firing alerts snapshot a
    postmortem automatically.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        config: RecorderConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or RecorderConfig()
        self.config.validate()
        self.scheduler = scheduler
        self.enabled = True
        self.runtime = None
        self.seed = seed
        self._journals: dict[str, RingJournal] = {}
        self._inflight: dict[int, list] = {}
        self._retained: list[RetainedTrace] = []
        self._retained_index: dict[int, RetainedTrace] = {}
        self._reservoirs: dict[str, _LatencyReservoir] = {}
        self.completed_traces = 0
        self.downsampled_traces = 0
        self.downsampled_by_kind: dict[str, int] = {}
        self.retained_evicted = 0
        self.postmortems: list[Postmortem] = []
        self.postmortems_dropped = 0

    # -- ring journals ---------------------------------------------------------

    def journal(self, name: str) -> RingJournal:
        """Get or create the named ring (e.g. ``kernel``, ``silo:silo-2``)."""
        ring = self._journals.get(name)
        if ring is None:
            ring = RingJournal(name, self.scheduler, self.config.ring_size)
            self._journals[name] = ring
        return ring

    def silo_journal(self, silo_id: str) -> RingJournal:
        return self.journal(f"silo:{silo_id}")

    def journals(self) -> list[RingJournal]:
        return [self._journals[name] for name in sorted(self._journals)]

    def ring_entries(self) -> int:
        """Occupied slots across every ring (snapshot-time probe)."""
        return sum(len(ring) for ring in self._journals.values())

    # -- tail-based trace retention --------------------------------------------

    def on_begin(self, span: "Span") -> None:
        """Tracer callback: buffer a live span under its trace (hot path)."""
        buffer = self._inflight.get(span.trace_id)
        if buffer is None:
            self._inflight[span.trace_id] = [span]
        else:
            buffer.append(span)

    def on_root_finish(self, root: "Span", now: float) -> None:
        """Tracer callback: score a completed root trace; retain or drop."""
        spans = self._inflight.pop(root.trace_id, None)
        if spans is None:
            spans = [root]  # root began before the recorder was attached
        self.completed_traces += 1
        reason = self._score(root, spans)
        reservoir = self._reservoirs.get(root.kind)
        if reservoir is None:
            reservoir = _LatencyReservoir(
                self.config.reservoir_size,
                # Per-kind seed by creation order: deterministic for a
                # deterministic workload, and free of str-hash instability.
                self.seed + 1000003 * len(self._reservoirs),
                self.config.p99_refresh,
            )
            self._reservoirs[root.kind] = reservoir
        if reason is None:
            self.downsampled_traces += 1
            by_kind = self.downsampled_by_kind
            by_kind[root.kind] = by_kind.get(root.kind, 0) + 1
        else:
            self._retain(root, spans, reason, now)
        # Feed the latency reservoir *after* scoring so the p99 predicate
        # compares against history, not against the sample being judged.
        reservoir.observe(root.duration)

    def _score(self, root: "Span", spans: list) -> str | None:
        """The retention verdict: a reason string, or None to downsample."""
        if root.status != "ok":
            return f"status:{root.status}"
        for span in spans:
            if span.error or span.attempt > 0:
                return "span-error"
            if span.status not in ("ok", "open"):
                return f"span-status:{span.status}"
            if span.kind in ANOMALY_KINDS:
                return f"anomaly:{span.kind}"
        reservoir = self._reservoirs.get(root.kind)
        if (
            reservoir is not None
            and reservoir.count >= self.config.min_latency_samples
            and root.duration > reservoir.p99()
        ):
            return f"p99:{root.kind}"
        rate = self.config.tail_keep_rate
        if rate > 0.0:
            interval = max(1, round(1.0 / rate))
            if self.completed_traces % interval == 1 or interval == 1:
                return "tail-sample"
        return None

    def _retain(
        self, root: "Span", spans: list, reason: str, now: float
    ) -> None:
        spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        retained = RetainedTrace(root.trace_id, root, spans, reason, now)
        self._retained.append(retained)
        self._retained_index[root.trace_id] = retained
        if len(self._retained) > self.config.max_retained:
            evicted = self._retained.pop(0)
            self._retained_index.pop(evicted.trace_id, None)
            self.retained_evicted += 1

    def retained(self) -> list[RetainedTrace]:
        """Retained traces, oldest first."""
        return list(self._retained)

    def retained_trace(self, trace_id: int) -> RetainedTrace | None:
        return self._retained_index.get(trace_id)

    def anomalous(self) -> list[RetainedTrace]:
        """Retained traces kept for cause (baseline tail samples excluded)."""
        return [rt for rt in self._retained if rt.reason != "tail-sample"]

    # -- incident postmortems --------------------------------------------------

    def watch(self, monitor: "HealthMonitor") -> None:
        """Snapshot a postmortem whenever one of the monitor's rules fires."""
        monitor.listeners.append(self._on_alert)

    def _on_alert(self, alert: "Alert") -> None:
        if alert.state != "firing":
            return
        self.record_incident("alert", alert.as_dict())

    def record_incident(
        self, kind: str, detail: dict | None = None
    ) -> Postmortem | None:
        """Build and log a postmortem (bounded by ``max_postmortems``)."""
        if not self.enabled:
            return None
        if len(self.postmortems) >= self.config.max_postmortems:
            self.postmortems_dropped += 1
            return None
        trigger = {"type": kind}
        if detail:
            trigger.update(detail)
        postmortem = self.build_postmortem(trigger)
        self.postmortems.append(postmortem)
        return postmortem

    def build_postmortem(self, trigger: dict) -> Postmortem:
        """Merge rings, retained traces, hot actors and metrics at ``now``.

        The timeline is sorted stably by virtual time; because assembly
        order is deterministic (trigger, sorted rings, synthesized
        partition markers, traces newest-anomaly-first), ties break the
        same way on every run.
        """
        now = self.scheduler.now
        at = float(trigger.get("at", now))
        timeline: list[tuple] = [(at, "trigger", _trigger_text(trigger))]
        tail = self.config.postmortem_tail
        for ring in self.journals():
            for t, kind, a, b in ring.entries(last=tail):
                text = f"{kind} {a}" if a != "" else kind
                if b is not None:
                    text = f"{text} {b}"
                timeline.append((t, ring.name, text))
        timeline.extend(self._partition_markers(now))
        traces = self._pick_traces()
        for retained in traces:
            source = f"trace:{retained.trace_id}"
            timeline.append(
                (
                    retained.retained_at,
                    source,
                    f"retained ({retained.reason}) root={retained.root.name} "
                    f"status={retained.root.status}",
                )
            )
            for span in retained.spans:
                timeline.append((span.start, source, _span_text(span)))
        timeline.sort(key=lambda entry: entry[0])
        runtime = self.runtime
        hot: list[dict] = []
        metrics: dict = {}
        if runtime is not None:
            profiler = runtime.profiler
            if profiler is not None and profiler.enabled:
                hot = [rec.as_dict() for rec in profiler.hot_activations(5)]
            if runtime.metrics is not None:
                metrics = runtime.metrics.cluster_totals()
        return Postmortem(dict(trigger), now, timeline, traces, hot, metrics)

    def _partition_markers(self, now: float) -> list[tuple]:
        """Synthesized open/heal events for scripted netsplits.

        Partition scenarios are declarative (``PartitionInjector`` holds
        the full script), so past transitions are reconstructed exactly
        instead of being sampled into a ring.
        """
        runtime = self.runtime
        if runtime is None:
            return []
        injector = getattr(runtime.network, "partitions", None)
        scenarios = getattr(injector, "_scenarios", None)
        if not scenarios:
            return []
        markers: list[tuple] = []
        for groups, start, end in scenarios:
            label = " | ".join(
                ",".join(sorted(group)) for group in groups
            )
            if start <= now:
                markers.append((start, "net", f"partition-open {label}"))
            if end <= now:
                markers.append((end, "net", "partition-heal"))
        return markers

    def _pick_traces(self) -> list[RetainedTrace]:
        """Most recent anomalous traces first, padded with tail samples."""
        limit = self.config.postmortem_traces
        anomalous = self.anomalous()
        chosen = anomalous[-limit:]
        if len(chosen) < limit:
            samples = [rt for rt in self._retained if rt.reason == "tail-sample"]
            chosen = samples[-(limit - len(chosen)):] + chosen
        return sorted(chosen, key=lambda rt: rt.retained_at)

    # -- wiring ----------------------------------------------------------------

    def attach(self, runtime, monitor: "HealthMonitor | None" = None):
        """Wire this recorder into a runtime (tracer, journals, probes)."""
        if self.runtime is not None:
            raise RuntimeError("flight recorder already attached")
        self.runtime = runtime
        runtime.recorder = self
        if runtime.tracer is not None:
            runtime.tracer.recorder = self
        kernel = self.journal("kernel")
        runtime.scheduler.journal = kernel
        runtime._invocation_pool.journal = kernel
        net = self.journal("net")
        runtime.network.journal = net
        if runtime._batcher is not None:
            runtime._batcher.journal = net
        storage = self.journal("storage")
        runtime.grain_storage.journal = storage
        if runtime.group_commit is not None:
            runtime.group_commit.journal = storage
        if runtime.redo_journal is not None:
            runtime.redo_journal.journal = storage
        self.journal("elastic")
        views = getattr(runtime.database, "views", None)
        if views is not None:
            views.journal = self.journal("views")
        for silo in runtime.silos():
            self.silo_journal(silo.silo_id)
        registry = runtime.metrics
        if registry is not None:
            tracer = runtime.tracer
            if tracer is not None:
                registry.register_probe(
                    "trace.dropped_spans", lambda: tracer.dropped
                )
            registry.register_probe(
                "trace.retained_traces", lambda: len(self._retained)
            )
            registry.register_probe(
                "recorder.downsampled_traces", lambda: self.downsampled_traces
            )
            registry.register_probe(
                "recorder.retained_evicted", lambda: self.retained_evicted
            )
            registry.register_probe(
                "recorder.postmortems", lambda: len(self.postmortems)
            )
            registry.register_probe("recorder.ring_entries", self.ring_entries)
        if monitor is not None:
            self.watch(monitor)
        return self

    def clear(self) -> None:
        """Drop retained traces, counters, rings and postmortems."""
        self._inflight.clear()
        self._retained.clear()
        self._retained_index.clear()
        self._reservoirs.clear()
        self.completed_traces = 0
        self.downsampled_traces = 0
        self.downsampled_by_kind.clear()
        self.retained_evicted = 0
        self.postmortems.clear()
        self.postmortems_dropped = 0
        for ring in self._journals.values():
            ring.clear()


def _ts(t: float) -> str:
    return f"{t * 1000:10.3f}ms"


def render_postmortem(postmortem: Postmortem, max_lines: int = 200) -> str:
    """Human-readable incident dump (one line per timeline event)."""
    trigger = postmortem.trigger
    lines = [
        f"== postmortem @ {_ts(postmortem.at).strip()} — "
        f"{_trigger_text(trigger)} ==",
        f"retained traces: {len(postmortem.traces)} "
        f"({', '.join(str(rt.trace_id) for rt in postmortem.traces) or 'none'})",
        f"timeline ({len(postmortem.timeline)} events):",
    ]
    shown = postmortem.timeline[-max_lines:]
    if len(shown) < len(postmortem.timeline):
        lines.append(f"  … {len(postmortem.timeline) - len(shown)} earlier "
                     "events elided")
    for t, source, text in shown:
        lines.append(f"  {_ts(t)} [{source}] {text}")
    if postmortem.hot_activations:
        lines.append("hot activations:")
        for record in postmortem.hot_activations:
            label = record.get("key", record.get("label", "?"))
            lines.append(
                f"  {label}: cpu={record.get('cpu_service', 0.0):.4f}s "
                f"calls={record.get('calls', 0)}"
            )
    if postmortem.metrics:
        lines.append("cluster metrics:")
        for name in sorted(postmortem.metrics):
            value = postmortem.metrics[name]
            if isinstance(value, float):
                value = round(value, 6)
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)
