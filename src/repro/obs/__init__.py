"""repro.obs — the observability layer: causal tracing + metrics registry.

Two substrates every other subsystem plugs into:

- :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: per-message
  causal spans in virtual time with a queue/CPU/network/storage breakdown,
  reconstructable into full caller→callee trees (:class:`TraceTree`);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: cheap counters,
  gauges, histograms and pull-style probes, snapshotable per silo and
  cluster-wide.

``python -m repro.bench trace`` renders a traced scenario end to end.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric,
)
from .render import (
    format_span_line,
    render_critical_path,
    render_metrics,
    render_tree,
)
from .trace import Span, TraceTree, Tracer, span_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceTree",
    "Tracer",
    "format_metric",
    "format_span_line",
    "render_critical_path",
    "render_metrics",
    "render_tree",
    "span_summary",
]
