"""repro.obs — the observability layer.

Substrates every other subsystem plugs into:

- :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: per-message
  causal spans in virtual time with a queue/CPU/network/storage breakdown,
  reconstructable into full caller→callee trees (:class:`TraceTree`);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: cheap counters,
  gauges, histograms and pull-style probes, snapshotable per silo and
  cluster-wide, with a label-cardinality guard;
- :mod:`repro.obs.profile` — :class:`Profiler`: continuous, exact
  per-(actor class, method) and per-activation attribution of virtual CPU,
  queue wait and storage time, with hot-actor and mailbox-backlog reports;
- :mod:`repro.obs.health` — :class:`HealthMonitor`: declarative SLO rules
  evaluated from metrics snapshots on a timer, with hysteresis alerts;
- :mod:`repro.obs.recorder` — :class:`FlightRecorder`: always-on bounded
  observability — tail-based trace retention, per-silo ring-buffer event
  journals, and alert-triggered cross-silo :class:`Postmortem` dumps;
- :mod:`repro.obs.telemetry` — self-hosted telemetry actors (imported
  lazily: it builds on :mod:`repro.runtime`, which itself imports this
  package — ``from repro.obs import telemetry`` or attribute access
  resolves it on demand).

``python -m repro.bench trace`` renders a traced scenario end to end;
``python -m repro.bench profile`` renders the profiler + health report.
"""

from .health import Alert, HealthMonitor, SloRule, default_slo_rules
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric,
)
from .profile import (
    ProfileRecord,
    ProfileReport,
    Profiler,
    build_report,
    mailbox_backlogs,
)
from .recorder import (
    FlightRecorder,
    Postmortem,
    RecorderConfig,
    RetainedTrace,
    RingJournal,
    render_postmortem,
)
from .render import (
    format_span_line,
    render_alerts,
    render_critical_path,
    render_health,
    render_metrics,
    render_profile,
    render_tree,
)
from .trace import Span, TraceTree, Tracer, span_summary

__all__ = [
    "Alert",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "Postmortem",
    "ProfileRecord",
    "ProfileReport",
    "Profiler",
    "RecorderConfig",
    "RetainedTrace",
    "RingJournal",
    "SloRule",
    "Span",
    "TraceTree",
    "Tracer",
    "build_report",
    "default_slo_rules",
    "format_metric",
    "format_span_line",
    "mailbox_backlogs",
    "render_alerts",
    "render_critical_path",
    "render_health",
    "render_metrics",
    "render_postmortem",
    "render_profile",
    "render_tree",
    "span_summary",
    "telemetry",
]


def __getattr__(name: str):
    # Lazy import: repro.obs.telemetry needs repro.runtime.actor, and the
    # runtime imports repro.obs at load time — importing it eagerly here
    # would make the cycle real.
    if name == "telemetry":
        from . import telemetry

        return telemetry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
