"""Self-hosted telemetry: the platform monitors itself with its own actors.

The actor-database manifesto line of work (Reactors; Actor-Relational
Database Systems) argues the database should manage its operational state
with the same machinery it offers applications.  This module dogfoods that
thesis: cluster telemetry becomes just another IoT workload, ingested into
an actor hierarchy exactly like the SHM platform ingests bridge sensors —
and therefore queryable online via ordinary asks, placed and traced like
any tenant's actors.

- :class:`SiloMonitor` — one per silo (keyed by silo id): holds that
  silo's metric history as bounded time-series windows
  (:class:`~repro.shm.timeseries.DataWindow`), answering range/latest
  queries;
- :class:`TelemetryAggregator` — cluster-level: per-metric bucketed
  statistics (:class:`~repro.shm.timeseries.BucketedAggregates`, the same
  machinery as the SHM :class:`~repro.shm.aggregator.Aggregator`) plus the
  SLO alert log;
- :class:`TelemetryPump` — the ingestion loop: every ``interval`` virtual
  seconds it snapshots the metrics registry per silo and cluster-wide and
  *asks* the monitor actors to record the samples.  The pump's messages go
  through the normal runtime path, so they appear in causal traces and in
  the profiler like any other workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..runtime.actor import Actor, actor_method
from ..shm.model import DataPoint
from ..shm.timeseries import BucketedAggregates, DataWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.scheduler import Task
    from ..runtime.runtime import AodbRuntime
    from .health import Alert, HealthMonitor

#: Metric-name prefixes the pump ships by default: the platform's own
#: subsystems.  Everything else (application metrics) stays out of the
#: self-telemetry stream unless explicitly included.
TELEMETRY_PREFIXES = (
    "runtime.", "silo.", "kernel.", "net.", "storage.",
    "ingest.", "placement.", "cluster.", "health.", "profile.", "trace.",
)

#: Histogram-summary fields worth keeping as time series, with how samples
#: from different label sets combine (quantiles take the worst, counts add).
_HISTOGRAM_FIELDS = (("p50", max), ("p99", max), ("mean", max), ("count", sum))


def flatten_snapshot(
    snapshot: dict[str, Any],
    include: tuple[str, ...] = TELEMETRY_PREFIXES,
) -> dict[str, float]:
    """Collapse a registry snapshot into ``{metric: value}`` samples.

    Label sets with the same bare name are summed (per-silo counters roll
    up, matching ``cluster_totals``); histogram summaries expand into
    ``name.p50`` / ``name.p99`` / ``name.mean`` / ``name.count`` samples.
    NaN probe values (dead targets) are skipped.
    """
    out: dict[str, float] = {}
    for key, value in snapshot.items():
        name = key.split("{", 1)[0]
        if include and not name.startswith(include):
            continue
        if isinstance(value, dict):
            for field, combine in _HISTOGRAM_FIELDS:
                sample = value.get(field)
                if sample is None or sample != sample:  # None or NaN
                    continue
                field_name = f"{name}.{field}"
                if field_name in out:
                    out[field_name] = combine((out[field_name], float(sample)))
                else:
                    out[field_name] = float(sample)
            continue
        if not isinstance(value, (int, float)) or value != value:
            continue
        out[name] = out.get(name, 0.0) + float(value)
    return out


class SiloMonitor(Actor):
    """Per-silo telemetry history: one bounded window per metric.

    Keyed by silo id.  Non-durable on purpose: telemetry is operational
    state whose windows are bounded; history beyond the window belongs in
    the aggregator's buckets.
    """

    placement = "hash"

    def __init__(self, context) -> None:
        super().__init__(context)
        self._series: dict[str, DataWindow] = {}
        self._window_capacity = 512
        self._max_series = 512
        self.series_dropped = 0
        self._downstream_id: str | None = None

    async def configure(
        self,
        window_capacity: int = 512,
        max_series: int = 512,
        downstream_id: str | None = None,
    ) -> dict:
        """Set window bounds and an optional aggregator to forward to."""
        self._window_capacity = window_capacity
        self._max_series = max_series
        self._downstream_id = downstream_id
        return {"monitor_id": self.actor_id, "window_capacity": window_capacity}

    async def record(self, timestamp: float, values: dict) -> int:
        """Ingest one snapshot's samples; returns how many were stored."""
        stored = 0
        for metric, value in values.items():
            window = self._series.get(metric)
            if window is None:
                if len(self._series) >= self._max_series:
                    # Same discipline as the registry's cardinality guard:
                    # never let one noisy producer balloon monitor memory.
                    self.series_dropped += 1
                    continue
                window = DataWindow(self._window_capacity)
                self._series[metric] = window
            window.append(DataPoint(timestamp, value))
            stored += 1
        if self._downstream_id is not None:
            self.context.actor("TelemetryAggregator", self._downstream_id).tell(
                "merge", timestamp, dict(values)
            )
        return stored

    @actor_method(read_only=True)
    async def query_range(
        self, metric: str, start: float, end: float
    ) -> list[tuple[float, float]]:
        """Samples of one metric with start <= timestamp < end."""
        window = self._series.get(metric)
        if window is None:
            return []
        return [point.as_tuple() for point in window.range(start, end)]

    @actor_method(read_only=True)
    async def latest(self, metric: str) -> tuple[float, float] | None:
        """The most recent sample of one metric (None when unknown)."""
        window = self._series.get(metric)
        point = window.latest() if window is not None else None
        return None if point is None else point.as_tuple()

    @actor_method(read_only=True)
    async def series_names(self) -> list[str]:
        """Every metric this monitor holds history for."""
        return sorted(self._series)

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        return {
            "monitor_id": self.actor_id,
            "series": len(self._series),
            "series_dropped": self.series_dropped,
            "window_capacity": self._window_capacity,
        }


class TelemetryAggregator(Actor):
    """Cluster-level telemetry: bucketed stats per metric + the alert log."""

    placement = "hash"

    def __init__(self, context) -> None:
        super().__init__(context)
        self._buckets: dict[str, BucketedAggregates] = {}
        self._bucket_seconds = 5.0
        self._max_buckets: int | None = None
        self._max_series = 512
        self.series_dropped = 0
        self._alerts: list[dict] = []
        self._max_alerts = 1000
        self.alerts_dropped = 0
        self.samples = 0

    async def configure(
        self,
        bucket_seconds: float = 5.0,
        max_series: int = 512,
        max_alerts: int = 1000,
        max_buckets: int | None = None,
    ) -> dict:
        """``max_buckets`` bounds per-metric retention: the oldest bucket
        is evicted when a new one would exceed the cap (None = unbounded,
        which on long-lived clusters grows without limit)."""
        self._bucket_seconds = bucket_seconds
        self._max_buckets = max_buckets
        self._max_series = max_series
        self._max_alerts = max_alerts
        return {
            "aggregator_id": self.actor_id,
            "bucket_seconds": bucket_seconds,
        }

    async def merge(self, timestamp: float, values: dict) -> int:
        """Fold one snapshot's samples into the per-metric buckets."""
        merged = 0
        for metric, value in values.items():
            buckets = self._buckets.get(metric)
            if buckets is None:
                if len(self._buckets) >= self._max_series:
                    self.series_dropped += 1
                    continue
                buckets = BucketedAggregates(
                    self._bucket_seconds, max_buckets=self._max_buckets
                )
                self._buckets[metric] = buckets
            buckets.observe(DataPoint(timestamp, value))
            merged += 1
        self.samples += merged
        return merged

    async def record_alert(self, alert: dict) -> int:
        """Append one SLO alert transition to the cluster health log."""
        if len(self._alerts) >= self._max_alerts:
            del self._alerts[0]
            self.alerts_dropped += 1
        self._alerts.append(dict(alert))
        return len(self._alerts)

    @actor_method(read_only=True)
    async def series(
        self, metric: str, start: float, end: float
    ) -> list[tuple[int, dict]]:
        """Bucket summaries of one metric overlapping [start, end)."""
        buckets = self._buckets.get(metric)
        if buckets is None:
            return []
        return buckets.series(start, end)

    @actor_method(read_only=True)
    async def stats_at(self, metric: str, timestamp: float) -> dict | None:
        """Summary of the bucket containing ``timestamp`` (None if empty)."""
        buckets = self._buckets.get(metric)
        if buckets is None:
            return None
        stats = buckets.stats_for(buckets.bucket_of(timestamp))
        return None if stats is None else stats.snapshot()

    @actor_method(read_only=True)
    async def alerts(self, limit: int = 100) -> list[dict]:
        """The most recent SLO alert transitions, oldest first."""
        if limit <= 0:
            return []
        return [dict(alert) for alert in self._alerts[-limit:]]

    @actor_method(read_only=True)
    async def metric_names(self) -> list[str]:
        return sorted(self._buckets)

    @actor_method(read_only=True)
    async def describe(self) -> dict:
        return {
            "aggregator_id": self.actor_id,
            "bucket_seconds": self._bucket_seconds,
            "series": len(self._buckets),
            "samples": self.samples,
            "alerts": len(self._alerts),
        }


TELEMETRY_ACTOR_CLASSES = (SiloMonitor, TelemetryAggregator)


class TelemetryPump:
    """Periodic self-ingestion of metrics snapshots into telemetry actors.

    One pump per runtime.  Each tick snapshots the registry per silo and
    cluster-wide, flattens the snapshots to ``{metric: value}`` samples and
    sends them to the telemetry hierarchy through ordinary actor calls.
    When a :class:`~repro.obs.health.HealthMonitor` is supplied, its alert
    transitions are forwarded into the aggregator's health log, so "what
    happened to the cluster?" is answerable entirely through actor asks.
    """

    def __init__(
        self,
        runtime: "AodbRuntime",
        interval: float = 1.0,
        include: tuple[str, ...] = TELEMETRY_PREFIXES,
        window_capacity: int = 512,
        bucket_seconds: float = 5.0,
        max_buckets: int | None = None,
        aggregator_id: str = "cluster",
        monitor: "HealthMonitor | None" = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        self.runtime = runtime
        self.interval = interval
        self.include = tuple(include)
        self.window_capacity = window_capacity
        self.bucket_seconds = bucket_seconds
        self.max_buckets = max_buckets
        self.aggregator_id = aggregator_id
        self.monitor = monitor
        self.ticks = 0
        self.tick_errors = 0
        self._task: "Task | None" = None
        self._stopped = False
        self._configured = False
        self._configured_monitors: set[str] = set()

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> None:
        """Register the telemetry actor classes (idempotent)."""
        for actor_class in TELEMETRY_ACTOR_CLASSES:
            self.runtime.register_actor(actor_class)
        self.runtime.metrics.register_probe("telemetry.ticks", lambda: self.ticks)
        self.runtime.metrics.register_probe(
            "telemetry.tick_errors", lambda: self.tick_errors
        )

    def start(self) -> "Task":
        """Install, subscribe to health alerts and begin the tick loop."""
        if self._task is not None:
            raise RuntimeError("telemetry pump already started")
        self.install()
        if self.monitor is not None:
            self.monitor.listeners.append(self._on_alert)
        self._stopped = False
        self._task = self.runtime.scheduler.spawn(
            self._loop(), name="telemetry-pump"
        )
        return self._task

    def stop(self) -> None:
        """Stop the tick loop (history stays queryable)."""
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self.monitor is not None and self._on_alert in self.monitor.listeners:
            self.monitor.listeners.remove(self._on_alert)

    async def _loop(self) -> None:
        while not self._stopped:
            await self.runtime.scheduler.sleep(self.interval)
            if self._stopped:
                return
            try:
                await self.tick()
            except Exception:  # noqa: BLE001 - telemetry must not kill the host
                self.tick_errors += 1

    # -- one ingestion round ----------------------------------------------------

    async def _configure_targets(self) -> None:
        await self.runtime.ref("TelemetryAggregator", self.aggregator_id).configure(
            bucket_seconds=self.bucket_seconds, max_buckets=self.max_buckets
        )
        self._configured = True

    async def tick(self) -> dict[str, dict[str, float]]:
        """Snapshot → record once; returns what was sent per target actor.

        The per-target sample dicts are returned so tests (and the profile
        bench) can check the stored history against exactly what was
        shipped, without re-deriving snapshots.
        """
        runtime = self.runtime
        if not self._configured:
            await self._configure_targets()
        now = runtime.scheduler.now
        tracer = runtime.tracer
        root = None
        if tracer.enabled:
            # Telemetry rounds are ordinary traffic: give each tick a root
            # span so its fan-out shows up as a causal tree like any tenant
            # request.
            root = tracer.begin("telemetry-tick", "client", "client", now)
        recorded: dict[str, dict[str, float]] = {}
        for silo in runtime.silos():
            values = flatten_snapshot(
                runtime.metrics.snapshot(silo=silo.silo_id), self.include
            )
            if not values:
                continue
            try:
                ref = runtime.ref("SiloMonitor", silo.silo_id, trace=root)
                if silo.silo_id not in self._configured_monitors:
                    await ref.configure(window_capacity=self.window_capacity)
                    self._configured_monitors.add(silo.silo_id)
                await ref.record(now, values)
                recorded[silo.silo_id] = values
            except Exception:  # noqa: BLE001 - a dying silo must not stop the rest
                self.tick_errors += 1
        cluster = flatten_snapshot(runtime.metrics.snapshot(), self.include)
        if cluster:
            try:
                await runtime.ref(
                    "TelemetryAggregator", self.aggregator_id, trace=root
                ).merge(now, cluster)
                recorded["cluster"] = cluster
            except Exception:  # noqa: BLE001
                self.tick_errors += 1
        if root is not None:
            tracer.finish(root, runtime.scheduler.now)
        self.ticks += 1
        return recorded

    def _on_alert(self, alert: "Alert") -> None:
        try:
            self.runtime.ref("TelemetryAggregator", self.aggregator_id).tell(
                "record_alert", alert.as_dict()
            )
        except Exception:  # noqa: BLE001 - alert logging is best-effort
            self.tick_errors += 1
