"""Render trace trees, critical paths and metrics snapshots as text.

The output format is the one documented in DESIGN.md's observability
section: one line per span, indented by causal depth, with the virtual-time
breakdown in milliseconds::

    live_data trace 42 (18 spans, 3.1 ms end-to-end)
    └─ ask Organization/org-0.live_data  3.1ms  [queue 0.0 | cpu 0.4 | net 1.0 | sto 0.0 | wait 1.7]
       ├─ ask PhysicalSensorChannel/....latest  1.2ms  [...]
       ...
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Span, TraceTree


def _ms(value: float) -> str:
    return f"{value * 1000:.2f}"


def format_span_line(span: Span) -> str:
    """One span rendered as ``kind name duration [breakdown]``."""
    b = span.breakdown()
    parts = (
        f"queue {_ms(b['queue'])} | cpu {_ms(b['cpu'])} | "
        f"net {_ms(b['network'])} | sto {_ms(b['storage'])} | "
        f"wait {_ms(b['other'])}"
    )
    attempt = f" attempt={span.attempt}" if span.attempt else ""
    status = "" if span.status == "ok" else f" !{span.status}"
    silo = f" @{span.silo_id}" if span.silo_id else ""
    return (
        f"{span.kind} {span.name}{silo}  {_ms(span.duration)}ms  "
        f"[{parts}]{attempt}{status}"
    )


def render_tree(tree: TraceTree, title: str = "", max_lines: int = 200) -> str:
    """The whole causal tree, one indented line per span."""
    walk = tree.walk()
    root = tree.root
    header = (
        f"{title or root.name}: trace {root.trace_id} "
        f"({len(walk)} spans, {_ms(root.duration)} ms end-to-end)"
    )
    lines = [header]
    for depth, span in walk[:max_lines]:
        prefix = "  " * depth + ("└─ " if depth else "── ")
        lines.append(prefix + format_span_line(span))
    if len(walk) > max_lines:
        lines.append(f"  ... {len(walk) - max_lines} more spans elided")
    return "\n".join(lines)


def render_critical_path(tree: TraceTree) -> str:
    """The root→leaf chain that determined the end-to-end latency."""
    path = tree.critical_path()
    lines = [f"critical path ({len(path)} spans):"]
    previous_end = tree.root.start
    for span in path:
        contribution = (span.end or span.start) - previous_end
        previous_end = span.end or span.start
        lines.append(
            f"  +{_ms(max(0.0, contribution))}ms  {format_span_line(span)}"
        )
    totals = tree.totals()
    lines.append(
        "tree totals: "
        + " ".join(f"{key}={_ms(value)}ms" for key, value in totals.items())
    )
    return "\n".join(lines)


def render_metrics(
    registry: MetricsRegistry,
    title: str = "metrics appendix",
    only_prefixes: tuple[str, ...] = (),
) -> str:
    """A sorted ``name{labels} = value`` listing of the registry."""
    lines = [title]
    snapshot = registry.snapshot()
    for key in sorted(snapshot):
        value = snapshot[key]
        if only_prefixes and not any(key.startswith(p) for p in only_prefixes):
            continue
        if isinstance(value, dict):
            inner = ", ".join(f"{k}={v:.6g}" for k, v in value.items())
            lines.append(f"  {key} = {{{inner}}}")
        else:
            lines.append(f"  {key} = {value:.6g}")
    return "\n".join(lines)
