"""Render trace trees, critical paths and metrics snapshots as text.

The output format is the one documented in DESIGN.md's observability
section: one line per span, indented by causal depth, with the virtual-time
breakdown in milliseconds::

    live_data trace 42 (18 spans, 3.1 ms end-to-end)
    └─ ask Organization/org-0.live_data  3.1ms  [queue 0.0 | cpu 0.4 | net 1.0 | sto 0.0 | wait 1.7]
       ├─ ask PhysicalSensorChannel/....latest  1.2ms  [...]
       ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .trace import Span, TraceTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .health import Alert, HealthMonitor
    from .profile import ProfileReport


def _ms(value: float) -> str:
    return f"{value * 1000:.2f}"


def format_span_line(span: Span) -> str:
    """One span rendered as ``kind name duration [breakdown]``."""
    b = span.breakdown()
    parts = (
        f"queue {_ms(b['queue'])} | cpu {_ms(b['cpu'])} | "
        f"net {_ms(b['network'])} | sto {_ms(b['storage'])} | "
        f"wait {_ms(b['other'])}"
    )
    attempt = f" attempt={span.attempt}" if span.attempt else ""
    status = "" if span.status == "ok" else f" !{span.status}"
    silo = f" @{span.silo_id}" if span.silo_id else ""
    return (
        f"{span.kind} {span.name}{silo}  {_ms(span.duration)}ms  "
        f"[{parts}]{attempt}{status}"
    )


def render_tree(tree: TraceTree, title: str = "", max_lines: int = 200) -> str:
    """The whole causal tree, one indented line per span."""
    walk = tree.walk()
    root = tree.root
    header = (
        f"{title or root.name}: trace {root.trace_id} "
        f"({len(walk)} spans, {_ms(root.duration)} ms end-to-end)"
    )
    lines = [header]
    for depth, span in walk[:max_lines]:
        prefix = "  " * depth + ("└─ " if depth else "── ")
        lines.append(prefix + format_span_line(span))
    if len(walk) > max_lines:
        lines.append(f"  … {len(walk) - max_lines} more spans")
    return "\n".join(lines)


def render_critical_path(tree: TraceTree) -> str:
    """The root→leaf chain that determined the end-to-end latency."""
    path = tree.critical_path()
    lines = [f"critical path ({len(path)} spans):"]
    previous_end = tree.root.start
    for span in path:
        contribution = (span.end or span.start) - previous_end
        previous_end = span.end or span.start
        lines.append(
            f"  +{_ms(max(0.0, contribution))}ms  {format_span_line(span)}"
        )
    totals = tree.totals()
    lines.append(
        "tree totals: "
        + " ".join(f"{key}={_ms(value)}ms" for key, value in totals.items())
    )
    return "\n".join(lines)


def _bar(fraction: float, width: int = 24) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "█" * filled + "·" * (width - filled)


def render_profile(
    report: "ProfileReport",
    title: str = "continuous profile",
    max_rows: int = 30,
) -> str:
    """The flame-style report: hottest (class, method) rows, bar-scaled.

    One line per method row — CPU service share of the kernel total as a
    bar, then the service/wait/queue/storage split in milliseconds — plus
    the hot-activation and mailbox-backlog sections.
    """
    total = report.total_cpu_seconds
    lines = [
        f"{title}: {_ms(report.attributed_cpu_seconds)} of "
        f"{_ms(total)} ms CPU attributed "
        f"({report.coverage * 100:.1f}% coverage, {report.turns} turns)"
    ]
    for row in report.rows[:max_rows]:
        share = row.cpu_service / total if total > 0 else 0.0
        lines.append(
            f"  {_bar(share)} {share * 100:5.1f}%  {row.label}  "
            f"[cpu {_ms(row.cpu_service)} | core-wait {_ms(row.cpu_wait)} | "
            f"queue {_ms(row.queue_wait)} | sto {_ms(row.storage_wait)}] "
            f"calls={row.calls}"
            + (f" errors={row.errors}" if row.errors else "")
        )
    if len(report.rows) > max_rows:
        lines.append(f"  … {len(report.rows) - max_rows} more rows")
    if report.method_overflow or report.activation_overflow:
        lines.append(
            f"  (overflow: {report.method_overflow} method fetches, "
            f"{report.activation_overflow} activation fetches collapsed)"
        )
    lines.append("hot activations (by CPU service):")
    for row in report.hot_activations:
        lines.append(
            f"  {row.label}  cpu {_ms(row.cpu_service)}ms  "
            f"calls={row.calls}"
        )
    if not report.hot_activations:
        lines.append("  (none)")
    lines.append("mailbox backlogs (deepest first):")
    for actor, depth, silo_id in report.backlogs:
        lines.append(f"  {actor} @{silo_id}  depth={depth}")
    if not report.backlogs:
        lines.append("  (none)")
    return "\n".join(lines)


def render_alerts(alerts: "list[Alert]", title: str = "alerts") -> str:
    """The alert log, one transition per line, oldest first."""
    lines = [title]
    for alert in alerts:
        marker = "FIRING " if alert.state == "firing" else "cleared"
        lines.append(
            f"  t={alert.at:8.3f}  {marker} [{alert.severity}] {alert.rule}: "
            f"value {alert.value:.6g} vs threshold {alert.threshold:.6g}"
        )
    if not alerts:
        lines.append("  (none)")
    return "\n".join(lines)


def render_health(monitor: "HealthMonitor", title: str = "health") -> str:
    """Current rule states plus the alert history."""
    active = set(monitor.active())
    lines = [f"{title}: {len(active)} of {len(monitor.rules)} rules firing"]
    for rule in monitor.rules:
        value = monitor.last_value(rule.name)
        shown = "n/a" if value != value else f"{value:.6g}"  # NaN → unevaluated
        state = "FIRING" if rule.name in active else "ok"
        lines.append(
            f"  [{state:6}] {rule.name}: {rule.metric}"
            + (f".{rule.value_field}" if rule.value_field else "")
            + (" rate" if rule.mode == "rate" else "")
            + f" {rule.op} {rule.threshold:.6g} (last {shown})"
        )
    lines.append(render_alerts(monitor.alerts, "alert history:"))
    return "\n".join(lines)


def render_metrics(
    registry: MetricsRegistry,
    title: str = "metrics appendix",
    only_prefixes: tuple[str, ...] = (),
) -> str:
    """A sorted ``name{labels} = value`` listing of the registry."""
    lines = [title]
    snapshot = registry.snapshot()
    for key in sorted(snapshot):
        value = snapshot[key]
        if only_prefixes and not any(key.startswith(p) for p in only_prefixes):
            continue
        if isinstance(value, dict):
            inner = ", ".join(f"{k}={v:.6g}" for k, v in value.items())
            lines.append(f"  {key} = {{{inner}}}")
        else:
            lines.append(f"  {key} = {value:.6g}")
    return "\n".join(lines)
