"""A runtime-wide metrics registry: counters, gauges, histograms, probes.

The Reactors line of work argues that an actor *database* system must
absorb monitoring and introspection as first-class database features; this
module is that substrate for our runtime.  Design constraints:

- **Cheap on the hot path.**  A :class:`Counter` increment is one attribute
  add on a pre-bound object; subsystems hold their counters as attributes
  instead of looking them up per event.
- **Pull where possible.**  Most figures the operator wants (mailbox depth,
  utilization, RCU/WCU totals, queue backlog) already exist as state
  somewhere; a *probe* is a zero-cost registration of a callable that is
  only evaluated at snapshot time, so steady-state running pays nothing.
- **Label-aware.**  Metrics carry labels (``silo="silo-0"``), so snapshots
  can be taken per silo or aggregated cluster-wide.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Callable, Iterable

DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def format_metric(name: str, labels: dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` rendering used in snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {format_metric(self.name, self.labels)}={self.value}>"


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {format_metric(self.name, self.labels)}={self.value}>"


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    Boundaries are upper-inclusive bucket edges; one overflow bucket catches
    everything beyond the last edge.  ``observe`` is O(log buckets).
    """

    __slots__ = ("name", "labels", "boundaries", "bucket_counts", "count",
                 "total", "minimum", "maximum")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        boundaries: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.boundaries = tuple(sorted(boundaries))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Approximate quantile from bucket boundaries (upper edge).

        The estimate is the upper edge of the *non-empty* bucket holding the
        ranked observation, clamped into ``[minimum, maximum]`` so a sparse
        histogram never reports an edge no observation ever reached.
        ``fraction=0.0`` is the observed minimum, ``1.0`` the observed
        maximum; an empty histogram reports 0.0 for any fraction.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return 0.0
        if fraction == 0.0:
            return self.minimum
        rank = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue  # an empty bucket cannot hold the ranked sample
            seen += bucket_count
            if seen >= rank:
                if index >= len(self.boundaries):
                    # Overflow bucket: no finite edge, report the true max.
                    return self.maximum
                return min(max(self.boundaries[index], self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - defensive

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if self.count == 0 else self.minimum,
            "max": 0.0 if self.count == 0 else self.maximum,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of named, labeled instruments.

    Subsystems fetch instruments once (``registry.counter("net.drops")``)
    and keep the returned object; probes let state that already exists be
    exported without any hot-path cost.

    **Label-cardinality guard**: a metric name admits at most
    ``max_label_sets`` distinct label sets.  Beyond the cap, new label sets
    collapse into one shared ``{overflow=true}`` instrument per name and
    :attr:`dropped_label_sets` counts the collapses — so an unbounded label
    (a per-activation id, say) degrades resolution instead of ballooning
    snapshot cost and memory.  Unlabeled instruments are exempt.
    """

    def __init__(self, max_label_sets: int = 256) -> None:
        self.max_label_sets = max_label_sets
        self.dropped_label_sets = 0
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._probes: dict[tuple, Callable[[], float]] = {}
        self._series_count: dict[str, int] = {}

    # -- instrument factories --------------------------------------------------

    def _admit(self, name: str, labels: dict[str, str]) -> dict[str, str]:
        """The label set to store a new instrument under (capped per name)."""
        if not labels:
            return labels
        count = self._series_count.get(name, 0)
        if count >= self.max_label_sets:
            self.dropped_label_sets += 1
            return {"overflow": "true"}
        self._series_count[name] = count + 1
        return labels

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            labels = self._admit(name, labels)
            key = (name, _label_key(labels))
            counter = self._counters.get(key)
            if counter is None:
                counter = Counter(name, labels)
                self._counters[key] = counter
        return counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            labels = self._admit(name, labels)
            key = (name, _label_key(labels))
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = Gauge(name, labels)
                self._gauges[key] = gauge
        return gauge

    def histogram(
        self,
        name: str,
        boundaries: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            labels = self._admit(name, labels)
            key = (name, _label_key(labels))
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = Histogram(name, labels, boundaries)
                self._histograms[key] = histogram
        return histogram

    def register_probe(
        self, name: str, probe: Callable[[], float], **labels: str
    ) -> None:
        """Register a callable evaluated (only) at snapshot time."""
        self._probes[(name, _label_key(labels))] = probe

    def unregister_probes(self, **labels: str) -> int:
        """Drop every probe carrying all given labels (e.g. a dead silo's)."""
        items = _label_key(labels)
        doomed = [
            key for key in self._probes
            if all(pair in key[1] for pair in items)
        ]
        for key in doomed:
            del self._probes[key]
        return len(doomed)

    # -- snapshots ------------------------------------------------------------

    def _matches(self, labels: dict[str, str], selector: dict[str, str]) -> bool:
        return all(labels.get(k) == v for k, v in selector.items())

    def snapshot(self, **selector: str) -> dict[str, Any]:
        """Current value of every instrument matching ``selector`` labels.

        Keys are ``name{label=value,...}`` strings; histogram values are
        summary dicts.  Probes are evaluated here and nowhere else; a probe
        whose underlying object died reports ``nan`` rather than raising.
        """
        out: dict[str, Any] = {}
        for counter in self._counters.values():
            if self._matches(counter.labels, selector):
                out[format_metric(counter.name, counter.labels)] = counter.value
        for gauge in self._gauges.values():
            if self._matches(gauge.labels, selector):
                out[format_metric(gauge.name, gauge.labels)] = gauge.value
        for histogram in self._histograms.values():
            if self._matches(histogram.labels, selector):
                out[format_metric(histogram.name, histogram.labels)] = (
                    histogram.summary()
                )
        for (name, label_items), probe in self._probes.items():
            labels = dict(label_items)
            if self._matches(labels, selector):
                try:
                    value = probe()
                except Exception:  # noqa: BLE001 - dead probe target
                    value = math.nan
                out[format_metric(name, labels)] = value
        return out

    def cluster_totals(self) -> dict[str, float]:
        """Aggregate numeric metrics across label sets by bare name.

        Counters, gauges and probe values with the same name are summed
        (e.g. per-silo mailbox depths roll up to a cluster backlog);
        histograms are excluded (merging them needs bucket-wise addition
        that per-silo views rarely want).
        """
        totals: dict[str, float] = {}
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                continue
            name = key.split("{", 1)[0]
            if isinstance(value, float) and math.isnan(value):
                continue
            totals[name] = totals.get(name, 0.0) + value
        return totals
