"""Causal tracing of actor invocations in virtual time.

Every traced message (ask, tell, retry attempt, timer fire, reminder
delivery, ingest dispatch) becomes one :class:`Span`.  Spans link to their
parent — the invocation whose handler issued them — so one client request
reconstructs as the complete caller→callee tree, e.g. an organization
live-data request fanning out to every channel actor of the tenant.

Each span carries a breakdown of where its virtual time went:

``queue``
    mailbox wait — from enqueue on the target activation until its turn
    started (for the first message of a fresh activation this includes
    activation start: CPU charge, state load, ``on_activate``);
``cpu``
    time spent acquiring and occupying the hosting silo's CPU (queueing
    for a free core *plus* service — the silo-contention signal);
``network``
    request plus reply transfer time on the simulated network;
``storage``
    grain-storage latency and throttle stalls charged inside the turn
    (state loads/flushes through the activation's state cell);
``other``
    the residual — dominated by awaiting child calls, whose time is
    itemized by the child spans themselves.

The five components sum to the span's end-to-end duration by construction
(``other`` is the remainder), and the measured four are each individually
asserted non-negative in tests, which is what makes the breakdown
trustworthy rather than decorative.

The tracer is **disabled by default**: every producer call site guards on
``tracer.enabled`` (a plain attribute read), so the hot path allocates
nothing when tracing is off.
"""

from __future__ import annotations

from typing import Any, Iterable

SPAN_KINDS = (
    "ask", "tell", "timer", "reminder", "ingest", "retrying-ask", "client",
    "migrate", "wal-journal", "wal-replay", "fenced-write", "quarantine-park",
    "view-fold",
)


class Span:
    """One traced invocation (or logical client operation)."""

    __slots__ = (
        "span_id", "parent_id", "trace_id", "_name", "_method", "kind",
        "caller", "silo_id", "start", "end", "queue", "cpu", "network",
        "storage", "status", "attempt", "error",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        trace_id: int,
        name: "str | tuple",
        kind: str,
        caller: str,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self._name = name
        self._method = None
        self.kind = kind
        self.caller = caller
        self.silo_id = ""
        self.start = start
        self.end: float | None = None
        self.queue = 0.0
        self.cpu = 0.0
        self.network = 0.0
        self.storage = 0.0
        self.status = "open"
        self.attempt = 0
        self.error = ""

    @property
    def name(self) -> str:
        """The span's display name.

        Producers on the hot path hand over the actor key plus a method
        name instead of a formatted string — string building is deferred to
        the first read (reporting time), keeping per-message tracing cost
        down.
        """
        method = self._method
        if method is not None:
            self._name = f"{self._name.qualified()}.{method}"
            self._method = None
        return self._name

    @property
    def duration(self) -> float:
        """End-to-end virtual seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def other(self) -> float:
        """Residual time: awaiting children / application waits."""
        if self.end is None:
            return 0.0
        return self.duration - self.queue - self.cpu - self.network - self.storage

    def breakdown(self) -> dict[str, float]:
        """The five components; they sum to :attr:`duration`."""
        return {
            "queue": self.queue,
            "cpu": self.cpu,
            "network": self.network,
            "storage": self.storage,
            "other": self.other,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span #{self.span_id} {self.kind} {self.name} "
            f"status={self.status} dur={self.duration:.6f}>"
        )


class Tracer:
    """Collects spans; disabled tracers are inert attribute checks.

    ``max_spans`` bounds memory: once full, new spans are counted as
    dropped instead of stored (the trace tree of a bounded scenario is the
    use case, not unbounded flight recording).
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        # With a FlightRecorder attached (repro.obs.recorder), spans route
        # to it instead of accumulating here: completed root traces are
        # scored and either retained or downsampled, so the max_spans
        # cliff never applies.
        self.recorder = None
        self._spans: list[Span] = []
        self._next_id = 0

    # -- producing -------------------------------------------------------------

    def begin(
        self,
        name: "str | Any",
        kind: str,
        caller: str,
        now: float,
        parent: "Span | None" = None,
        start: float | None = None,
        method: str | None = None,
    ) -> Span | None:
        """Open a span; returns None when disabled or over capacity.

        ``name`` is a pre-formatted string — or, with ``method`` given, an
        actor key whose ``Type/id.method`` string form is built lazily on
        first read (see :attr:`Span.name`).
        """
        if not self.enabled:
            return None
        spans = self._spans
        recorder = self.recorder
        if recorder is None and len(spans) >= self.max_spans:
            self.dropped += 1
            return None
        span_id = self._next_id + 1
        self._next_id = span_id
        # Inlined Span construction: this is the per-message hot path, and
        # a plain __init__ call measurably widens the tracing overhead.
        span = Span.__new__(Span)
        span.span_id = span_id
        if parent is not None:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        else:
            span.parent_id = None
            span.trace_id = span_id
        span._name = name
        span._method = method
        span.kind = kind
        span.caller = caller
        span.silo_id = ""
        span.start = now if start is None else start
        span.end = None
        span.queue = 0.0
        span.cpu = 0.0
        span.network = 0.0
        span.storage = 0.0
        span.status = "open"
        span.attempt = 0
        span.error = ""
        if recorder is None:
            spans.append(span)
        else:
            recorder.on_begin(span)
        return span

    def finish(
        self, span: Span | None, now: float, status: str = "ok", error: str = ""
    ) -> None:
        """Close a span (idempotent — the first finish wins)."""
        if span is None or span.end is not None:
            return
        span.end = now
        span.status = status
        if error:
            span.error = error
        if span.parent_id is None:
            recorder = self.recorder
            if recorder is not None:
                recorder.on_root_finish(span, now)

    # -- consuming -------------------------------------------------------------

    def spans(self, trace_id: int | None = None) -> list[Span]:
        """All recorded spans, optionally restricted to one trace."""
        if trace_id is None:
            return list(self._spans)
        return [s for s in self._spans if s.trace_id == trace_id]

    def roots(self) -> list[Span]:
        """Spans with no parent — one per causal tree."""
        return [s for s in self._spans if s.parent_id is None]

    def find_roots(self, name_substring: str) -> list[Span]:
        """Root spans whose name contains ``name_substring``."""
        return [s for s in self.roots() if name_substring in s.name]

    def clear(self) -> None:
        """Drop all recorded spans (e.g. after a warmup phase)."""
        self._spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)


class TraceTree:
    """A reconstructed causal tree for one trace."""

    def __init__(self, root: Span, children: dict[int, list[Span]]) -> None:
        self.root = root
        self._children = children

    @classmethod
    def build(cls, spans: Iterable[Span], root: Span | None = None) -> "TraceTree":
        """Index ``spans`` (one trace's worth) under ``root``.

        When ``root`` is omitted, the unique parentless span is used.
        """
        spans = list(spans)
        children: dict[int, list[Span]] = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda s: (s.start, s.span_id))
        if root is None:
            roots = [s for s in spans if s.parent_id is None]
            if len(roots) != 1:
                raise ValueError(
                    f"expected exactly one root span, found {len(roots)}"
                )
            root = roots[0]
        return cls(root, children)

    def children(self, span: Span) -> list[Span]:
        return self._children.get(span.span_id, [])

    def walk(self) -> list[tuple[int, Span]]:
        """Depth-first (depth, span) pairs starting at the root."""
        out: list[tuple[int, Span]] = []

        def visit(span: Span, depth: int) -> None:
            out.append((depth, span))
            for child in self.children(span):
                visit(child, depth + 1)

        visit(self.root, 0)
        return out

    def size(self) -> int:
        """Number of spans in the tree (root included)."""
        return len(self.walk())

    def critical_path(self) -> list[Span]:
        """Root→leaf chain through the latest-finishing child at each level.

        In a fan-out the last child to complete is the one the parent was
        actually waiting for; following it explains the end-to-end latency.
        """
        path = [self.root]
        current = self.root
        while True:
            children = self.children(current)
            if not children:
                return path
            finished = [c for c in children if c.end is not None]
            if not finished:
                return path
            current = max(finished, key=lambda c: (c.end, c.span_id))
            path.append(current)

    def totals(self) -> dict[str, float]:
        """Sum of each breakdown component over the whole tree."""
        totals = {"queue": 0.0, "cpu": 0.0, "network": 0.0, "storage": 0.0,
                  "other": 0.0}
        for _depth, span in self.walk():
            for component, value in span.breakdown().items():
                totals[component] += value
        return totals


def span_summary(span: Span) -> dict[str, Any]:
    """A serializable dict view of one span (for reports and tests)."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "trace_id": span.trace_id,
        "name": span.name,
        "kind": span.kind,
        "caller": span.caller,
        "silo": span.silo_id,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "status": span.status,
        "attempt": span.attempt,
        **span.breakdown(),
    }
