"""SLO health monitoring: declarative rules over metrics snapshots.

An operator's second question (after "who is eating the cluster?" —
:mod:`repro.obs.profile`) is "is the platform healthy *right now*?".  This
module answers it with a small rule engine over
:class:`~repro.obs.metrics.MetricsRegistry` snapshots:

- :class:`SloRule` declares one objective — a metric name, an optional
  histogram field (``p99``), a value/rate mode, a comparison and a
  threshold — plus hysteresis (``for_seconds`` before firing,
  ``clear_seconds`` before clearing) so alerts do not flap on single-tick
  spikes;
- :class:`HealthMonitor` evaluates every rule on a virtual-time timer,
  emits typed :class:`Alert` events on state *transitions* only, and keeps
  a bounded alert log plus the set of currently-firing rules.

Evaluation is pull-only: nothing on the message hot path knows the monitor
exists.  One evaluation costs one registry snapshot plus a few comparisons,
at the operator-chosen interval.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.scheduler import Scheduler, Task

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_AGGREGATES = {
    "sum": sum,
    "max": max,
    "min": min,
}


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective.

    ``metric`` names a registry instrument (bare name — label sets are
    combined per ``aggregate``).  ``value_field`` selects a field from
    histogram summaries (``p99``, ``mean`` …).  ``mode="rate"`` evaluates
    the per-second delta between consecutive snapshots, which is how
    cumulative counters (ingest goodput, error totals) become levels.
    A rule whose metric is absent from the snapshot is skipped — rules may
    be declared for subsystems that are not deployed.
    """

    name: str
    metric: str
    op: str = ">"
    threshold: float = 0.0
    value_field: str | None = None
    mode: str = "value"  # "value" | "rate"
    aggregate: str = "sum"  # "sum" | "max" | "min" across label sets
    for_seconds: float = 0.0
    clear_seconds: float = 0.0
    severity: str = "warning"  # "warning" | "critical"
    description: str = ""

    def validate(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.mode not in ("value", "rate"):
            raise ValueError(f"rule {self.name!r}: unknown mode {self.mode!r}")
        if self.aggregate not in _AGGREGATES:
            raise ValueError(
                f"rule {self.name!r}: unknown aggregate {self.aggregate!r}"
            )
        if self.for_seconds < 0 or self.clear_seconds < 0:
            raise ValueError(f"rule {self.name!r}: negative hysteresis")


@dataclass(frozen=True)
class Alert:
    """A typed health event: one rule crossing into or out of breach."""

    rule: str
    severity: str
    state: str  # "firing" | "cleared"
    at: float  # virtual time of the transition
    value: float  # the observed value that crossed (or recovered)
    threshold: float
    description: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "at": self.at,
            "value": self.value,
            "threshold": self.threshold,
            "description": self.description,
        }


class _RuleState:
    """Hysteresis bookkeeping for one rule."""

    __slots__ = (
        "firing", "breach_since", "ok_since", "last_value",
        "prev_raw", "prev_at",
    )

    def __init__(self) -> None:
        self.firing = False
        self.breach_since: float | None = None
        self.ok_since: float | None = None
        self.last_value = math.nan
        # Previous raw sample for rate mode.
        self.prev_raw: float | None = None
        self.prev_at: float | None = None


class HealthMonitor:
    """Evaluates SLO rules on a timer; emits alerts with hysteresis."""

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: list[SloRule],
        max_alerts: int = 1000,
    ) -> None:
        for rule in rules:
            rule.validate()
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO rule names")
        self.registry = registry
        self.rules = list(rules)
        self.max_alerts = max_alerts
        self.alerts: list[Alert] = []
        self.alerts_dropped = 0
        self.evaluations = 0
        self.listeners: list[Callable[[Alert], None]] = []
        self._states: dict[str, _RuleState] = {r.name: _RuleState() for r in rules}
        self._task: "Task | None" = None
        registry.register_probe("health.active_alerts", lambda: len(self.active()))
        registry.register_probe("health.alerts_emitted", self._alerts_emitted)
        registry.register_probe("health.evaluations", lambda: self.evaluations)

    def _alerts_emitted(self) -> int:
        return len(self.alerts) + self.alerts_dropped

    # -- rule evaluation --------------------------------------------------------

    def _observe(
        self, rule: SloRule, snapshot: dict[str, Any], now: float
    ) -> float | None:
        """The rule's current value, or None when it cannot be evaluated."""
        values: list[float] = []
        for key, value in snapshot.items():
            name = key.split("{", 1)[0]
            if name != rule.metric:
                continue
            if isinstance(value, dict):
                if rule.value_field is None:
                    continue
                value = value.get(rule.value_field)
            if not isinstance(value, (int, float)) or (
                isinstance(value, float) and math.isnan(value)
            ):
                continue
            values.append(float(value))
        if not values:
            return None
        raw = _AGGREGATES[rule.aggregate](values)
        if rule.mode == "value":
            return raw
        # Rate mode: per-second delta between consecutive evaluations.
        state = self._states[rule.name]
        prev_raw, prev_at = state.prev_raw, state.prev_at
        state.prev_raw, state.prev_at = raw, now
        if prev_raw is None or prev_at is None or now <= prev_at:
            return None  # first sample — no rate yet
        return (raw - prev_raw) / (now - prev_at)

    def _emit(self, alert: Alert) -> None:
        if len(self.alerts) >= self.max_alerts:
            del self.alerts[0]
            self.alerts_dropped += 1
        self.alerts.append(alert)
        for listener in self.listeners:
            listener(alert)

    def evaluate(self, now: float) -> list[Alert]:
        """One evaluation pass; returns the alerts it emitted (if any)."""
        self.evaluations += 1
        snapshot = self.registry.snapshot()
        emitted: list[Alert] = []
        for rule in self.rules:
            state = self._states[rule.name]
            value = self._observe(rule, snapshot, now)
            if value is None:
                continue  # metric absent (or no rate yet): no verdict
            state.last_value = value
            breached = _OPS[rule.op](value, rule.threshold)
            if breached:
                state.ok_since = None
                if state.breach_since is None:
                    state.breach_since = now
                if (
                    not state.firing
                    and now - state.breach_since >= rule.for_seconds
                ):
                    state.firing = True
                    alert = Alert(
                        rule.name, rule.severity, "firing", now,
                        value, rule.threshold, rule.description,
                    )
                    self._emit(alert)
                    emitted.append(alert)
            else:
                state.breach_since = None
                if state.ok_since is None:
                    state.ok_since = now
                if state.firing and now - state.ok_since >= rule.clear_seconds:
                    state.firing = False
                    alert = Alert(
                        rule.name, rule.severity, "cleared", now,
                        value, rule.threshold, rule.description,
                    )
                    self._emit(alert)
                    emitted.append(alert)
        return emitted

    # -- introspection ----------------------------------------------------------

    def active(self) -> list[str]:
        """Names of the rules currently firing."""
        return [name for name, state in self._states.items() if state.firing]

    def last_value(self, rule_name: str) -> float:
        """Most recently observed value for one rule (NaN before any)."""
        return self._states[rule_name].last_value

    # -- timer-driven operation -------------------------------------------------

    def attach(self, scheduler: "Scheduler", interval: float = 1.0) -> "Task":
        """Evaluate every ``interval`` virtual seconds until :meth:`detach`."""
        if interval <= 0:
            raise ValueError("health interval must be positive")
        if self._task is not None:
            raise RuntimeError("health monitor already attached")

        async def loop() -> None:
            while True:
                await scheduler.sleep(interval)
                self.evaluate(scheduler.now)

        self._task = scheduler.spawn(loop(), name="health-monitor")
        return self._task

    def detach(self) -> None:
        """Stop the evaluation loop (idempotent)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None


def default_slo_rules(
    p99_ask_latency: float = 0.5,
    min_ingest_rate: float = 1.0,
    max_backlog: float = 1000.0,
    max_error_rate: float = 1.0,
    max_cpu_imbalance: float = 3.0,
    max_view_staleness: float = 1.0,
    max_head_bytes: float = 256e6,
) -> list[SloRule]:
    """The stock rule set an SHM-platform operator would start from.

    Rules whose metric is not deployed (e.g. ``ingest.accepted`` without a
    gateway, ``runtime.ask_latency_seconds`` without the profiler) simply
    never evaluate, so the set is safe on any runtime.
    """
    return [
        SloRule(
            name="ask-p99-latency",
            metric="runtime.ask_latency_seconds",
            value_field="p99",
            op=">",
            threshold=p99_ask_latency,
            for_seconds=2.0,
            clear_seconds=2.0,
            severity="critical",
            description="p99 ask latency above SLO",
        ),
        SloRule(
            name="ingest-goodput",
            metric="ingest.accepted",
            mode="rate",
            op="<",
            threshold=min_ingest_rate,
            for_seconds=2.0,
            clear_seconds=2.0,
            severity="critical",
            description="ingest goodput below SLO",
        ),
        SloRule(
            name="heartbeat-misses",
            metric="cluster.silos_suspected",
            op=">=",
            threshold=1.0,
            severity="critical",
            description="a silo is missing membership heartbeats",
        ),
        SloRule(
            name="silo-quarantined",
            metric="cluster.quarantined_silos",
            op=">=",
            threshold=1.0,
            severity="critical",
            description="a silo lost its membership lease and self-quarantined",
        ),
        SloRule(
            name="mailbox-backlog",
            metric="silo.mailbox_depth",
            aggregate="max",
            op=">",
            threshold=max_backlog,
            for_seconds=1.0,
            clear_seconds=1.0,
            description="an activation mailbox is backing up",
        ),
        SloRule(
            name="error-rate",
            metric="runtime.errors",
            mode="rate",
            op=">",
            threshold=max_error_rate,
            for_seconds=1.0,
            clear_seconds=2.0,
            description="actor calls are failing",
        ),
        SloRule(
            name="cluster-imbalance",
            metric="cluster.cpu_imbalance",
            op=">",
            threshold=max_cpu_imbalance,
            for_seconds=3.0,
            clear_seconds=3.0,
            description=(
                "silo CPU utilization is imbalanced (max/min ratio) — "
                "hot actors are concentrating on few silos"
            ),
        ),
        SloRule(
            name="view-staleness",
            # Registered only when a ViewRegistry has standing queries, so
            # the rule never evaluates (metric absent) on view-less
            # deployments.  The probe reports the age of the oldest delta
            # not yet folded into its view shard — the freshness bound a
            # dashboard reader actually observes.
            metric="views.staleness_seconds",
            aggregate="max",
            op=">",
            threshold=max_view_staleness,
            for_seconds=0.5,
            clear_seconds=1.0,
            description=(
                "materialized views are falling behind the ingest stream "
                "(unfolded deltas older than the staleness bound)"
            ),
        ),
        SloRule(
            name="tsblocks-head-memory",
            # Raw (uncompressed) points across all hot heads.  Sustained
            # growth past the budget means sensors are not sealing blocks —
            # block_size misconfigured (0 = tiering off) or capacities were
            # raised without raising the budget — and per-sensor history is
            # back to costing raw-Python memory.
            metric="storage.head_bytes",
            op=">",
            threshold=max_head_bytes,
            for_seconds=2.0,
            clear_seconds=2.0,
            description=(
                "hot-head memory of the tiered time-series store exceeds "
                "its budget (points are not being sealed into blocks)"
            ),
        ),
        SloRule(
            name="trace-drops",
            # Registered only when a FlightRecorder attaches, so the rule
            # never evaluates (metric absent) unless the recorder is on —
            # with retention active, any span drop means the tracer was
            # left on the bounded store path and is losing evidence.
            metric="trace.dropped_spans",
            mode="rate",
            op=">",
            threshold=0.0,
            description=(
                "spans are being dropped while the flight recorder is "
                "enabled — tail-based retention should make drops impossible"
            ),
        ),
    ]
