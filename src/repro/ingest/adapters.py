"""Device payload adapters: heterogeneous formats → normalized batches.

Non-functional requirement 3 (§2): "The IoT data platform must be modular
in its support for data ingested from IoT devices and allow for
communication employing different data formats."  Adapters translate a raw
device payload into the platform's normalized ingest form — a mapping of
channel id to ``(timestamp, value)`` pairs — so the actor tier never sees
device dialects.

Three realistic dialects are provided (JSON-document, CSV line batch, and
a packed binary frame), plus a registry that dispatches by declared format.
"""

from __future__ import annotations

import struct
from typing import Callable, Protocol

from ..errors import PlatformError

NormalizedBatch = dict[str, list[tuple[float, float]]]


class AdapterError(PlatformError):
    """The payload does not match its declared format."""


class PayloadAdapter(Protocol):
    """Translate one device payload into a normalized batch."""

    def parse(self, payload: object) -> NormalizedBatch:
        ...  # pragma: no cover - protocol


class JsonDocumentAdapter:
    """Document dialect: ``{"channels": {cid: [{"t": ..., "v": ...}]}}``.

    The shape a modern HTTP/MQTT device gateway would POST.
    """

    def parse(self, payload: object) -> NormalizedBatch:
        if not isinstance(payload, dict) or "channels" not in payload:
            raise AdapterError("json document must have a 'channels' mapping")
        channels = payload["channels"]
        if not isinstance(channels, dict):
            raise AdapterError("'channels' must be a mapping")
        batch: NormalizedBatch = {}
        for channel_id, readings in channels.items():
            points = []
            for reading in readings:
                try:
                    points.append((float(reading["t"]), float(reading["v"])))
                except (KeyError, TypeError, ValueError) as exc:
                    raise AdapterError(
                        f"bad reading in channel {channel_id!r}: {reading!r}"
                    ) from exc
            batch[str(channel_id)] = points
        return batch


class CsvLineAdapter:
    """Line dialect: ``channel_id,timestamp,value`` per line.

    The shape of a legacy data logger upload (the paper's SHM loggers
    convert analog signals into digital outputs batched as text).
    """

    def parse(self, payload: object) -> NormalizedBatch:
        if isinstance(payload, bytes):
            payload = payload.decode("utf-8")
        if not isinstance(payload, str):
            raise AdapterError("csv payload must be text")
        batch: NormalizedBatch = {}
        for line_number, line in enumerate(payload.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise AdapterError(
                    f"line {line_number}: expected 'channel,ts,value', got {line!r}"
                )
            channel_id, ts_text, value_text = (part.strip() for part in parts)
            try:
                point = (float(ts_text), float(value_text))
            except ValueError as exc:
                raise AdapterError(f"line {line_number}: non-numeric field") from exc
            batch.setdefault(channel_id, []).append(point)
        return batch


class BinaryFrameAdapter:
    """Packed dialect: a frame of ``(channel_index, timestamp, value)``.

    Header: ``!HH`` (version, reading count); then per reading
    ``!Hdd``.  Channel indexes are mapped through the frame's channel
    table, supplied at adapter construction (devices are provisioned with
    their channel ids).  The shape of a bandwidth-constrained radio uplink.
    """

    VERSION = 1
    _HEADER = struct.Struct("!HH")
    _READING = struct.Struct("!Hdd")

    def __init__(self, channel_table: list[str]) -> None:
        if not channel_table:
            raise ValueError("binary adapter needs a channel table")
        self.channel_table = list(channel_table)

    def parse(self, payload: object) -> NormalizedBatch:
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise AdapterError("binary payload must be bytes")
        data = bytes(payload)
        if len(data) < self._HEADER.size:
            raise AdapterError("frame shorter than header")
        version, count = self._HEADER.unpack_from(data, 0)
        if version != self.VERSION:
            raise AdapterError(f"unsupported frame version {version}")
        expected = self._HEADER.size + count * self._READING.size
        if len(data) != expected:
            raise AdapterError(
                f"frame length {len(data)} != expected {expected} for {count} readings"
            )
        batch: NormalizedBatch = {}
        offset = self._HEADER.size
        for _ in range(count):
            index, timestamp, value = self._READING.unpack_from(data, offset)
            offset += self._READING.size
            if index >= len(self.channel_table):
                raise AdapterError(f"channel index {index} outside channel table")
            batch.setdefault(self.channel_table[index], []).append((timestamp, value))
        return batch

    @classmethod
    def encode(
        cls, channel_table: list[str], batch: NormalizedBatch
    ) -> bytes:
        """Inverse of :meth:`parse` (used by device simulators and tests)."""
        index_of = {cid: i for i, cid in enumerate(channel_table)}
        readings = [
            (index_of[channel_id], timestamp, value)
            for channel_id, points in batch.items()
            for timestamp, value in points
        ]
        frame = bytearray(cls._HEADER.pack(cls.VERSION, len(readings)))
        for reading in readings:
            frame.extend(cls._READING.pack(*reading))
        return bytes(frame)


class AdapterRegistry:
    """Dispatch payloads to adapters by declared format name."""

    def __init__(self) -> None:
        self._adapters: dict[str, PayloadAdapter] = {}

    def register(self, format_name: str, adapter: PayloadAdapter) -> None:
        """Add or replace the adapter for a format."""
        self._adapters[format_name] = adapter

    def formats(self) -> list[str]:
        """Registered format names."""
        return sorted(self._adapters)

    def parse(self, format_name: str, payload: object) -> NormalizedBatch:
        """Normalize a payload declared to be in ``format_name``."""
        adapter = self._adapters.get(format_name)
        if adapter is None:
            raise AdapterError(f"no adapter registered for format {format_name!r}")
        return adapter.parse(payload)


def default_registry(binary_channel_table: list[str] | None = None) -> AdapterRegistry:
    """A registry with the three standard dialects installed."""
    registry = AdapterRegistry()
    registry.register("json", JsonDocumentAdapter())
    registry.register("csv", CsvLineAdapter())
    if binary_channel_table:
        registry.register("binary", BinaryFrameAdapter(binary_channel_table))
    return registry
