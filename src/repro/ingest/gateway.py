"""The ingestion gateway: a stateless tier between devices and actors.

The paper (§6.1): "we envision that ingestion of sensor data points will be
based on a REST interface in a production deployment ... As part of data
ingestion, message queues can be employed to accommodate for bursty
behavior in sensor measurements."  This module is that tier:

- :class:`IngestGateway` accepts raw device payloads (any registered
  format), normalizes them through the adapter registry, and enqueues them
  on a bounded message queue;
- a pool of dispatcher tasks drains the queue into sensor actors, limiting
  the concurrency the actor tier sees (back-pressure instead of overload);
- overflow policy is explicit: ``reject`` (surface an error to the device,
  like an HTTP 429) or ``drop_oldest`` (favour fresh telemetry);
- an optional :class:`~repro.runtime.resilience.CircuitBreaker` turns
  backend throttling into bounded behaviour: dispatchers trip the breaker
  on :class:`~repro.errors.ThrottlingError`, re-enqueue the envelope, and
  back off, while :meth:`IngestGateway.submit` sheds new uploads once the
  breaker is open and the queue is past a watermark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlatformError, ThrottlingError
from ..kernel.scheduler import Scheduler, Task
from ..kernel.sync import Queue
from ..obs.trace import Tracer
from ..runtime.resilience import CircuitBreaker
from ..shm.platform import ShmPlatform
from .adapters import AdapterRegistry, NormalizedBatch


class GatewayOverloadedError(PlatformError):
    """The ingest queue is full and the policy is ``reject``."""


@dataclass
class GatewayStats:
    """Operational counters for the gateway."""

    accepted: int = 0
    rejected: int = 0
    dropped: int = 0
    dispatched: int = 0
    # Envelopes merged into a predecessor's dispatch (fast path): their
    # readings reached the actor tier aboard another envelope's ingest call.
    coalesced: int = 0
    parse_errors: int = 0
    shed: int = 0
    throttled: int = 0
    redispatched: int = 0
    max_queue_depth: int = 0
    formats_seen: dict[str, int] = field(default_factory=dict)


@dataclass
class _Envelope:
    sensor_id: str
    batch: NormalizedBatch
    received_at: float


class IngestGateway:
    """Bounded-queue ingestion front door for an SHM platform."""

    def __init__(
        self,
        platform: ShmPlatform,
        registry: AdapterRegistry,
        queue_capacity: int = 1024,
        dispatchers: int = 8,
        overflow: str = "reject",
        breaker: CircuitBreaker | None = None,
        shed_watermark: float = 0.5,
        coalesce_max: int = 1,
    ) -> None:
        if overflow not in ("reject", "drop_oldest"):
            raise ValueError("overflow must be 'reject' or 'drop_oldest'")
        if not 0.0 <= shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in [0, 1]")
        if coalesce_max < 1:
            raise ValueError("coalesce_max must be >= 1")
        self.platform = platform
        self.registry = registry
        self.overflow = overflow
        self.breaker = breaker
        self.shed_watermark = shed_watermark
        # Fast path: a dispatcher that dequeues an envelope may merge up to
        # ``coalesce_max - 1`` immediately-queued envelopes *for the same
        # sensor* into one ingest call.  Only consecutive heads merge, so
        # queue order — and therefore per-sensor FIFO — is untouched.
        self.coalesce_max = coalesce_max
        self.stats = GatewayStats()
        self._scheduler: Scheduler = platform.runtime.scheduler
        self._queue: Queue[_Envelope] = Queue(self._scheduler)
        self._capacity = queue_capacity
        self._dispatcher_count = dispatchers
        self._dispatchers: list[Task] = []
        self._stopping = False
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Export gateway counters on the runtime's metrics registry."""
        # getattr: tests drive the gateway against minimal platform fakes
        # that don't carry the observability substrates.
        registry = getattr(self.platform.runtime, "metrics", None)
        if registry is None:
            return
        stats = self.stats
        for name in (
            "accepted", "rejected", "dropped", "dispatched", "coalesced",
            "parse_errors", "shed", "throttled", "redispatched",
        ):
            registry.register_probe(
                f"ingest.{name}", lambda n=name: getattr(stats, n)
            )
        registry.register_probe("ingest.queue_depth", lambda: len(self._queue))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher pool (idempotent)."""
        if self._dispatchers:
            return
        self._stopping = False
        self._dispatchers = [
            self._scheduler.spawn(self._dispatch_loop(), name=f"ingest-dispatch-{i}")
            for i in range(self._dispatcher_count)
        ]

    async def stop(self, drain: bool = True) -> None:
        """Stop dispatchers, optionally after draining the queue."""
        self._stopping = True
        if drain:
            while len(self._queue) > 0:
                await self._scheduler.sleep(0.01)
        for task in self._dispatchers:
            task.cancel()
        self._dispatchers = []

    @property
    def queue_depth(self) -> int:
        """Envelopes waiting for a dispatcher."""
        return len(self._queue)

    # -- the device-facing surface ----------------------------------------------

    def submit(self, sensor_id: str, format_name: str, payload: object) -> bool:
        """Accept one device upload (the REST POST equivalent).

        Parses synchronously (fail fast back to the device), then enqueues.
        Returns True if accepted; raises :class:`GatewayOverloadedError`
        under ``reject`` overflow, returns True after evicting the oldest
        envelope under ``drop_oldest``.  With a circuit breaker configured,
        uploads are shed (429) once the breaker is open and the queue is
        past ``shed_watermark`` of capacity — bounded queueing instead of
        piling work onto a throttled backend.
        """
        if (
            self.breaker is not None
            and not self.breaker.allow()
            and len(self._queue) >= self.shed_watermark * self._capacity
        ):
            self.stats.shed += 1
            raise GatewayOverloadedError(
                "backend throttled (circuit open) and queue past watermark; "
                "shedding load"
            )
        try:
            batch = self.registry.parse(format_name, payload)
        except PlatformError:
            self.stats.parse_errors += 1
            raise
        self.stats.formats_seen[format_name] = (
            self.stats.formats_seen.get(format_name, 0) + 1
        )
        if len(self._queue) >= self._capacity:
            if self.overflow == "reject":
                self.stats.rejected += 1
                raise GatewayOverloadedError(
                    f"ingest queue full ({self._capacity}); retry later"
                )
            self._queue.get()  # drop_oldest: evict the head
            self.stats.dropped += 1
        envelope = _Envelope(sensor_id, batch, self._scheduler.now)
        self._queue.put_nowait(envelope)
        self.stats.accepted += 1
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        return True

    # -- dispatchers ----------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        tracer = getattr(self.platform.runtime, "tracer", None)
        if tracer is None:
            tracer = Tracer(enabled=False)
        while True:
            envelope = await self._queue.get()
            if self.breaker is not None and not self.breaker.allow():
                # Breaker open: hold the envelope instead of hammering a
                # backend that just throttled us; wake when it half-opens.
                self._requeue(envelope)
                await self._scheduler.sleep(
                    max(0.01, self.breaker.seconds_until_probe())
                )
                continue
            merged = self._coalesce_into(envelope)
            span = None
            if tracer.enabled:
                # Root of the ingest causal tree.  Starting the span at
                # arrival time makes gateway-queue wait part of the trace:
                # it shows up as this span's ``queue`` component.
                now = self._scheduler.now
                span = tracer.begin(
                    f"ingest:{envelope.sensor_id}",
                    "ingest",
                    "gateway",
                    now,
                    start=envelope.received_at,
                )
                if span is not None:
                    span.queue += now - envelope.received_at
            try:
                # Only thread the kwarg when tracing: duck-typed platform
                # fakes in tests implement the bare ingest(sensor_id, batch).
                if span is not None:
                    await self.platform.ingest(
                        envelope.sensor_id, envelope.batch, trace=span
                    )
                else:
                    await self.platform.ingest(envelope.sensor_id, envelope.batch)
            except ThrottlingError as exc:
                self.stats.throttled += 1
                tracer.finish(
                    span, self._scheduler.now, status="error", error=str(exc)
                )
                if self.breaker is not None:
                    self.breaker.record_failure()
                self._requeue(envelope)
                await self._scheduler.sleep(
                    getattr(exc, "retry_after", 0.0) or 0.05
                )
            except PlatformError as exc:
                # A bad sensor id or channel set: count and keep serving.
                self.stats.parse_errors += 1
                tracer.finish(
                    span, self._scheduler.now, status="error", error=str(exc)
                )
            else:
                self.stats.dispatched += 1 + merged
                self.stats.coalesced += merged
                tracer.finish(span, self._scheduler.now)
                if self.breaker is not None:
                    self.breaker.record_success()

    def _coalesce_into(self, envelope: _Envelope) -> int:
        """Merge queued same-sensor envelopes into ``envelope``; returns count.

        Only *consecutive* heads of the queue merge (stopping at the first
        envelope for a different sensor), so dispatch order between sensors
        and reading order within a sensor are both exactly FIFO.  A merged
        envelope's readings append after the carrier's, matching the order
        the device uploaded them.
        """
        if self.coalesce_max <= 1:
            return 0
        merged = 0
        while merged + 1 < self.coalesce_max:
            head = self._queue.peek_nowait()
            if head is None or head.sensor_id != envelope.sensor_id:
                break
            self._queue.get_nowait()
            for channel_id, points in head.batch.items():
                envelope.batch.setdefault(channel_id, []).extend(points)
            merged += 1
        return merged

    def _requeue(self, envelope: _Envelope) -> None:
        """Put a throttled envelope back at the tail, dropping if full."""
        if len(self._queue) >= self._capacity:
            self.stats.dropped += 1
            return
        self._queue.put_nowait(envelope)
        self.stats.redispatched += 1
