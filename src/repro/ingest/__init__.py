"""Ingestion tier: payload adapters and the bounded-queue gateway."""

from .adapters import (
    AdapterError,
    AdapterRegistry,
    BinaryFrameAdapter,
    CsvLineAdapter,
    JsonDocumentAdapter,
    default_registry,
)
from .gateway import GatewayOverloadedError, GatewayStats, IngestGateway

__all__ = [
    "AdapterError",
    "AdapterRegistry",
    "BinaryFrameAdapter",
    "CsvLineAdapter",
    "GatewayOverloadedError",
    "GatewayStats",
    "IngestGateway",
    "JsonDocumentAdapter",
    "default_registry",
]
