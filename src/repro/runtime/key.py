"""Actor identity.

A virtual actor is identified by ``(type name, actor id)`` — e.g.
``("SensorChannel", "org-1/sensor-3/ch-0")``.  Keys are values: hashable,
comparable, and convertible to/from the ``"Type/id"`` string form used for
storage keys and reminders.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ActorKey:
    """Identity of a virtual actor (never of a particular activation)."""

    type_name: str
    actor_id: str

    def __post_init__(self) -> None:
        if not self.type_name or "/" in self.type_name:
            raise ValueError(f"invalid actor type name {self.type_name!r}")
        if self.actor_id == "":
            raise ValueError("actor id must be non-empty")

    def qualified(self) -> str:
        """The canonical ``Type/id`` string form."""
        return f"{self.type_name}/{self.actor_id}"

    @classmethod
    def parse(cls, text: str) -> "ActorKey":
        """Parse the ``Type/id`` form produced by :meth:`qualified`."""
        type_name, separator, actor_id = text.partition("/")
        if not separator:
            raise ValueError(f"cannot parse actor key {text!r}")
        return cls(type_name, actor_id)

    def storage_key(self) -> str:
        """Key under which this actor's state lives in grain storage."""
        return f"state/{self.qualified()}"

    def __str__(self) -> str:
        return self.qualified()
