"""The virtual-actor runtime — an actor-oriented database core.

This package implements the Orleans-style runtime the paper builds on:
virtual actors activated on demand, turn-based message processing, placement
strategies, durable state with configurable write policies, timers and
reminders, and graceful silo shutdown.
"""

from .activation import Activation
from .actor import Actor, ActorContext, actor_method
from .config import RuntimeConfig
from .directory import GrainDirectory
from .key import ActorKey
from .messages import DeliveryReceipt, Invocation
from .persistence import StateCell, WritePolicy
from .placement import (
    HashPlacement,
    HashRingPlacement,
    PinnedPlacement,
    PlacementStrategy,
    PowerOfTwoPlacement,
    PreferLocalPlacement,
    RandomPlacement,
)
from .reference import ActorRef
from .resilience import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
)
from .runtime import CLIENT_ENDPOINT, AodbRuntime, RuntimeStats
from .silo import Silo

__all__ = [
    "Activation",
    "Actor",
    "ActorContext",
    "ActorKey",
    "ActorRef",
    "AodbRuntime",
    "CLIENT_ENDPOINT",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "DeliveryReceipt",
    "GrainDirectory",
    "HashPlacement",
    "HashRingPlacement",
    "Invocation",
    "NO_RETRY",
    "PinnedPlacement",
    "PlacementStrategy",
    "PowerOfTwoPlacement",
    "PreferLocalPlacement",
    "RandomPlacement",
    "ResilienceStats",
    "RetryPolicy",
    "RuntimeConfig",
    "RuntimeStats",
    "Silo",
    "StateCell",
    "WritePolicy",
    "actor_method",
]
