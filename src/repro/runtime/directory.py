"""The grain directory: which silo hosts which virtual actor.

Orleans maintains a distributed directory mapping grain identity to its
current activation.  We model it as a single consistent registry (the
simulation is single-process, so the distributed-consensus aspect is out of
scope — documented in DESIGN.md), with the same interface the runtime would
use: lookup, register, unregister, and per-silo enumeration for shutdown.
"""

from __future__ import annotations

from .key import ActorKey


class GrainDirectory:
    """Consistent registry of activation placements."""

    def __init__(self) -> None:
        self._entries: dict[ActorKey, str] = {}
        self.registrations = 0
        self.unregistrations = 0

    def lookup(self, key: ActorKey) -> str | None:
        """Return the hosting silo id, or None when not activated."""
        return self._entries.get(key)

    def register(self, key: ActorKey, silo_id: str) -> None:
        """Record that ``key`` is activated on ``silo_id``."""
        existing = self._entries.get(key)
        if existing is not None and existing != silo_id:
            raise ValueError(
                f"{key} already registered on {existing}, cannot move to {silo_id}"
            )
        self._entries[key] = silo_id
        self.registrations += 1

    def unregister(self, key: ActorKey) -> bool:
        """Remove the entry for ``key``; returns True if present."""
        removed = self._entries.pop(key, None) is not None
        if removed:
            self.unregistrations += 1
        return removed

    def entries_on(self, silo_id: str) -> list[ActorKey]:
        """All keys currently placed on one silo."""
        return [key for key, host in self._entries.items() if host == silo_id]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ActorKey) -> bool:
        return key in self._entries
