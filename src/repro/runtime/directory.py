"""The grain directory: which silo hosts which virtual actor.

Orleans maintains a distributed directory mapping grain identity to its
current activation.  We model it as a single consistent registry (the
simulation is single-process, so the distributed-consensus aspect is out of
scope — documented in DESIGN.md), with the same interface the runtime would
use: lookup, register, unregister, and per-silo enumeration for shutdown.

The ingestion fast path adds :class:`DirectoryCache`: a per-endpoint lookup
cache on the send path, modeling the local directory cache each Orleans silo
keeps so repeat sends skip the (conceptually remote) directory partition.
Caches subscribe to the directory; every ``unregister`` — eviction,
migration, crash cleanup, failure-detector repair all funnel through it —
invalidates the key everywhere, so a cached route can never outlive its
registration.  A hit is additionally validated against the live activation
before use (crashed-silo semantics must be *identical* to the uncached
path), so the cache changes cost accounting, never outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .key import ActorKey


@dataclass
class DirectoryCacheStats:
    """Per-endpoint cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0


class DirectoryCache:
    """One endpoint's local cache of directory lookups."""

    def __init__(self, endpoint: str) -> None:
        self.endpoint = endpoint
        self._entries: dict[ActorKey, str] = {}
        self.stats = DirectoryCacheStats()

    def get(self, key: ActorKey) -> str | None:
        """The cached silo id for ``key``, or None (no stats side effects:
        the runtime decides hit vs. miss after validating liveness)."""
        return self._entries.get(key)

    def put(self, key: ActorKey, silo_id: str) -> None:
        """Remember that ``key`` resolved to ``silo_id``."""
        self._entries[key] = silo_id

    def invalidate(self, key: ActorKey) -> None:
        """Drop the entry for ``key`` if present."""
        if self._entries.pop(key, None) is not None:
            self.stats.invalidations += 1

    def clear(self) -> None:
        """Drop everything (used when the cluster view is rebuilt)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ActorKey) -> bool:
        return key in self._entries


class GrainDirectory:
    """Consistent registry of activation placements."""

    def __init__(self) -> None:
        self._entries: dict[ActorKey, str] = {}
        self.registrations = 0
        self.unregistrations = 0
        self._subscribers: list[DirectoryCache] = []

    def subscribe(self, cache: DirectoryCache) -> None:
        """Invalidate ``cache`` whenever a registration is removed."""
        self._subscribers.append(cache)

    def lookup(self, key: ActorKey) -> str | None:
        """Return the hosting silo id, or None when not activated."""
        return self._entries.get(key)

    def register(self, key: ActorKey, silo_id: str) -> None:
        """Record that ``key`` is activated on ``silo_id``."""
        existing = self._entries.get(key)
        if existing is not None and existing != silo_id:
            raise ValueError(
                f"{key} already registered on {existing}, cannot move to {silo_id}"
            )
        self._entries[key] = silo_id
        self.registrations += 1

    def unregister(self, key: ActorKey) -> bool:
        """Remove the entry for ``key``; returns True if present.

        Every removal path — idle collection, explicit deactivation, silo
        crash cleanup, failure-detector repair — runs through here, which is
        what lets subscribed caches guarantee no stale route survives.
        """
        removed = self._entries.pop(key, None) is not None
        if removed:
            self.unregistrations += 1
            for cache in self._subscribers:
                cache.invalidate(key)
        return removed

    def entries_on(self, silo_id: str) -> list[ActorKey]:
        """All keys currently placed on one silo."""
        return [key for key, host in self._entries.items() if host == silo_id]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ActorKey) -> bool:
        return key in self._entries
