"""The actor-oriented database runtime facade.

:class:`AodbRuntime` ties the substrates together: it registers actor types,
manages the cluster of silos, routes messages (placement → network transfer
→ mailbox), runs the idle-activation collector and the durable-reminder
pump, and exposes the statistics benchmarks read.

The public surface an application touches is small::

    runtime = AodbRuntime(scheduler)
    runtime.register_actor(Cow)
    runtime.add_silo("silo-1", cores=4)
    cow = runtime.ref("Cow", "dk-0042")
    await cow.record_reading(reading)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import math

from ..errors import (
    ConditionalCheckFailedError,
    DeadlineExceededError,
    FencedWriteError,
    MailboxOverflowError,
    QuarantinedSiloError,
    ReentrancyError,
    ReproError,
    SiloUnavailableError,
    UnknownActorTypeError,
)
from ..kernel.futures import _PENDING as _F_PENDING
from ..kernel.futures import Future
from ..kernel.pool import FreeList
from ..kernel.rng import RngRegistry
from ..kernel.scheduler import Scheduler, Task
from ..net.batching import EnvelopeBatcher
from ..net.network import Network
from ..obs.metrics import MetricsRegistry
from ..obs.profile import Profiler
from ..obs.trace import Span, Tracer
from ..storage.groupcommit import GroupCommitWriter
from ..storage.kv import InMemoryKVStore, KeyValueStore
from ..storage.serde import snapshot
from ..storage.system_store import SystemStore
from ..storage.tsblocks import BlockStats
from ..storage.wal import RedoJournal
from .activation import Activation
from .actor import Actor
from .config import RuntimeConfig
from .directory import DirectoryCache, GrainDirectory
from .key import ActorKey
from .messages import DeliveryReceipt, Invocation
from .persistence import WritePolicy
from .placement import PinnedPlacement, build_strategies
from .reference import ActorRef
from .resilience import RetryPolicy
from .silo import Silo

CLIENT_ENDPOINT = "client"
# Pseudo network endpoint standing in for cluster system storage: never
# registered with the Network (the store is not message-routed), but a
# PartitionInjector may name it in a group to model silos losing sight of
# the membership table.  The runtime consults the injector directly for
# lease refreshes and fence acquisition.
SYSTEM_STORE_ENDPOINT = "system-store"


#: Placeholder target for envelopes parked in the invocation freelist; a
#: recycled envelope must hold no reference to any real actor key.
_POOL_KEY = ActorKey("__pool__", "__pool__")


def _new_invocation() -> Invocation:
    """Freelist factory: a blank envelope (fields set by _make_invocation)."""
    return Invocation(target=_POOL_KEY, method="")


def _reset_invocation(invocation: Invocation) -> None:
    """Freelist reset: scrub *every* field so no state leaks between uses."""
    invocation.target = _POOL_KEY
    invocation.method = ""
    invocation.args = ()
    invocation.kwargs = {}
    invocation.caller_endpoint = ""
    invocation.one_way = False
    invocation.reply = None
    invocation.chain = ()
    invocation.deadline = None
    invocation.sent_at = 0.0
    invocation.enqueued_at = 0.0
    invocation.started_at = 0.0
    invocation.batch_cohort = 1
    invocation.span = None


@dataclass
class RuntimeStats:
    """Counters accumulated across the life of the runtime."""

    asks: int = 0
    tells: int = 0
    replies: int = 0
    errors: int = 0
    dropped_messages: int = 0
    activations_created: int = 0
    activations_collected: int = 0
    activations_crashed: int = 0
    activation_failures: int = 0
    reminders_delivered: int = 0
    # Fault-tolerance counters.  ``calls_retried`` counts retry *attempts*
    # issued by the resilient call path; ``deadlines_exceeded`` counts ask
    # attempts failed by a (call or per-attempt) deadline.
    calls_retried: int = 0
    deadlines_exceeded: int = 0
    silos_suspected: int = 0
    silos_evicted: int = 0
    activations_replaced: int = 0
    # Partition-tolerance counters: silos that parked themselves after
    # losing their membership lease, and silos that re-announced (with a
    # fresh epoch) after the partition healed.
    silos_quarantined: int = 0
    silos_rejoined: int = 0
    # Elasticity counters: completed live migrations, migrations that could
    # not run (missing/closing activation, bad target), and graceful drains.
    migrations: int = 0
    migration_failures: int = 0
    silos_drained: int = 0
    last_error: str = ""
    failed_keys: list[str] = field(default_factory=list)


class AodbRuntime:
    """An actor-oriented database over simulated cluster hardware."""

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: RuntimeConfig | None = None,
        grain_storage: KeyValueStore | None = None,
        network: Network | None = None,
        system_store: SystemStore | None = None,
        rng: RngRegistry | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: Profiler | None = None,
    ) -> None:
        self.scheduler = scheduler or Scheduler()
        self.config = config or RuntimeConfig()
        self.config.validate()
        self.rng = rng or RngRegistry(self.config.seed)
        # Explicit None checks: a Tracer with no spans and an empty registry
        # are falsy-adjacent objects we must not silently replace.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else Profiler(enabled=False)
        # Attached flight recorder (duck-typed — set by FlightRecorder.attach
        # in repro.obs.recorder; the runtime never imports that module).
        self.recorder: Any = None
        self.network = network or Network(self.scheduler, rng=self.rng)
        self.system_store = system_store or SystemStore(self.scheduler)
        # Explicit None check: stores define __len__, so an empty store is
        # falsy and `or` would silently discard it.
        self.grain_storage = (
            grain_storage if grain_storage is not None else InMemoryKVStore()
        )
        # Group-commit write-behind: state flushes issued within one window
        # collapse into a single storage round trip (None = direct puts).
        self.group_commit: GroupCommitWriter | None = None
        if self.config.enable_group_commit:
            self.group_commit = GroupCommitWriter(
                self.grain_storage,
                self.scheduler,
                max_batch=self.config.group_commit_max_batch,
                max_delay=self.config.group_commit_max_delay,
            )
        self.directory = GrainDirectory()
        # Per-endpoint directory caches on the send path, invalidated via
        # directory subscription (created lazily, one per caller endpoint).
        self._directory_caches: dict[str, DirectoryCache] = {}
        # Interned ActorKeys: ref() runs once per outbound call, and keys
        # are immutable pure values, so the frozen-dataclass construction
        # (+ validation) is paid once per distinct actor instead of per call.
        self._actor_keys: dict[tuple[str, str], ActorKey] = {}
        # Ingestion fast path: coalesce same-path deliveries into envelopes.
        self._batcher: EnvelopeBatcher | None = None
        if self.config.enable_batching:
            self._batcher = EnvelopeBatcher(
                self.network,
                self.scheduler,
                max_size=self.config.batch_max_size,
                max_delay=self.config.batch_max_delay,
            )
        self.strategies = build_strategies(
            self.rng.stream("placement"),
            load_probe=self._silo_load,
            fallback=self.config.placement_fallback,
        )
        self.stats = RuntimeStats()
        # Invocation freelist: recycles message envelopes on the two paths
        # that are provably last to touch them (see _release_invocation).
        # Checked against network.ever_faulted before every release because
        # chaos duplication makes two deliveries alias one envelope.
        self._invocation_pool: FreeList[Invocation] = FreeList(
            _new_invocation,
            _reset_invocation,
            capacity=self.config.invocation_pool_capacity,
        )
        self._actor_types: dict[str, type[Actor]] = {}
        self._silos: dict[str, Silo] = {}
        self._collector_task: Task | None = None
        self._reminder_task: Task | None = None
        self._failure_detector_task: Task | None = None
        self._suspected: set[str] = set()
        self._heartbeats: dict[str, Task] = {}
        # Write-ahead redo journal + per-silo pumps (None/empty while
        # config.redo_lag == 0, the paper's benchmarked configuration).
        self.redo_journal: RedoJournal | None = None
        self._redo_pumps: dict[str, Task] = {}
        self._reminder_due: dict[tuple[str, str], float] = {}
        self._stopped = False
        # Set by AodbDatabase when database features are layered on top.
        self.database: Any = None
        # Cluster-wide tiered time-series counters: every TieredSeries the
        # actors open feeds these, exported as storage.* probes below.
        self.tsblock_stats = BlockStats()
        self.network.register(CLIENT_ENDPOINT)
        self.network.register_metrics(self.metrics)
        # Provisioned stores export RCU/WCU/throttling probes; the plain
        # in-memory store has nothing to report.
        register = getattr(self.grain_storage, "register_metrics", None)
        if register is not None:
            register(self.metrics)
        else:
            # Stores with their own register_metrics export this themselves;
            # plain stores still need the split-brain rejection counter.
            self.metrics.register_probe(
                "storage.fenced_writes",
                lambda: getattr(self.grain_storage, "fenced_writes", 0),
            )
        if self.group_commit is not None:
            self.group_commit.register_metrics(self.metrics)
        self._register_runtime_metrics()
        self.profiler.register_metrics(self.metrics)
        if self.config.redo_lag > 0:
            self.enable_redo_journal()
        # End-to-end ask latency feeds the p99 SLO rule; observed only on
        # profiled runs so the unprofiled reply path stays untouched.
        self._ask_latency = self.metrics.histogram("runtime.ask_latency_seconds")

    def _register_runtime_metrics(self) -> None:
        """Export kernel + runtime state as pull-probes (snapshot-time only)."""
        registry = self.metrics
        scheduler = self.scheduler
        stats = self.stats
        registry.register_probe(
            "kernel.pending_events", lambda: scheduler.pending_events
        )
        registry.register_probe(
            "kernel.events_processed", lambda: scheduler.events_processed
        )
        registry.register_probe("kernel.virtual_time", lambda: scheduler.now)
        # Timer-subsystem shape: wheel occupancy vs. the near-term heap tells
        # whether the NEAR_HORIZON split is doing its job, and cancel counts
        # expose the timer-leak class of bug the heap once had.
        registry.register_probe(
            "kernel.timer_wheel_occupancy", lambda: scheduler._wheel.live
        )
        registry.register_probe(
            "kernel.timer_wheel_cancelled", lambda: scheduler._wheel.cancelled
        )
        registry.register_probe(
            "kernel.timer_near_heap_depth", lambda: scheduler.near_heap_depth
        )
        registry.register_probe(
            "kernel.timer_cancels", lambda: scheduler.timer_cancels
        )
        pool = self._invocation_pool
        registry.register_probe("pool.invocation_hits", lambda: pool.hits)
        registry.register_probe("pool.invocation_misses", lambda: pool.misses)
        registry.register_probe(
            "pool.invocation_hit_rate", lambda: pool.stats()["hit_rate"]
        )
        registry.register_probe("pool.invocation_size", lambda: len(pool))
        for name in (
            "asks", "tells", "replies", "errors", "dropped_messages",
            "activations_created", "activations_collected",
            "activations_crashed", "activation_failures",
            "reminders_delivered", "calls_retried", "deadlines_exceeded",
            "silos_suspected", "silos_evicted", "activations_replaced",
            "silos_quarantined", "silos_rejoined",
            "migrations", "migration_failures", "silos_drained",
        ):
            registry.register_probe(
                f"runtime.{name}", lambda n=name: getattr(stats, n)
            )
        registry.register_probe(
            "runtime.total_activations", lambda: self.total_activations()
        )
        registry.register_probe(
            "trace.spans_recorded", lambda: len(self.tracer)
        )
        registry.register_probe("trace.spans_dropped", lambda: self.tracer.dropped)
        registry.register_probe(
            "metrics.dropped_label_sets", lambda: registry.dropped_label_sets
        )
        if self._batcher is not None:
            batcher = self._batcher
            registry.register_probe("batch.flushes", lambda: batcher.flushes)
            registry.register_probe(
                "batch.immediate_flushes", lambda: batcher.immediate_flushes
            )
            # Coalescing effectiveness: how many messages shared each envelope.
            batcher.cohort_histogram = registry.histogram(
                "batch.cohort_size", boundaries=(1, 2, 4, 8, 16, 32, 64)
            )
        caches = self._directory_caches
        registry.register_probe(
            "directory.cache_hits",
            lambda: sum(c.stats.hits for c in caches.values()),
        )
        registry.register_probe(
            "directory.cache_misses",
            lambda: sum(c.stats.misses for c in caches.values()),
        )
        registry.register_probe(
            "directory.cache_invalidations",
            lambda: sum(c.stats.invalidations for c in caches.values()),
        )
        # Membership view, for the health monitor's heartbeat rules.
        registry.register_probe(
            "cluster.silos_active",
            lambda: sum(
                1 for s in self.system_store.active_silos() if s in self._silos
            ),
        )
        registry.register_probe(
            "cluster.silos_suspected",
            lambda: sum(
                1
                for entry in self.system_store.members()
                if self.system_store.status_of(entry.silo_id) == "suspected"
            ),
        )
        registry.register_probe(
            "elastic.silos_draining",
            lambda: sum(1 for s in self._silos.values() if s.draining),
        )
        registry.register_probe(
            "cluster.quarantined_silos",
            lambda: sum(1 for s in self._silos.values() if s.quarantined),
        )
        registry.register_probe(
            "cluster.membership_epoch", lambda: self.system_store.epoch
        )
        registry.register_probe("cluster.cpu_imbalance", self.cpu_imbalance)
        self.tsblock_stats.register_metrics(registry)

    def cpu_imbalance(self) -> float:
        """Max/min silo CPU utilization ratio (1.0 = perfectly balanced).

        Draining and crashed silos are excluded (they are leaving the
        cluster, their emptiness is intentional).  A small epsilon keeps the
        ratio finite when a silo is fully idle, so the health engine can
        threshold it (``cluster-imbalance`` in ``default_slo_rules``)
        without special-casing infinity.
        """
        utilizations = [
            silo.cpu.utilization()
            for silo in self._silos.values()
            if not silo.crashed and not silo.draining
        ]
        if len(utilizations) < 2:
            return 1.0
        epsilon = 0.05
        return (max(utilizations) + epsilon) / (min(utilizations) + epsilon)

    # -- registration ------------------------------------------------------------

    def register_actor(
        self, actor_class: type[Actor], name: str | None = None
    ) -> type[Actor]:
        """Register an actor class under ``name`` (default: class name).

        Usable as a decorator: ``@runtime.register_actor``.
        """
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class!r} is not an Actor subclass")
        type_name = name or actor_class.__name__
        existing = self._actor_types.get(type_name)
        if existing is not None and existing is not actor_class:
            raise ValueError(f"actor type {type_name!r} already registered")
        self._actor_types[type_name] = actor_class
        return actor_class

    def register_actors(self, actor_classes: Iterable[type[Actor]]) -> None:
        """Register several actor classes at once."""
        for actor_class in actor_classes:
            self.register_actor(actor_class)

    def actor_type(self, type_name: str) -> type[Actor]:
        """The registered class for ``type_name`` (raises if unknown)."""
        actor_class = self._actor_types.get(type_name)
        if actor_class is None:
            raise UnknownActorTypeError(type_name)
        return actor_class

    # -- cluster management ----------------------------------------------------------

    def add_silo(
        self,
        silo_id: str,
        cores: int = 2,
        speed: float = 1.0,
        instance_type: str = "generic",
    ) -> Silo:
        """Bring a new silo (server) into the cluster."""
        if silo_id in self._silos:
            raise ValueError(f"silo {silo_id!r} already exists")
        silo = Silo(
            self.scheduler,
            silo_id,
            cores=cores,
            speed=speed,
            instance_type=instance_type,
        )
        self._silos[silo_id] = silo
        self.network.register(silo_id)
        self.system_store.announce(silo_id, instance_type=instance_type)
        self._heartbeats[silo_id] = self.scheduler.spawn(
            self._heartbeat_loop(silo_id), name=f"heartbeat:{silo_id}"
        )
        if self.redo_journal is not None and silo_id not in self._redo_pumps:
            self._redo_pumps[silo_id] = self.scheduler.spawn(
                self._redo_pump(silo_id), name=f"redo-pump:{silo_id}"
            )
        self.metrics.register_probe(
            "silo.mailbox_depth", silo.mailbox_backlog, silo=silo_id
        )
        self.metrics.register_probe(
            "silo.activations", lambda: silo.activation_count, silo=silo_id
        )
        self.metrics.register_probe(
            "silo.cpu_utilization", silo.cpu.utilization, silo=silo_id
        )
        if self.recorder is not None:
            self.recorder.silo_journal(silo_id)
        return silo

    async def _heartbeat_loop(self, silo_id: str) -> None:
        # Keep the membership lease fresh while the silo lives, as Orleans
        # silos do against their system store.  The loop also carries the
        # silo-local half of the partition-tolerance protocol: when the
        # store is unreachable the silo tracks its own lease expiry and
        # self-quarantines once it can no longer prove membership, and when
        # the store comes back it either refreshes (lease still held),
        # rejoins (quarantined, or its row was evicted meanwhile) or keeps
        # serving as if nothing happened.
        interval = self.system_store.lease_seconds / 3
        lease_until = self.scheduler.now + self.system_store.lease_seconds
        while silo_id in self._silos:
            await self.scheduler.sleep(interval)
            silo = self._silos.get(silo_id)
            if silo is None:
                return
            if silo.crashed:
                continue
            if self._store_reachable(silo_id):
                if silo.quarantined:
                    self.rejoin_silo(silo_id)
                    lease_until = (
                        self.scheduler.now + self.system_store.lease_seconds
                    )
                    continue
                try:
                    self.system_store.refresh_lease(silo_id)
                except SiloUnavailableError:
                    # Our row went dead while we could not see the table
                    # (evicted behind our back): the lease is gone for good,
                    # only a fresh announce readmits us.
                    self.rejoin_silo(silo_id)
                lease_until = self.scheduler.now + self.system_store.lease_seconds
            elif (
                self.config.quarantine_on_lease_loss
                and not silo.quarantined
                and self.scheduler.now >= lease_until
            ):
                await self.quarantine_silo(silo_id)

    def silo(self, silo_id: str) -> Silo:
        """The silo object for ``silo_id`` (raises if unknown)."""
        silo = self._silos.get(silo_id)
        if silo is None:
            raise SiloUnavailableError(silo_id)
        return silo

    def silos(self) -> list[Silo]:
        """All silos in the cluster."""
        return list(self._silos.values())

    async def shutdown_silo(self, silo_id: str) -> int:
        """Gracefully stop one silo: deactivate (and persist) everything.

        Returns the number of activations that were deactivated.  This is
        the paper's durability story for the benchmarks: "the upload of data
        points to the grain state storage has been configured to only happen
        when the Orleans silo service is shut down".
        """
        silo = self.silo(silo_id)
        silo.stopping = True
        count = 0
        for activation in silo.activations():
            await self._deactivate(activation)
            count += 1
        self.system_store.retire(silo_id)
        self.network.unregister(silo_id)
        del self._silos[silo_id]
        self.metrics.unregister_probes(silo=silo_id)
        heartbeat = self._heartbeats.pop(silo_id, None)
        if heartbeat is not None:
            heartbeat.cancel()
        self._cancel_redo_pump(silo_id)
        return count

    def crash_silo(self, silo_id: str, *, detected: bool = True) -> int:
        """Fail one silo *without* any graceful shutdown.

        Unlike :meth:`shutdown_silo`, nothing is flushed and no
        ``on_deactivate`` hooks run: in-memory state since the last
        persistence point is lost, queued and in-flight requests fail with
        :class:`~repro.errors.SiloUnavailableError`, and the crashed
        activations' keys re-place on surviving silos at next use.
        Returns the number of activations lost.

        With ``detected=False`` the crash is *silent*: the rest of the
        cluster keeps believing the silo is alive — its membership row stays
        until the lease lapses and its directory registrations stay stale —
        so calls routed to it keep failing until the failure detector (or
        lease expiry) repairs the cluster view.  This is the realistic
        process-crash mode the chaos harness uses; ``detected=True`` models
        an operator-announced failure where cleanup is immediate.
        """
        silo = self.silo(silo_id)
        fault = SiloUnavailableError(f"silo {silo_id!r} crashed")
        lost = 0
        for activation in silo.activations():
            activation.abort(fault)
            silo.remove_activation(activation.key)
            if detected and self.directory.lookup(activation.key) == silo_id:
                self.directory.unregister(activation.key)
            lost += 1
        self.stats.activations_crashed += lost
        heartbeat = self._heartbeats.pop(silo_id, None)
        if heartbeat is not None:
            heartbeat.cancel()
        self._cancel_redo_pump(silo_id)
        if detected:
            self.system_store.retire(silo_id)
            self.network.unregister(silo_id)
            del self._silos[silo_id]
            self.metrics.unregister_probes(silo=silo_id)
        else:
            silo.crashed = True
        recorder = self.recorder
        if recorder is not None:
            recorder.silo_journal(silo_id).record("silo-crash", silo_id, lost)
            recorder.record_incident(
                "silo-crash",
                {
                    "silo": silo_id,
                    "lost_activations": lost,
                    "detected": detected,
                    "at": self.scheduler.now,
                },
            )
        return lost

    # -- partition tolerance -------------------------------------------------------

    def _store_reachable(self, silo_id: str) -> bool:
        """Whether ``silo_id`` can currently reach cluster system storage.

        The system store is not a network endpoint, so reachability is
        decided by asking the partition injector about the pseudo-endpoint
        ``SYSTEM_STORE_ENDPOINT`` directly.  With no injector attached the
        store is always reachable.
        """
        return not self.network.partitioned(silo_id, SYSTEM_STORE_ENDPOINT)

    def acquire_fence(self, activation: Activation) -> int | None:
        """Issue a fence token for one activation's storage key.

        Returns None when fencing is disabled.  Acquiring a fence is a
        system-store round trip, so a silo that cannot reach the store (or
        is quarantined) cannot activate durable grains — which is exactly
        the guarantee that makes the token worth carrying.
        """
        if not self.config.enable_fencing:
            return None
        silo = activation.silo
        if silo.quarantined or not self._store_reachable(silo.silo_id):
            raise SiloUnavailableError(
                f"silo {silo.silo_id!r} cannot reach the system store to "
                f"acquire a fence for {activation.key.qualified()}"
            )
        return self.system_store.acquire_fence(activation.key.storage_key())

    async def quarantine_silo(self, silo_id: str) -> int:
        """Self-quarantine a silo that lost its membership lease.

        Every live activation is *parked* — queued and future messages fail
        fast with :class:`~repro.errors.QuarantinedSiloError` (retryable, so
        callers land on the successor placement) — and dirty durable state
        is scram-flushed directly (bypassing group commit).  Grain storage
        is assumed reachable from both sides of a silo-fabric partition
        (the DynamoDB deployment the paper describes); the fence tokens on
        those flushes are what keeps them safe: any state a successor has
        already taken over is rejected with ``FencedWriteError`` instead of
        being clobbered.  Returns the number of activations parked.
        """
        silo = self._silos.get(silo_id)
        if silo is None or silo.quarantined or silo.crashed:
            return 0
        silo.quarantined = True
        self.stats.silos_quarantined += 1
        fault = QuarantinedSiloError(
            f"silo {silo_id!r} lost its membership lease and is quarantined"
        )
        parked = 0
        for activation in silo.activations():
            if activation.closing:
                continue
            activation.park(fault)
            parked += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.silo_journal(silo_id).record("quarantine", silo_id, parked)
        for activation in silo.activations():
            cell = activation.instance._state_cell
            if cell is None:
                continue
            try:
                activation.instance.snapshot_state()
                if cell.dirty:
                    await cell.flush(direct=True)
            except ReproError as exc:
                # Fenced/conflicted/throttled: the successor (or the redo
                # journal) owns this state now; losing the scram write is
                # the safe outcome.  A fence bounce is the interesting case
                # (split-brain averted) and gets its own span.
                if isinstance(exc, FencedWriteError) and self.tracer.enabled:
                    bounce = self.tracer.begin(
                        activation.key,
                        "fenced-write",
                        silo_id,
                        self.scheduler.now,
                        method="scram-flush",
                    )
                    self.tracer.finish(
                        bounce,
                        self.scheduler.now,
                        status="bounced",
                        error=str(exc),
                    )
                continue
        return parked

    def rejoin_silo(self, silo_id: str) -> bool:
        """Re-admit a silo after a partition heals.

        Stale activations (parked during quarantine, or zombies that kept
        serving when ``quarantine_on_lease_loss`` is off) are aborted — the
        majority side re-placed those grains long ago, so this side's
        incarnations are history, their unflushed effects covered by the
        scram flush and the fence floors.  The silo then re-announces,
        which bumps the membership epoch and grants a fresh lease.
        """
        silo = self._silos.get(silo_id)
        if silo is None or silo.crashed:
            return False
        fault = SiloUnavailableError(
            f"silo {silo_id!r} is rejoining after a partition"
        )
        for activation in silo.activations():
            activation.abort(fault)
            silo.remove_activation(activation.key)
            if self.directory.lookup(activation.key) == silo_id:
                self.directory.unregister(activation.key)
        silo.quarantined = False
        if not self.network.knows(silo_id):
            self.network.register(silo_id)
        self.system_store.announce(silo_id, instance_type=silo.instance_type)
        self._suspected.discard(silo_id)
        self.stats.silos_rejoined += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.silo_journal(silo_id).record(
                "rejoin", silo_id, self.system_store.epoch
            )
        return True

    # -- write-ahead redo journal --------------------------------------------------

    def enable_redo_journal(self, redo_lag: float | None = None) -> RedoJournal:
        """Create (or retrofit) the WAL and start per-silo redo pumps.

        Called automatically from ``__init__`` when ``config.redo_lag > 0``;
        callable later for deployments that decide after construction.
        """
        if redo_lag is not None:
            self.config.redo_lag = redo_lag
        if self.config.redo_lag <= 0:
            raise ValueError("redo_lag must be positive to enable the redo journal")
        if self.redo_journal is None:
            self.redo_journal = RedoJournal(
                self.scheduler,
                store=self.grain_storage,
                writer=self.group_commit,
            )
            self.redo_journal.register_metrics(self.metrics)
            if self.recorder is not None:
                self.redo_journal.journal = self.recorder.journal("storage")
        for silo_id in self._silos:
            if silo_id not in self._redo_pumps:
                self._redo_pumps[silo_id] = self.scheduler.spawn(
                    self._redo_pump(silo_id), name=f"redo-pump:{silo_id}"
                )
        return self.redo_journal

    def _cancel_redo_pump(self, silo_id: str) -> None:
        pump = self._redo_pumps.pop(silo_id, None)
        if pump is not None:
            pump.cancel()

    async def _redo_pump(self, silo_id: str) -> None:
        # Every redo_lag window, journal the dirty state of lazily-flushed
        # durable actors (INTERVAL / ON_DEACTIVATE): a crash then loses at
        # most one window of acknowledged work instead of everything since
        # the last flush.  WRITE_THROUGH/MANUAL actors are skipped — the
        # former are already durable per ack, the latter opted out.
        lazy = (WritePolicy.INTERVAL, WritePolicy.ON_DEACTIVATE)
        while silo_id in self._silos:
            await self.scheduler.sleep(self.config.redo_lag)
            silo = self._silos.get(silo_id)
            if silo is None or self.redo_journal is None or silo.crashed:
                return
            if silo.quarantined:
                continue
            for activation in silo.activations():
                if (
                    activation.closing
                    or activation.parked is not None
                    or activation.broken is not None
                ):
                    continue
                cell = activation.instance._state_cell
                if cell is None or activation.actor_class.write_policy not in lazy:
                    continue
                try:
                    activation.instance.snapshot_state()
                except Exception:  # noqa: BLE001 - actor bug must not kill pump
                    continue
                if not cell.dirty:
                    continue
                span = None
                if self.tracer.enabled:
                    span = self.tracer.begin(
                        activation.key,
                        "wal-journal",
                        silo_id,
                        self.scheduler.now,
                        method="redo-append",
                    )
                try:
                    await self.redo_journal.append(
                        activation.key.storage_key(),
                        cell.document,
                        base_etag=cell.etag,
                        fence=cell.fence,
                    )
                except Exception:  # noqa: BLE001 - journal write best-effort
                    self.tracer.finish(
                        span,
                        self.scheduler.now,
                        status="error",
                        error="redo journal append failed",
                    )
                    continue
                self.tracer.finish(span, self.scheduler.now)

    def _silo_load(self, silo_id: str) -> tuple[float, float]:
        """A comparable load sample for placement probes (lower = idler).

        Mailbox backlog dominates (it is the queueing signal callers feel),
        activation count breaks ties.  Unknown/crashed silos sort last so a
        load-aware probe never prefers them.
        """
        silo = self._silos.get(silo_id)
        if silo is None or silo.crashed or silo.quarantined:
            return (float("inf"), float("inf"))
        return (float(silo.mailbox_backlog()), float(silo.activation_count))

    # -- live migration and graceful drain -----------------------------------------

    async def migrate(self, key: ActorKey, target_silo_id: str) -> bool:
        """Move a live activation to ``target_silo_id`` without losing messages.

        The protocol (DESIGN §9) reuses the deactivate/reactivate machinery
        so per-message semantics are identical to an ordinary deactivation:

        1. *Repoint* — in one atomic step (no awaits) the directory entry is
           moved to the target (invalidating every ``DirectoryCache`` via
           the ``unregister`` subscription) and a successor activation is
           catalogued there.  From this instant new sends resolve to the
           target.
        2. *Drain* — the source activation closes: a barrier enters its
           mailbox, queued turns run to completion on the source, state
           persists through the normal persistence path, ``on_deactivate``
           runs.  Messages that raced the move — already in flight to the
           source — observe ``closing``, wait for the barrier, re-resolve
           and are forwarded to the target.
        3. *Hand over* — the successor's pump blocks on the source's
           ``closed`` event before loading state, so it observes the final
           flush and turn-based single-activation semantics are preserved:
           at no virtual instant do two activations of the grain execute.

        Returns True when the activation moved; False when there was
        nothing to move (no live activation, already on the target, or the
        activation was concurrently closing).  Raises on an unusable target
        (unknown, crashed, draining, or stopping).
        """
        try:
            target = self.silo(target_silo_id)
        except SiloUnavailableError:
            self.stats.migration_failures += 1
            raise
        if target.crashed or target.stopping or target.draining:
            self.stats.migration_failures += 1
            raise SiloUnavailableError(
                f"silo {target_silo_id!r} cannot accept migrations"
            )
        source_id = self.directory.lookup(key)
        source = self._silos.get(source_id) if source_id is not None else None
        activation = source.get_activation(key) if source is not None else None
        if (
            activation is None
            or activation.closing
            or source is None
            or source.crashed
            or source_id == target_silo_id
        ):
            self.stats.migration_failures += 1
            return False
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin(
                key,
                "migrate",
                source_id,
                self.scheduler.now,
                method=f"migrate->{target_silo_id}",
            )
        # Atomic repoint: directory moves and the successor is catalogued
        # with no awaits in between, so every racer that re-resolves from
        # here on lands on the target.
        self.directory.unregister(key)  # fans out to every DirectoryCache
        self.directory.register(key, target_silo_id)
        successor = Activation(
            self,
            self.actor_type(key.type_name),
            key,
            target,
            predecessor_closed=activation.closed,
        )
        stale = target.get_activation(key)
        if stale is not None:
            # An earlier link in this key's close chain is still draining on
            # the target (its close has not yet retired it from the catalog).
            # The directory no longer points at it, so it is strictly earlier
            # in the chain than `activation` and the successor's barrier
            # transitively covers its flush; evicting it only removes the
            # catalog entry — the drain itself keeps running.
            target.remove_activation(key)
        target.add_activation(successor)
        self.stats.activations_created += 1
        self.metrics.counter(
            "elastic.migrations", source=source_id, target=target_silo_id
        ).inc()
        # Drain the source to its barrier (persisting state on the way out).
        await activation.close()
        if source.get_activation(key) is activation:
            source.remove_activation(key)
        self.stats.migrations += 1
        self.tracer.finish(span, self.scheduler.now)
        recorder = self.recorder
        if recorder is not None:
            qualified = key.qualified()
            recorder.silo_journal(source_id).record(
                "migrate-out", qualified, target_silo_id
            )
            recorder.silo_journal(target_silo_id).record(
                "migrate-in", qualified, source_id
            )
        return True

    async def drain_silo(self, silo_id: str) -> int:
        """Gracefully decommission one silo: migrate everything out, then stop.

        Unlike :meth:`shutdown_silo` (which deactivates in place, leaving
        re-activation to future demand) and :meth:`crash_silo` (which loses
        in-memory state), a drain keeps every actor *live*: the silo is
        first excluded from placement, then each activation is migrated to
        the least-loaded remaining silo, and only then does the shutdown
        complete.  Returns the number of activations migrated out.
        """
        silo = self.silo(silo_id)
        others = [
            s
            for s in self._silos.values()
            if s.silo_id != silo_id
            and not s.draining
            and not s.crashed
            and not s.stopping
        ]
        if not others:
            raise SiloUnavailableError(
                f"cannot drain {silo_id!r}: no other active silo to receive "
                f"its activations"
            )
        silo.draining = True
        migrated = 0
        for activation in silo.activations():
            if activation.closing:
                continue
            target = min(others, key=lambda s: self._silo_load(s.silo_id))
            try:
                if await self.migrate(activation.key, target.silo_id):
                    migrated += 1
            except SiloUnavailableError:
                # The chosen target left the cluster mid-drain; retry the
                # next activation against the survivors.
                others = [s for s in others if s.silo_id in self._silos]
                if not others:
                    break
        self.stats.silos_drained += 1
        await self.shutdown_silo(silo_id)
        return migrated

    @property
    def pinned_placement(self) -> PinnedPlacement:
        """The pin table used by the ``pinned`` placement strategy."""
        return self.strategies["pinned"]  # type: ignore[return-value]

    # -- references and messaging -------------------------------------------------------

    def ref(
        self,
        type_name: str,
        actor_id: str,
        caller_endpoint: str = CLIENT_ENDPOINT,
        chain: tuple[str, ...] = (),
        trace: Span | None = None,
    ) -> ActorRef:
        """A reference to the virtual actor ``type_name/actor_id``."""
        pair = (type_name, actor_id)
        key = self._actor_keys.get(pair)
        if key is None:
            self.actor_type(type_name)  # fail fast on unknown types
            key = ActorKey(type_name, actor_id)
            self._actor_keys[pair] = key
        return ActorRef(self, key, caller_endpoint, chain, trace=trace)

    def send(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        one_way: bool = False,
        chain: tuple[str, ...] = (),
        deadline_at: float | None = None,
        parent_span: Span | None = None,
        attempt: int = 0,
    ) -> Future[Any]:
        """Route an ask-style invocation; returns the reply future.

        ``deadline_at`` is an absolute virtual time: if the reply is still
        pending then, it fails with
        :class:`~repro.errors.DeadlineExceededError` and the activation
        skips the invocation if it is still queued.
        """
        self.stats.asks += 1
        invocation = self._make_invocation(
            key, method, args, kwargs, caller_endpoint, one_way=False, chain=chain
        )
        if self.tracer.enabled:
            span = self.tracer.begin(
                key,
                "ask",
                caller_endpoint,
                self.scheduler.now,
                parent=parent_span,
                method=method,
            )
            if span is not None and attempt:
                span.attempt = attempt
            invocation.span = span
        invocation.deadline = deadline_at
        # Future() with the constructor frame elided: one reply per ask.
        reply: Future[Any] = Future.__new__(Future)
        reply._state = _F_PENDING
        reply._value = None
        reply._exception = None
        reply._cb0 = None
        reply._callbacks = None
        reply.name = "reply"
        invocation.reply = reply
        if deadline_at is not None:
            self._arm_deadline(invocation, deadline_at)
        self.scheduler.spawn(self._deliver(invocation), name="deliver")
        return invocation.reply

    def _arm_deadline(self, invocation: Invocation, deadline_at: float) -> None:
        reply = invocation.reply

        def expire() -> None:
            if reply is not None and not reply.done():
                self.stats.deadlines_exceeded += 1
                reply.set_exception(
                    DeadlineExceededError(
                        f"{invocation.describe()} missed its deadline "
                        f"(t={deadline_at:.3f})"
                    )
                )
                self.tracer.finish(
                    invocation.span,
                    self.scheduler.now,
                    status="deadline",
                    error="deadline exceeded",
                )

        # The timer must not outlive the call: deadline-wrapped asks almost
        # always resolve early, and an uncancelled timer per ask is exactly
        # the heap leak Scheduler.timeout used to have.  Cancel on reply.
        handle = self.scheduler.call_at(deadline_at, expire)
        reply.add_done_callback(lambda _done: handle.cancel())

    def send_resilient(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        chain: tuple[str, ...] = (),
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
        parent_span: Span | None = None,
    ) -> Future[Any]:
        """Ask with a call deadline and/or transparent retries.

        ``deadline`` is *relative* (virtual seconds from now) and bounds the
        whole call including every retry; ``retry`` governs which transient
        errors are retried and how attempts back off.  The returned future
        resolves with the first successful attempt's result, or rejects with
        the last error once the policy is exhausted or the deadline passes.
        """
        deadline_at = (
            self.scheduler.now + deadline if deadline is not None else None
        )
        if retry is None:
            return self.send(
                key, method, args, kwargs, caller_endpoint,
                chain=chain, deadline_at=deadline_at, parent_span=parent_span,
            )
        retry.validate()
        outer: Future[Any] = Future("resilient")
        backoff_rng = self.rng.stream("retry")
        # Retried asks get an umbrella span; each attempt hangs under it, so
        # the trace shows attempts (with their own breakdowns) *and* the
        # total the caller experienced, backoff sleeps included.
        call_span = None
        if self.tracer.enabled:
            call_span = self.tracer.begin(
                key,
                "retrying-ask",
                caller_endpoint,
                self.scheduler.now,
                parent=parent_span,
                method=method,
            )

        async def drive() -> None:
            attempt = 0
            while True:
                attempt += 1
                attempt_deadline = deadline_at
                if retry.attempt_timeout is not None:
                    cap = self.scheduler.now + retry.attempt_timeout
                    attempt_deadline = (
                        cap if attempt_deadline is None
                        else min(attempt_deadline, cap)
                    )
                inner = self.send(
                    key, method, args, kwargs, caller_endpoint,
                    chain=chain, deadline_at=attempt_deadline,
                    parent_span=call_span if call_span is not None else parent_span,
                    attempt=attempt,
                )
                try:
                    result = await inner
                except BaseException as exc:  # noqa: BLE001 - policy decides
                    if outer.done():
                        return
                    expired = (
                        deadline_at is not None
                        and self.scheduler.now >= deadline_at
                    )
                    if expired or not retry.should_retry(exc, attempt):
                        outer.set_exception(exc)
                        self.tracer.finish(
                            call_span, self.scheduler.now,
                            status="error", error=str(exc),
                        )
                        return
                    delay = retry.delay_for(attempt, backoff_rng, exc)
                    if (
                        deadline_at is not None
                        and self.scheduler.now + delay >= deadline_at
                    ):
                        # No room for another attempt before the deadline.
                        outer.set_exception(exc)
                        self.tracer.finish(
                            call_span, self.scheduler.now,
                            status="error", error=str(exc),
                        )
                        return
                    self.stats.calls_retried += 1
                    if delay > 0:
                        await self.scheduler.sleep(delay)
                    if outer.done():
                        return
                    continue
                if not outer.done():
                    outer.set_result(result)
                self.tracer.finish(call_span, self.scheduler.now)
                return

        self.scheduler.spawn(drive(), name="retry")
        return outer

    def send_one_way(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        chain: tuple[str, ...] = (),
        parent_span: Span | None = None,
        kind: str = "tell",
    ) -> DeliveryReceipt:
        """Route a tell-style invocation (no reply).

        ``kind`` names the span kind when tracing: plain tells say "tell",
        the reminder pump says "reminder", the ingest gateway "ingest".
        """
        self.stats.tells += 1
        invocation = self._make_invocation(
            key, method, args, kwargs, caller_endpoint, one_way=True, chain=chain
        )
        if self.tracer.enabled:
            invocation.span = self.tracer.begin(
                key,
                kind,
                caller_endpoint,
                self.scheduler.now,
                parent=parent_span,
                method=method,
            )
        self.scheduler.spawn(self._deliver(invocation), name="deliver")
        return DeliveryReceipt(key, method, self.scheduler.now)

    def _make_invocation(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        one_way: bool,
        chain: tuple[str, ...] = (),
    ) -> Invocation:
        if self.config.copy_messages:
            args = tuple(snapshot(arg) for arg in args)
            kwargs = {name: snapshot(value) for name, value in kwargs.items()}
        else:
            kwargs = dict(kwargs)
        if self.config.pool_invocations and not self.network.ever_faulted:
            invocation = self._invocation_pool.acquire()
            invocation.target = key
            invocation.method = method
            invocation.args = args
            invocation.kwargs = kwargs
            invocation.caller_endpoint = caller_endpoint
            invocation.one_way = one_way
            invocation.sent_at = self.scheduler.now
            invocation.chain = chain
            return invocation
        return Invocation(
            target=key,
            method=method,
            args=args,
            kwargs=kwargs,
            caller_endpoint=caller_endpoint,
            one_way=one_way,
            sent_at=self.scheduler.now,
            chain=chain,
        )

    def _release_invocation(self, invocation: Invocation) -> None:
        """Recycle a message envelope once nothing can touch it again.

        Called from exactly two places — the one-way tail of :meth:`_reply`
        (handling is over the moment the method returns) and the end of the
        ask reply path (after the reply future resolved).  Deadline-expired
        asks are deliberately never released: the expiry closure may still
        hold the envelope.  Pooling latches off forever once a network
        fault injector has been attached, because duplicated deliveries
        alias one envelope.
        """
        if self.config.pool_invocations and not self.network.ever_faulted:
            self._invocation_pool.release(invocation)

    # -- dispatch ---------------------------------------------------------------------

    def _directory_cache(self, endpoint: str) -> DirectoryCache:
        """The (lazily created) directory cache for one caller endpoint."""
        cache = self._directory_caches.get(endpoint)
        if cache is None:
            cache = DirectoryCache(endpoint)
            self.directory.subscribe(cache)
            self._directory_caches[endpoint] = cache
        return cache

    def _resolve_activation(self, key: ActorKey, caller_endpoint: str) -> Activation:
        """Find or create (synchronously) the activation for ``key``."""
        cache: DirectoryCache | None = None
        if self.config.enable_directory_cache:
            cache = self._directory_caches.get(caller_endpoint)
            if cache is None:
                cache = self._directory_cache(caller_endpoint)
            cached = cache.get(key)
            if cached is not None:
                # A hit only short-circuits the *happy* path: the silo must
                # be up and the activation live.  Anything less drops the
                # entry and takes the authoritative path below, so crash and
                # repair semantics are identical with and without the cache.
                silo = self._silos.get(cached)
                if silo is not None and not silo.crashed and not silo.quarantined:
                    activation = silo.get_activation(key)
                    if activation is not None and not activation.closing:
                        cache.stats.hits += 1
                        return activation
                cache.invalidate(key)
            cache.stats.misses += 1
        silo_id = self.directory.lookup(key)
        predecessor = None
        if silo_id is not None:
            silo = self._silos.get(silo_id)
            if silo is not None and (silo.crashed or silo.quarantined):
                if self.system_store.status_of(silo_id) == "active":
                    # The cluster still believes the silo is alive, so the
                    # registration is authoritative: the call goes to a dead
                    # endpoint and fails.  Retry policies mask this window;
                    # the failure detector (or lease lapse) ends it.
                    raise SiloUnavailableError(
                        f"silo {silo_id!r} is not responding"
                    )
                # Membership no longer vouches for the silo: the entry is
                # stale, repair it and re-place on a surviving silo.  A
                # quarantined silo keeps its (parked) catalog entry — the
                # rejoin path aborts it; only a crash empties the catalog.
                self.directory.unregister(key)
                if silo.crashed:
                    silo.remove_activation(key)
            else:
                activation = silo.get_activation(key) if silo is not None else None
                if activation is not None and not activation.closing:
                    if cache is not None:
                        cache.put(key, silo_id)
                    return activation
                # Stale entry (collected, closing, or silo gone): clear it
                # and fall through to fresh placement.
                self.directory.unregister(key)
                if activation is not None:
                    silo.remove_activation(key)
                    predecessor = activation
        actor_class = self.actor_type(key.type_name)
        strategy_name = actor_class.placement or self.config.default_placement
        strategy = self.strategies.get(strategy_name)
        if strategy is None:
            raise ValueError(
                f"unknown placement strategy {strategy_name!r} "
                f"for actor type {key.type_name!r}"
            )
        # Draining and stopping silos are mid-decommission: they keep
        # serving what they host, but strategies must never place *new*
        # activations there (prefer-local would otherwise pin fresh actors
        # onto a silo that is about to shut down, and an ask racing
        # shutdown_silo would re-place its just-deactivated actor back on
        # the stopping silo, orphaning it when the silo is removed).
        active = [
            s
            for s in self.system_store.active_silos()
            if s in self._silos
            and not self._silos[s].draining
            and not self._silos[s].stopping
        ]
        if not active:
            raise SiloUnavailableError("no active silos in the cluster")
        silo_id = strategy.choose(key, caller_endpoint, active)
        self.metrics.counter(
            "placement.decisions", strategy=strategy_name, silo=silo_id
        ).inc()
        silo = self._silos[silo_id]
        if silo.crashed or silo.quarantined:
            # Membership hasn't noticed the crash yet, so placement can
            # still pick the dead silo — the call fails like a connection
            # to a dead host would.
            raise SiloUnavailableError(f"silo {silo_id!r} is not responding")
        stale = silo.get_activation(key)
        if stale is not None:
            # A dangling predecessor from a concurrent migration is still
            # draining on the chosen silo: the directory stopped pointing at
            # it when it was repointed, so it never hit the stale-entry branch
            # above.  Evict it from the catalog (its drain keeps running) and,
            # absent a directory-entry predecessor, use its close as the
            # barrier so the fresh activation cannot load state before the
            # dangling link's flush lands.
            silo.remove_activation(key)
            if predecessor is None:
                predecessor = stale
        self.directory.register(key, silo_id)
        if cache is not None:
            cache.put(key, silo_id)
        activation = Activation(
            self,
            actor_class,
            key,
            silo,
            predecessor_closed=predecessor.closed if predecessor is not None else None,
        )
        silo.add_activation(activation)
        self.stats.activations_created += 1
        if self.database is not None:
            self.database.note_activation(key)
        return activation

    async def _deliver(self, invocation: Invocation) -> None:
        while True:
            reply = invocation.reply
            if reply is not None and reply._state is not _F_PENDING:
                # A deadline (or chaos) already resolved the caller's
                # future; re-delivering would execute an abandoned request
                # on the successor activation after a partition repair.
                return
            try:
                activation = self._resolve_activation(
                    invocation.target, invocation.caller_endpoint
                )
            except Exception as exc:  # noqa: BLE001 - surfaced on the reply
                self._fail_invocation(invocation, exc)
                return
            if self._batcher is not None:
                try:
                    delay, cohort = await self._batcher.transfer(
                        invocation.caller_endpoint, activation.silo.silo_id
                    )
                except Exception as exc:  # noqa: BLE001 - routing failure
                    self._fail_invocation(invocation, exc)
                    return
                invocation.batch_cohort = cohort
            else:
                delay = await self.network.transfer(
                    invocation.caller_endpoint, activation.silo.silo_id
                )
            span = invocation.span
            if span is not None and span.end is None:
                span.network += delay
            if activation.closing:
                await activation.closed.wait()
                continue
            try:
                activation.enqueue(invocation)
                if self.network.faults is not None and self.network.should_duplicate(
                    invocation.caller_endpoint, activation.silo.silo_id
                ):
                    # Chaos: the same invocation arrives twice.  A duplicate
                    # ask is harmless (the one-shot reply future deduplicates
                    # the answers); a duplicate one-way executes twice, which
                    # is exactly the at-least-once hazard the harness probes.
                    try:
                        activation.enqueue(invocation)
                    except Exception:  # noqa: BLE001 - duplicate best-effort
                        pass
                return
            except MailboxOverflowError as exc:
                self.stats.dropped_messages += 1
                self._fail_invocation(invocation, exc)
                return
            except ReentrancyError as exc:
                # A would-be deadlock: fail the caller instead of hanging.
                self._fail_invocation(invocation, exc)
                return
            except QuarantinedSiloError as exc:
                # Parked activation on a leaseless silo: fail fast (the
                # error is retryable) rather than wait on a closed event a
                # parked-but-alive activation never sets.
                self._fail_invocation(invocation, exc)
                return
            except Exception:  # activation started closing during transfer
                await activation.closed.wait()

    def _fail_invocation(self, invocation: Invocation, exc: Exception) -> None:
        self.stats.errors += 1
        self.stats.last_error = f"{invocation.describe()}: {exc}"
        if invocation.reply is not None and not invocation.reply.done():
            invocation.reply.set_exception(exc)
        self.tracer.finish(
            invocation.span, self.scheduler.now, status="error", error=str(exc)
        )

    def _reply(
        self,
        invocation: Invocation,
        result: Any,
        error: BaseException | None,
        from_silo: str,
    ) -> None:
        """Deliver a method result (or error) back to the caller."""
        if error is not None:
            self.stats.errors += 1
            self.stats.last_error = f"{invocation.describe()}: {error}"
        if invocation.reply is None:
            # One-way: handling is done the moment the method returns.
            self.tracer.finish(
                invocation.span,
                self.scheduler.now,
                status="error" if error is not None else "ok",
                error=str(error) if error is not None else "",
            )
            self._release_invocation(invocation)
            return

        # Pass everything the reply needs as arguments (stored in the
        # coroutine frame — no closure/cell allocation per reply): once the
        # reply future resolves, the invocation object may be recycled
        # through the runtime's freelist and must not be touched, so the
        # fields are captured here, before any await.
        self.scheduler.spawn(
            self._reply_path(
                invocation,
                invocation.reply,
                invocation.span,
                invocation.sent_at,
                invocation.caller_endpoint,
                result,
                error,
                from_silo,
            ),
            name="reply",
        )

    async def _reply_path(
        self,
        invocation: Invocation,
        reply: "Future[Any]",
        span: Any,
        sent_at: float,
        caller_endpoint: str,
        result: Any,
        error: BaseException | None,
        from_silo: str,
    ) -> None:
        delay = await self.network.transfer(from_silo, caller_endpoint)
        if span is not None and span.end is None:
            span.network += delay
        if reply._state is not _F_PENDING:
            # Deadline or chaos already resolved the caller's future;
            # the span was finished by whoever resolved it.
            return
        if error is not None:
            reply.set_exception(error)
        else:
            payload = snapshot(result) if self.config.copy_messages else result
            reply.set_result(payload)
        self.stats.replies += 1
        if self.profiler.enabled:
            self._ask_latency.observe(self.scheduler.now - sent_at)
        self.tracer.finish(
            span,
            self.scheduler.now,
            status="error" if error is not None else "ok",
            error=str(error) if error is not None else "",
        )
        self._release_invocation(invocation)

    def _activation_failed(self, activation: Activation, exc: BaseException) -> None:
        self.stats.activation_failures += 1
        self.stats.last_error = f"activation {activation.key}: {exc}"
        self.stats.failed_keys.append(activation.key.qualified())
        # Remove the broken activation so the next message gets a fresh one
        # (unless a successor already replaced it in the records).
        silo = self._silos.get(activation.silo.silo_id)
        if silo is not None and silo.get_activation(activation.key) is activation:
            silo.remove_activation(activation.key)
            if self.directory.lookup(activation.key) == activation.silo.silo_id:
                self.directory.unregister(activation.key)

    # -- lifecycle services ------------------------------------------------------------

    async def _deactivate(self, activation: Activation) -> None:
        await activation.close()
        # While close() was draining, a racing message may already have
        # replaced this activation (directory + catalog now point at the
        # successor).  Only clean up if the records still name *us*.
        silo = self._silos.get(activation.silo.silo_id)
        if silo is not None and silo.get_activation(activation.key) is activation:
            silo.remove_activation(activation.key)
            if self.directory.lookup(activation.key) == activation.silo.silo_id:
                self.directory.unregister(activation.key)
        self.stats.activations_collected += 1

    async def deactivate(self, type_name: str, actor_id: str) -> bool:
        """Explicitly deactivate one actor (persisting durable state)."""
        key = ActorKey(type_name, actor_id)
        silo_id = self.directory.lookup(key)
        if silo_id is None:
            return False
        silo = self._silos.get(silo_id)
        activation = silo.get_activation(key) if silo is not None else None
        if activation is None:
            return False
        await self._deactivate(activation)
        return True

    def start(self) -> None:
        """Start background services (collector, reminders, failure detector)."""
        if self._collector_task is None:
            self._collector_task = self.scheduler.spawn(
                self._collector_loop(), name="idle-collector"
            )
        if self._reminder_task is None:
            self._reminder_task = self.scheduler.spawn(
                self._reminder_loop(), name="reminder-pump"
            )
        if self._failure_detector_task is None and self.config.enable_failure_detection:
            self._failure_detector_task = self.scheduler.spawn(
                self._failure_detector_loop(), name="failure-detector"
            )

    async def stop(self) -> None:
        """Stop background services and shut every silo down gracefully."""
        if self._stopped:
            return
        self._stopped = True
        if self._collector_task is not None:
            self._collector_task.cancel()
            self._collector_task = None
        if self._reminder_task is not None:
            self._reminder_task.cancel()
            self._reminder_task = None
        if self._failure_detector_task is not None:
            self._failure_detector_task.cancel()
            self._failure_detector_task = None
        for silo_id in list(self._silos):
            await self.shutdown_silo(silo_id)

    async def _collector_loop(self) -> None:
        while True:
            await self.scheduler.sleep(self.config.collection_interval)
            await self.collect_idle_activations()

    async def collect_idle_activations(self) -> int:
        """One collector pass; returns how many activations were collected."""
        collected = 0
        for silo in list(self._silos.values()):
            for activation in silo.idle_candidates(self.config.idle_timeout):
                await self._deactivate(activation)
                collected += 1
        return collected

    async def _reminder_loop(self) -> None:
        while True:
            await self.scheduler.sleep(self.config.reminder_tick)
            self.pump_reminders()

    # -- failure detection -------------------------------------------------------

    async def _failure_detector_loop(self) -> None:
        while True:
            await self.scheduler.sleep(self.config.failure_detection_interval)
            self.evict_dead_silos()

    def evict_dead_silos(self) -> list[str]:
        """One failure-detector pass over the membership table.

        Silos whose lease has been lapsed for longer than
        ``config.suspicion_grace`` are declared dead: their membership row
        is retired, their directory registrations purged, and (when
        ``config.proactive_reactivation`` is on) their actors re-placed on
        surviving silos ahead of demand, recovering persisted state.
        Returns the ids of the silos evicted by this pass.

        Eviction is a *view change*, and two safeguards keep it from being
        unilateral: (1) a **quorum gate** — at least
        ``ceil(members * eviction_quorum)`` of the non-dead membership rows
        must still be active, so the suspected minority of a partition can
        never evict the majority (the system store itself is the tiebreak,
        as in lease-based membership protocols); (2) an **epoch CAS** — the
        retirement is conditional on the membership epoch observed when the
        decision was made, so racing view changes resolve deterministically
        instead of compounding.
        """
        now = self.scheduler.now
        evicted: list[str] = []
        members = [
            entry
            for entry in self.system_store.members()
            if self.system_store.status_of(entry.silo_id) != "dead"
        ]
        required = max(1, math.ceil(len(members) * self.config.eviction_quorum))
        for entry in members:
            status = self.system_store.status_of(entry.silo_id)
            if status == "active":
                self._suspected.discard(entry.silo_id)
                continue
            if entry.silo_id not in self._suspected:
                self._suspected.add(entry.silo_id)
                self.stats.silos_suspected += 1
            if now < entry.lease_expires_at + self.config.suspicion_grace:
                continue
            active = sum(
                1
                for candidate in members
                if self.system_store.status_of(candidate.silo_id) == "active"
            )
            if active < required:
                # No quorum of live voters behind this view change: leave
                # the row suspected.  This is the branch that stops a
                # store-isolated minority from evicting the world.
                continue
            expected_epoch = self.system_store.epoch
            try:
                self.system_store.retire(entry.silo_id, expected_epoch=expected_epoch)
            except ConditionalCheckFailedError:
                # A concurrent view change won the CAS; re-decide next pass
                # against the fresh view.
                continue
            self._evict_silo(entry.silo_id)
            evicted.append(entry.silo_id)
        return evicted

    def _evict_silo(self, silo_id: str) -> None:
        """Declare a suspected silo dead and repair the cluster around it.

        Two shapes of eviction:

        - the silo is *gone* (crashed, or its object already removed):
          full teardown — abort activations, cancel services, unregister
          the endpoint;
        - the silo is *alive but partitioned* (a would-be zombie): the
          cluster cannot reach into it, so only the cluster-side view is
          repaired — membership retired, directory purged, grains re-placed.
          The zombie keeps running on its side of the split; its lease loss
          makes it self-quarantine (or, with quarantine off, its stale
          flushes bounce off the storage fence floors), and its heartbeat
          loop re-announces it when the partition heals.
        """
        fault = SiloUnavailableError(f"silo {silo_id!r} declared dead")
        registered = self.directory.entries_on(silo_id)
        silo = self._silos.get(silo_id)
        zombie = (
            silo is not None
            and not silo.crashed
            and (silo.quarantined or not self._store_reachable(silo_id))
        )
        if not zombie:
            silo = self._silos.pop(silo_id, None)
            if silo is not None:
                for activation in silo.activations():
                    activation.abort(fault)
                    silo.remove_activation(activation.key)
                    self.stats.activations_crashed += 1
                heartbeat = self._heartbeats.pop(silo_id, None)
                if heartbeat is not None:
                    heartbeat.cancel()
                self._cancel_redo_pump(silo_id)
                self.network.unregister(silo_id)
                self.metrics.unregister_probes(silo=silo_id)
        self.system_store.retire(silo_id)
        for key in registered:
            if self.directory.lookup(key) == silo_id:
                self.directory.unregister(key)
        self._suspected.discard(silo_id)
        self.stats.silos_evicted += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.silo_journal(silo_id).record(
                "silo-evicted", silo_id, len(registered)
            )
            recorder.record_incident(
                "silo-evicted",
                {
                    "silo": silo_id,
                    "zombie": zombie,
                    "registered_grains": len(registered),
                    "at": self.scheduler.now,
                },
            )
        if not (self.config.proactive_reactivation and self._silos):
            return
        for key in registered:
            try:
                self._resolve_activation(key, CLIENT_ENDPOINT)
            except Exception:  # noqa: BLE001 - best-effort warmup
                continue
            self.stats.activations_replaced += 1

    def pump_reminders(self) -> int:
        """Fire every due reminder; returns the number delivered."""
        now = self.scheduler.now
        fired = 0
        for reminder in self.system_store.all_reminders():
            slot = (reminder.actor_key, reminder.name)
            due = self._reminder_due.get(slot, reminder.first_due)
            while due <= now:
                key = ActorKey.parse(reminder.actor_key)
                self.send_one_way(
                    key,
                    "receive_reminder",
                    (reminder.name,),
                    {},
                    caller_endpoint=CLIENT_ENDPOINT,
                    kind="reminder",
                )
                self.stats.reminders_delivered += 1
                fired += 1
                due += reminder.period
            self._reminder_due[slot] = due
        return fired

    # -- introspection -------------------------------------------------------------------

    def total_activations(self) -> int:
        """Live activations across the whole cluster."""
        return sum(silo.activation_count for silo in self._silos.values())

    def describe_cluster(self) -> dict[str, Any]:
        """A snapshot of cluster shape and load, for operators and tests."""
        return {
            "silos": {
                silo.silo_id: {
                    "instance_type": silo.instance_type,
                    "cores": silo.cpu.cores,
                    "speed": silo.cpu.speed,
                    "activations": silo.activation_count,
                    "utilization": silo.cpu.utilization(),
                }
                for silo in self._silos.values()
            },
            "directory_entries": len(self.directory),
            "actor_types": sorted(self._actor_types),
        }
