"""The actor-oriented database runtime facade.

:class:`AodbRuntime` ties the substrates together: it registers actor types,
manages the cluster of silos, routes messages (placement → network transfer
→ mailbox), runs the idle-activation collector and the durable-reminder
pump, and exposes the statistics benchmarks read.

The public surface an application touches is small::

    runtime = AodbRuntime(scheduler)
    runtime.register_actor(Cow)
    runtime.add_silo("silo-1", cores=4)
    cow = runtime.ref("Cow", "dk-0042")
    await cow.record_reading(reading)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import (
    MailboxOverflowError,
    ReentrancyError,
    SiloUnavailableError,
    UnknownActorTypeError,
)
from ..kernel.futures import Future
from ..kernel.rng import RngRegistry
from ..kernel.scheduler import Scheduler, Task
from ..net.network import Network
from ..storage.kv import InMemoryKVStore, KeyValueStore
from ..storage.serde import snapshot
from ..storage.system_store import SystemStore
from .activation import Activation
from .actor import Actor
from .config import RuntimeConfig
from .directory import GrainDirectory
from .key import ActorKey
from .messages import DeliveryReceipt, Invocation
from .placement import PinnedPlacement, build_strategies
from .reference import ActorRef
from .silo import Silo

CLIENT_ENDPOINT = "client"


@dataclass
class RuntimeStats:
    """Counters accumulated across the life of the runtime."""

    asks: int = 0
    tells: int = 0
    replies: int = 0
    errors: int = 0
    dropped_messages: int = 0
    activations_created: int = 0
    activations_collected: int = 0
    activations_crashed: int = 0
    activation_failures: int = 0
    reminders_delivered: int = 0
    last_error: str = ""
    failed_keys: list[str] = field(default_factory=list)


class AodbRuntime:
    """An actor-oriented database over simulated cluster hardware."""

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        config: RuntimeConfig | None = None,
        grain_storage: KeyValueStore | None = None,
        network: Network | None = None,
        system_store: SystemStore | None = None,
        rng: RngRegistry | None = None,
    ) -> None:
        self.scheduler = scheduler or Scheduler()
        self.config = config or RuntimeConfig()
        self.config.validate()
        self.rng = rng or RngRegistry(self.config.seed)
        self.network = network or Network(self.scheduler, rng=self.rng)
        self.system_store = system_store or SystemStore(self.scheduler)
        # Explicit None check: stores define __len__, so an empty store is
        # falsy and `or` would silently discard it.
        self.grain_storage = (
            grain_storage if grain_storage is not None else InMemoryKVStore()
        )
        self.directory = GrainDirectory()
        self.strategies = build_strategies(self.rng.stream("placement"))
        self.stats = RuntimeStats()
        self._actor_types: dict[str, type[Actor]] = {}
        self._silos: dict[str, Silo] = {}
        self._collector_task: Task | None = None
        self._reminder_task: Task | None = None
        self._heartbeats: dict[str, Task] = {}
        self._reminder_due: dict[tuple[str, str], float] = {}
        self._stopped = False
        # Set by AodbDatabase when database features are layered on top.
        self.database: Any = None
        self.network.register(CLIENT_ENDPOINT)

    # -- registration ------------------------------------------------------------

    def register_actor(
        self, actor_class: type[Actor], name: str | None = None
    ) -> type[Actor]:
        """Register an actor class under ``name`` (default: class name).

        Usable as a decorator: ``@runtime.register_actor``.
        """
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class!r} is not an Actor subclass")
        type_name = name or actor_class.__name__
        existing = self._actor_types.get(type_name)
        if existing is not None and existing is not actor_class:
            raise ValueError(f"actor type {type_name!r} already registered")
        self._actor_types[type_name] = actor_class
        return actor_class

    def register_actors(self, actor_classes: Iterable[type[Actor]]) -> None:
        """Register several actor classes at once."""
        for actor_class in actor_classes:
            self.register_actor(actor_class)

    def actor_type(self, type_name: str) -> type[Actor]:
        """The registered class for ``type_name`` (raises if unknown)."""
        actor_class = self._actor_types.get(type_name)
        if actor_class is None:
            raise UnknownActorTypeError(type_name)
        return actor_class

    # -- cluster management ----------------------------------------------------------

    def add_silo(
        self,
        silo_id: str,
        cores: int = 2,
        speed: float = 1.0,
        instance_type: str = "generic",
    ) -> Silo:
        """Bring a new silo (server) into the cluster."""
        if silo_id in self._silos:
            raise ValueError(f"silo {silo_id!r} already exists")
        silo = Silo(
            self.scheduler,
            silo_id,
            cores=cores,
            speed=speed,
            instance_type=instance_type,
        )
        self._silos[silo_id] = silo
        self.network.register(silo_id)
        self.system_store.announce(silo_id, instance_type=instance_type)
        self._heartbeats[silo_id] = self.scheduler.spawn(
            self._heartbeat_loop(silo_id), name=f"heartbeat:{silo_id}"
        )
        return silo

    async def _heartbeat_loop(self, silo_id: str) -> None:
        # Keep the membership lease fresh while the silo lives, as Orleans
        # silos do against their system store.
        interval = self.system_store.lease_seconds / 3
        while silo_id in self._silos:
            await self.scheduler.sleep(interval)
            if silo_id in self._silos:
                self.system_store.refresh_lease(silo_id)

    def silo(self, silo_id: str) -> Silo:
        """The silo object for ``silo_id`` (raises if unknown)."""
        silo = self._silos.get(silo_id)
        if silo is None:
            raise SiloUnavailableError(silo_id)
        return silo

    def silos(self) -> list[Silo]:
        """All silos in the cluster."""
        return list(self._silos.values())

    async def shutdown_silo(self, silo_id: str) -> int:
        """Gracefully stop one silo: deactivate (and persist) everything.

        Returns the number of activations that were deactivated.  This is
        the paper's durability story for the benchmarks: "the upload of data
        points to the grain state storage has been configured to only happen
        when the Orleans silo service is shut down".
        """
        silo = self.silo(silo_id)
        silo.stopping = True
        count = 0
        for activation in silo.activations():
            await self._deactivate(activation)
            count += 1
        self.system_store.retire(silo_id)
        self.network.unregister(silo_id)
        del self._silos[silo_id]
        heartbeat = self._heartbeats.pop(silo_id, None)
        if heartbeat is not None:
            heartbeat.cancel()
        return count

    def crash_silo(self, silo_id: str) -> int:
        """Fail one silo *without* any graceful shutdown.

        Unlike :meth:`shutdown_silo`, nothing is flushed and no
        ``on_deactivate`` hooks run: in-memory state since the last
        persistence point is lost, queued and in-flight requests fail with
        :class:`~repro.errors.SiloUnavailableError`, and the crashed
        activations' keys re-place on surviving silos at next use.
        Returns the number of activations lost.
        """
        silo = self.silo(silo_id)
        fault = SiloUnavailableError(f"silo {silo_id!r} crashed")
        lost = 0
        for activation in silo.activations():
            activation.closing = True
            activation._pump_task.cancel()
            for timer_name in list(activation._timers):
                activation.cancel_timer(timer_name)
            activation._fail_pending(fault)
            activation.closed.set()
            silo.remove_activation(activation.key)
            if self.directory.lookup(activation.key) == silo_id:
                self.directory.unregister(activation.key)
            lost += 1
        self.stats.activations_crashed += lost
        self.system_store.retire(silo_id)
        self.network.unregister(silo_id)
        del self._silos[silo_id]
        heartbeat = self._heartbeats.pop(silo_id, None)
        if heartbeat is not None:
            heartbeat.cancel()
        return lost

    @property
    def pinned_placement(self) -> PinnedPlacement:
        """The pin table used by the ``pinned`` placement strategy."""
        return self.strategies["pinned"]  # type: ignore[return-value]

    # -- references and messaging -------------------------------------------------------

    def ref(
        self,
        type_name: str,
        actor_id: str,
        caller_endpoint: str = CLIENT_ENDPOINT,
        chain: tuple[str, ...] = (),
    ) -> ActorRef:
        """A reference to the virtual actor ``type_name/actor_id``."""
        self.actor_type(type_name)  # fail fast on unknown types
        return ActorRef(self, ActorKey(type_name, actor_id), caller_endpoint, chain)

    def send(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        one_way: bool = False,
        chain: tuple[str, ...] = (),
    ) -> Future[Any]:
        """Route an ask-style invocation; returns the reply future."""
        self.stats.asks += 1
        invocation = self._make_invocation(
            key, method, args, kwargs, caller_endpoint, one_way=False, chain=chain
        )
        invocation.reply = Future(f"reply:{invocation.describe()}")
        self.scheduler.spawn(
            self._deliver(invocation), name=f"deliver:{invocation.describe()}"
        )
        return invocation.reply

    def send_one_way(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        chain: tuple[str, ...] = (),
    ) -> DeliveryReceipt:
        """Route a tell-style invocation (no reply)."""
        self.stats.tells += 1
        invocation = self._make_invocation(
            key, method, args, kwargs, caller_endpoint, one_way=True, chain=chain
        )
        self.scheduler.spawn(
            self._deliver(invocation), name=f"deliver:{invocation.describe()}"
        )
        return DeliveryReceipt(key, method, self.scheduler.now)

    def _make_invocation(
        self,
        key: ActorKey,
        method: str,
        args: tuple,
        kwargs: dict[str, Any],
        caller_endpoint: str,
        one_way: bool,
        chain: tuple[str, ...] = (),
    ) -> Invocation:
        if self.config.copy_messages:
            args = tuple(snapshot(arg) for arg in args)
            kwargs = {name: snapshot(value) for name, value in kwargs.items()}
        return Invocation(
            target=key,
            method=method,
            args=args,
            kwargs=dict(kwargs),
            caller_endpoint=caller_endpoint,
            one_way=one_way,
            sent_at=self.scheduler.now,
            chain=chain,
        )

    # -- dispatch ---------------------------------------------------------------------

    def _resolve_activation(self, key: ActorKey, caller_endpoint: str) -> Activation:
        """Find or create (synchronously) the activation for ``key``."""
        silo_id = self.directory.lookup(key)
        predecessor = None
        if silo_id is not None:
            silo = self._silos.get(silo_id)
            activation = silo.get_activation(key) if silo is not None else None
            if activation is not None and not activation.closing:
                return activation
            # Stale entry (collected, closing, or silo gone): clear it and
            # fall through to fresh placement.
            self.directory.unregister(key)
            if activation is not None:
                silo.remove_activation(key)
                predecessor = activation
        actor_class = self.actor_type(key.type_name)
        strategy_name = actor_class.placement or self.config.default_placement
        strategy = self.strategies.get(strategy_name)
        if strategy is None:
            raise ValueError(
                f"unknown placement strategy {strategy_name!r} "
                f"for actor type {key.type_name!r}"
            )
        active = [s for s in self.system_store.active_silos() if s in self._silos]
        if not active:
            raise SiloUnavailableError("no active silos in the cluster")
        silo_id = strategy.choose(key, caller_endpoint, active)
        silo = self._silos[silo_id]
        self.directory.register(key, silo_id)
        activation = Activation(
            self,
            actor_class,
            key,
            silo,
            predecessor_closed=predecessor.closed if predecessor is not None else None,
        )
        silo.add_activation(activation)
        self.stats.activations_created += 1
        if self.database is not None:
            self.database.note_activation(key)
        return activation

    async def _deliver(self, invocation: Invocation) -> None:
        while True:
            try:
                activation = self._resolve_activation(
                    invocation.target, invocation.caller_endpoint
                )
            except Exception as exc:  # noqa: BLE001 - surfaced on the reply
                self._fail_invocation(invocation, exc)
                return
            await self.network.transfer(
                invocation.caller_endpoint, activation.silo.silo_id
            )
            if activation.closing:
                await activation.closed.wait()
                continue
            try:
                activation.enqueue(invocation)
                return
            except MailboxOverflowError as exc:
                self.stats.dropped_messages += 1
                self._fail_invocation(invocation, exc)
                return
            except ReentrancyError as exc:
                # A would-be deadlock: fail the caller instead of hanging.
                self._fail_invocation(invocation, exc)
                return
            except Exception:  # activation started closing during transfer
                await activation.closed.wait()

    def _fail_invocation(self, invocation: Invocation, exc: Exception) -> None:
        self.stats.errors += 1
        self.stats.last_error = f"{invocation.describe()}: {exc}"
        if invocation.reply is not None and not invocation.reply.done():
            invocation.reply.set_exception(exc)

    def _reply(
        self,
        invocation: Invocation,
        result: Any,
        error: BaseException | None,
        from_silo: str,
    ) -> None:
        """Deliver a method result (or error) back to the caller."""
        if error is not None:
            self.stats.errors += 1
            self.stats.last_error = f"{invocation.describe()}: {error}"
        if invocation.reply is None:
            return

        async def reply_path() -> None:
            await self.network.transfer(from_silo, invocation.caller_endpoint)
            if invocation.reply.done():
                return
            if error is not None:
                invocation.reply.set_exception(error)
            else:
                payload = snapshot(result) if self.config.copy_messages else result
                invocation.reply.set_result(payload)
            self.stats.replies += 1

        self.scheduler.spawn(reply_path(), name=f"reply:{invocation.describe()}")

    def _activation_failed(self, activation: Activation, exc: BaseException) -> None:
        self.stats.activation_failures += 1
        self.stats.last_error = f"activation {activation.key}: {exc}"
        self.stats.failed_keys.append(activation.key.qualified())
        # Remove the broken activation so the next message gets a fresh one
        # (unless a successor already replaced it in the records).
        silo = self._silos.get(activation.silo.silo_id)
        if silo is not None and silo.get_activation(activation.key) is activation:
            silo.remove_activation(activation.key)
            if self.directory.lookup(activation.key) == activation.silo.silo_id:
                self.directory.unregister(activation.key)

    # -- lifecycle services ------------------------------------------------------------

    async def _deactivate(self, activation: Activation) -> None:
        await activation.close()
        # While close() was draining, a racing message may already have
        # replaced this activation (directory + catalog now point at the
        # successor).  Only clean up if the records still name *us*.
        silo = self._silos.get(activation.silo.silo_id)
        if silo is not None and silo.get_activation(activation.key) is activation:
            silo.remove_activation(activation.key)
            if self.directory.lookup(activation.key) == activation.silo.silo_id:
                self.directory.unregister(activation.key)
        self.stats.activations_collected += 1

    async def deactivate(self, type_name: str, actor_id: str) -> bool:
        """Explicitly deactivate one actor (persisting durable state)."""
        key = ActorKey(type_name, actor_id)
        silo_id = self.directory.lookup(key)
        if silo_id is None:
            return False
        silo = self._silos.get(silo_id)
        activation = silo.get_activation(key) if silo is not None else None
        if activation is None:
            return False
        await self._deactivate(activation)
        return True

    def start(self) -> None:
        """Start background services (idle collector, reminder pump)."""
        if self._collector_task is None:
            self._collector_task = self.scheduler.spawn(
                self._collector_loop(), name="idle-collector"
            )
        if self._reminder_task is None:
            self._reminder_task = self.scheduler.spawn(
                self._reminder_loop(), name="reminder-pump"
            )

    async def stop(self) -> None:
        """Stop background services and shut every silo down gracefully."""
        if self._stopped:
            return
        self._stopped = True
        if self._collector_task is not None:
            self._collector_task.cancel()
            self._collector_task = None
        if self._reminder_task is not None:
            self._reminder_task.cancel()
            self._reminder_task = None
        for silo_id in list(self._silos):
            await self.shutdown_silo(silo_id)

    async def _collector_loop(self) -> None:
        while True:
            await self.scheduler.sleep(self.config.collection_interval)
            await self.collect_idle_activations()

    async def collect_idle_activations(self) -> int:
        """One collector pass; returns how many activations were collected."""
        collected = 0
        for silo in list(self._silos.values()):
            for activation in silo.idle_candidates(self.config.idle_timeout):
                await self._deactivate(activation)
                collected += 1
        return collected

    async def _reminder_loop(self) -> None:
        while True:
            await self.scheduler.sleep(self.config.reminder_tick)
            self.pump_reminders()

    def pump_reminders(self) -> int:
        """Fire every due reminder; returns the number delivered."""
        now = self.scheduler.now
        fired = 0
        for reminder in self.system_store.all_reminders():
            slot = (reminder.actor_key, reminder.name)
            due = self._reminder_due.get(slot, reminder.first_due)
            while due <= now:
                key = ActorKey.parse(reminder.actor_key)
                self.send_one_way(
                    key,
                    "receive_reminder",
                    (reminder.name,),
                    {},
                    caller_endpoint=CLIENT_ENDPOINT,
                )
                self.stats.reminders_delivered += 1
                fired += 1
                due += reminder.period
            self._reminder_due[slot] = due
        return fired

    # -- introspection -------------------------------------------------------------------

    def total_activations(self) -> int:
        """Live activations across the whole cluster."""
        return sum(silo.activation_count for silo in self._silos.values())

    def describe_cluster(self) -> dict[str, Any]:
        """A snapshot of cluster shape and load, for operators and tests."""
        return {
            "silos": {
                silo.silo_id: {
                    "instance_type": silo.instance_type,
                    "cores": silo.cpu.cores,
                    "speed": silo.cpu.speed,
                    "activations": silo.activation_count,
                    "utilization": silo.cpu.utilization(),
                }
                for silo in self._silos.values()
            },
            "directory_entries": len(self.directory),
            "actor_types": sorted(self._actor_types),
        }
