"""Activation placement strategies.

When a message targets a virtual actor with no current activation, the
runtime must choose a silo.  Orleans defaults to random placement ("adequate
for most use cases since it will spread load") and recommends prefer-local
for chatty neighbours; the paper's SHM deployment switched sensor channels
and aggregators to prefer-local (§5).  All three strategies used in the
paper's discussion are implemented, plus a stable-hash strategy that gives
deterministic spreading without randomness.
"""

from __future__ import annotations

import random
import zlib
from typing import Protocol, Sequence

from .key import ActorKey


class PlacementStrategy(Protocol):
    """Chooses a hosting silo for a new activation."""

    def choose(
        self,
        key: ActorKey,
        caller_endpoint: str,
        active_silos: Sequence[str],
    ) -> str:
        """Return the silo id to host ``key``; ``active_silos`` is non-empty."""
        ...  # pragma: no cover - protocol


class RandomPlacement:
    """Uniformly random placement over the active silos."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        return active_silos[self._rng.randrange(len(active_silos))]


class PreferLocalPlacement:
    """Place on the caller's silo when the caller is a silo.

    Calls arriving from outside the cluster (client gateways) fall back to
    the wrapped strategy.
    """

    def __init__(self, fallback: PlacementStrategy) -> None:
        self._fallback = fallback

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        if caller_endpoint in active_silos:
            return caller_endpoint
        return self._fallback.choose(key, caller_endpoint, active_silos)


class HashPlacement:
    """Stable placement by CRC of the actor key.

    The same key always lands on the same silo for a fixed membership, which
    keeps partitioned workloads (one organization per silo) reproducible.
    """

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        digest = zlib.crc32(key.qualified().encode("utf-8"))
        return active_silos[digest % len(active_silos)]


class PinnedPlacement:
    """Explicit key→silo pinning with a fallback for unpinned keys.

    Benchmarks use this to reproduce the paper's partitioning of
    organizations across servers exactly.
    """

    def __init__(self, fallback: PlacementStrategy) -> None:
        self._fallback = fallback
        self._pins: dict[str, str] = {}
        self._prefix_pins: list[tuple[str, str]] = []

    def pin(self, key: ActorKey, silo_id: str) -> None:
        """Pin one specific actor key to a silo."""
        self._pins[key.qualified()] = silo_id

    def pin_prefix(self, qualified_prefix: str, silo_id: str) -> None:
        """Pin every key whose ``Type/id`` starts with the given prefix."""
        self._prefix_pins.append((qualified_prefix, silo_id))

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        qualified = key.qualified()
        pinned = self._pins.get(qualified)
        if pinned is not None and pinned in active_silos:
            return pinned
        for prefix, silo_id in self._prefix_pins:
            if qualified.startswith(prefix) and silo_id in active_silos:
                return silo_id
        return self._fallback.choose(key, caller_endpoint, active_silos)


def build_strategies(rng: random.Random) -> dict[str, PlacementStrategy]:
    """The standard strategy registry, keyed by the names actors use."""
    random_strategy = RandomPlacement(rng)
    pinned = PinnedPlacement(fallback=random_strategy)
    return {
        "random": random_strategy,
        "prefer_local": PreferLocalPlacement(fallback=random_strategy),
        "hash": HashPlacement(),
        "pinned": pinned,
    }
