"""Activation placement strategies.

When a message targets a virtual actor with no current activation, the
runtime must choose a silo.  Orleans defaults to random placement ("adequate
for most use cases since it will spread load") and recommends prefer-local
for chatty neighbours; the paper's SHM deployment switched sensor channels
and aggregators to prefer-local (§5).  All three strategies used in the
paper's discussion are implemented, plus a stable-hash strategy that gives
deterministic spreading without randomness.

The elasticity layer (``repro.elastic``) adds two more:

- ``power_of_two`` — the classic "power of two choices": probe two random
  candidate silos and place on the less loaded one.  Near-optimal load
  spread at the cost of two load probes, and (unlike a full argmin scan) it
  does not herd every concurrent placement onto the same momentarily-idle
  silo.
- ``hash_ring`` — consistent hashing with virtual nodes.  Where the modulo
  ``hash`` strategy remaps almost every key when membership changes (any
  churn reshuffles ``digest % N``), the ring remaps only ~1/N of the key
  space per joining/leaving silo, which is what makes elastic membership
  cheap.  Keep ``hash`` for reproducing the paper's fixed-membership
  partitioning; prefer ``hash_ring`` when silos come and go.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import zlib
from typing import Callable, Protocol, Sequence

from .key import ActorKey


class PlacementStrategy(Protocol):
    """Chooses a hosting silo for a new activation."""

    def choose(
        self,
        key: ActorKey,
        caller_endpoint: str,
        active_silos: Sequence[str],
    ) -> str:
        """Return the silo id to host ``key``; ``active_silos`` is non-empty."""
        ...  # pragma: no cover - protocol


class RandomPlacement:
    """Uniformly random placement over the active silos."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        return active_silos[self._rng.randrange(len(active_silos))]


class PreferLocalPlacement:
    """Place on the caller's silo when the caller is a silo.

    Calls arriving from outside the cluster (client gateways) fall back to
    the wrapped strategy.
    """

    def __init__(self, fallback: PlacementStrategy) -> None:
        self._fallback = fallback

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        if caller_endpoint in active_silos:
            return caller_endpoint
        return self._fallback.choose(key, caller_endpoint, active_silos)


class HashPlacement:
    """Stable placement by CRC of the actor key.

    The same key always lands on the same silo for a fixed membership, which
    keeps partitioned workloads (one organization per silo) reproducible.
    """

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        digest = zlib.crc32(key.qualified().encode("utf-8"))
        return active_silos[digest % len(active_silos)]


class HashRingPlacement:
    """Consistent-hash-ring placement with virtual nodes.

    Each silo owns ``virtual_nodes`` points on a 64-bit ring; a key is
    placed on the silo owning the first point at or after the key's hash.
    Membership changes therefore remap only the arcs adjacent to the
    joining/leaving silo's points — ~1/N of the key space — instead of
    reshuffling everything the way ``digest % N`` does.  Rings are cached
    per membership set, so steady-state placement costs one hash plus one
    binary search.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._rings: dict[tuple[str, ...], tuple[list[int], list[str]]] = {}

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _ring_for(self, members: tuple[str, ...]) -> tuple[list[int], list[str]]:
        ring = self._rings.get(members)
        if ring is None:
            points: list[tuple[int, str]] = []
            for silo_id in members:
                for replica in range(self.virtual_nodes):
                    points.append((self._hash(f"{silo_id}#{replica}"), silo_id))
            points.sort()
            ring = ([point for point, _ in points], [silo for _, silo in points])
            self._rings[members] = ring
        return ring

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        members = tuple(sorted(active_silos))
        points, silos = self._ring_for(members)
        digest = self._hash(key.qualified())
        index = bisect.bisect_left(points, digest)
        if index == len(points):
            index = 0  # wrap around the ring
        return silos[index]


class PowerOfTwoPlacement:
    """Load-aware placement: probe two random silos, pick the less loaded.

    ``load_of`` returns a comparable load sample for a silo id (the runtime
    supplies ``(mailbox backlog, activation count)``).  Ties go to the first
    probe, keeping the choice deterministic for a fixed RNG stream.
    """

    def __init__(
        self, rng: random.Random, load_of: Callable[[str], object]
    ) -> None:
        self._rng = rng
        self._load_of = load_of

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        count = len(active_silos)
        if count == 1:
            return active_silos[0]
        first = self._rng.randrange(count)
        second = self._rng.randrange(count - 1)
        if second >= first:
            second += 1  # distinct second probe, uniform over the rest
        a, b = active_silos[first], active_silos[second]
        if self._load_of(a) <= self._load_of(b):  # type: ignore[operator]
            return a
        return b


class PinnedPlacement:
    """Explicit key→silo pinning with a fallback for unpinned keys.

    Benchmarks use this to reproduce the paper's partitioning of
    organizations across servers exactly.
    """

    def __init__(self, fallback: PlacementStrategy) -> None:
        self._fallback = fallback
        self._pins: dict[str, str] = {}
        self._prefix_pins: list[tuple[str, str]] = []

    def pin(self, key: ActorKey, silo_id: str) -> None:
        """Pin one specific actor key to a silo."""
        self._pins[key.qualified()] = silo_id

    def pin_prefix(self, qualified_prefix: str, silo_id: str) -> None:
        """Pin every key whose ``Type/id`` starts with the given prefix."""
        self._prefix_pins.append((qualified_prefix, silo_id))

    def pinned_to(self, key: ActorKey) -> str | None:
        """The silo ``key`` is explicitly pinned to, if any.

        The rebalancer uses this to classify activations as *movable*:
        migrating a pinned actor would be undone at its next activation, so
        pinned keys are never rebalanced.
        """
        qualified = key.qualified()
        pinned = self._pins.get(qualified)
        if pinned is not None:
            return pinned
        for prefix, silo_id in self._prefix_pins:
            if qualified.startswith(prefix):
                return silo_id
        return None

    def choose(
        self, key: ActorKey, caller_endpoint: str, active_silos: Sequence[str]
    ) -> str:
        qualified = key.qualified()
        pinned = self._pins.get(qualified)
        if pinned is not None and pinned in active_silos:
            return pinned
        for prefix, silo_id in self._prefix_pins:
            if qualified.startswith(prefix) and silo_id in active_silos:
                return silo_id
        return self._fallback.choose(key, caller_endpoint, active_silos)


def build_strategies(
    rng: random.Random,
    load_probe: Callable[[str], object] | None = None,
    fallback: str = "random",
) -> dict[str, PlacementStrategy]:
    """The standard strategy registry, keyed by the names actors use.

    ``load_probe`` (silo id → comparable load sample) enables the
    ``power_of_two`` strategy; without it the entry is absent.  ``fallback``
    names the strategy ``prefer_local`` and ``pinned`` delegate to when they
    cannot decide themselves (client callers, unpinned keys) — the elastic
    bench sets it to ``power_of_two`` so overflow placement is load-aware.
    """
    random_strategy = RandomPlacement(rng)
    strategies: dict[str, PlacementStrategy] = {
        "random": random_strategy,
        "hash": HashPlacement(),
        "hash_ring": HashRingPlacement(),
    }
    if load_probe is not None:
        strategies["power_of_two"] = PowerOfTwoPlacement(rng, load_probe)
    fallback_strategy = strategies.get(fallback)
    if fallback_strategy is None:
        raise ValueError(f"unknown placement fallback {fallback!r}")
    strategies["prefer_local"] = PreferLocalPlacement(fallback=fallback_strategy)
    strategies["pinned"] = PinnedPlacement(fallback=fallback_strategy)
    return strategies
