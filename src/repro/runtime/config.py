"""Runtime configuration.

One :class:`RuntimeConfig` instance parameterizes an
:class:`~repro.runtime.runtime.AodbRuntime`: default CPU costs, activation
lifecycle knobs, and messaging behaviour.  The benchmark calibration
(``repro.bench.calibration``) builds its configs on top of these defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .resilience import RetryPolicy


@dataclass
class RuntimeConfig:
    """Tunable parameters of the actor runtime.

    CPU costs are in *core-seconds* of simulated work and are consumed on
    the hosting silo's :class:`~repro.kernel.resources.CpuResource`.
    """

    # Cost charged for executing one actor method when neither the method
    # decorator nor the actor class overrides it.
    default_method_cost: float = 0.0001

    # Per-deployment cost overrides: (actor type name, method name) -> cost.
    # Takes precedence over decorator and class defaults; the benchmark
    # calibration uses this to pin the paper's measured service times
    # without touching application classes.
    method_costs: dict[tuple[str, str], float] = field(default_factory=dict)

    # Cost of constructing a fresh activation (allocation, ctor, state load
    # dispatch) — charged on the hosting silo.
    activation_cost: float = 0.0005

    # Idle-collection: an activation untouched for `idle_timeout` seconds is
    # deactivated by the collector, which scans every `collection_interval`.
    idle_timeout: float = 600.0
    collection_interval: float = 60.0

    # Mailbox capacity per activation (0 = unbounded).  Bounded mailboxes
    # surface overload as MailboxOverflowError instead of hiding it.
    mailbox_capacity: int = 0

    # Deep-copy message payloads and replies at actor boundaries.  Always on
    # in tests; benches may disable it to shave harness overhead after the
    # isolation property has been separately verified.
    copy_messages: bool = True

    # Default placement strategy name for actor types that do not choose.
    default_placement: str = "random"

    # Strategy name the prefer_local and pinned strategies fall back to for
    # undecidable cases (client callers, unpinned keys).  The elastic bench
    # sets "power_of_two" so overflow placement is load-aware.
    placement_fallback: str = "random"

    # Reminder pump granularity (virtual seconds between due-checks).
    reminder_tick: float = 60.0

    # -- ingestion fast path ------------------------------------------------

    # Per-destination delivery batching (the actor-message Nagle): requests
    # travelling the same (source endpoint, target silo) path within a short
    # window ride one envelope — one latency sample, one dispatch per
    # envelope.  Off by default so unbatched semantics stay bit-identical;
    # the bench calibration turns it on.
    enable_batching: bool = False

    # Envelope bounds: an open envelope departs when it holds
    # `batch_max_size` messages or `batch_max_delay` virtual seconds after
    # its first message joined, whichever comes first.
    batch_max_size: int = 64
    batch_max_delay: float = 0.0002

    # The share of every method's CPU cost that models per-message dispatch
    # overhead (deserialization, scheduling, envelope handling) rather than
    # application work.  Members of a K-message envelope each pay only 1/K
    # of it — the Reactors-style amortization that moves the saturation
    # point.  0.0 disables the split entirely (cohorts charge full cost).
    dispatch_overhead_cost: float = 0.0

    # Per-endpoint directory lookup caching on the send path, invalidated
    # through GrainDirectory subscriptions (eviction, migration, repair).
    enable_directory_cache: bool = True

    # Recycle Invocation envelopes through a bounded freelist instead of
    # allocating one per message.  Safe only under exactly-once delivery:
    # the runtime latches pooling off permanently the moment a network
    # fault injector is attached (duplicated deliveries alias one envelope)
    # and never recycles deadline-expired asks.
    pool_invocations: bool = True
    invocation_pool_capacity: int = 4096

    # Materialized-view delta coalescing (repro.net.deltas): deltas bound
    # for the same view shard emitted within `view_delta_max_delay` virtual
    # seconds merge into one sequenced flush; an open buffer also departs
    # once it spans `view_delta_max_keys` distinct (group, entity, bucket)
    # keys.  0.0 delay still coalesces same-instant emissions (one
    # scheduler round trip), mirroring batch_max_delay semantics.
    view_delta_max_delay: float = 0.0005
    view_delta_max_keys: int = 128

    # Group-commit write-behind: state flushes issued within the same
    # window collapse into one storage round trip (KeyValueStore.put_many)
    # while every caller still awaits real durability before its ack.
    enable_group_commit: bool = False
    group_commit_max_batch: int = 64
    group_commit_max_delay: float = 0.0

    # -- fault tolerance ----------------------------------------------------

    # Default deadline (virtual seconds) applied to every ask-style call
    # that does not pass its own; None = calls may wait forever.
    default_call_deadline: float | None = None

    # Retry policy applied transparently by ActorRef to ask-style calls
    # when neither the call nor the reference overrides it; None = no
    # automatic retries.
    default_retry_policy: RetryPolicy | None = None

    # Failure detector: scan the membership table every
    # `failure_detection_interval` virtual seconds; a silo whose lease has
    # been lapsed for `suspicion_grace` seconds is declared dead, its
    # directory registrations purged and (if `proactive_reactivation`) its
    # actors re-placed on surviving silos ahead of demand.
    enable_failure_detection: bool = True
    failure_detection_interval: float = 5.0
    suspicion_grace: float = 5.0
    proactive_reactivation: bool = True

    # -- partition tolerance ------------------------------------------------

    # Epoch-fenced writes: every durable activation acquires a monotonic
    # fence token from the system store at load time and stamps its flushes
    # with it, so grain storage rejects a stale (minority-side zombie)
    # writer with FencedWriteError instead of letting it clobber the
    # successor's state.  Fencing needs the system store reachable at
    # activation time; on by default because it is free in the common case.
    enable_fencing: bool = True

    # Write-ahead redo journal for INTERVAL/ON_DEACTIVATE actors: a per-silo
    # pump snapshots dirty durable state every `redo_lag` virtual seconds
    # into repro.storage.wal, bounding crash data loss to one lag window.
    # 0.0 disables the journal (the paper's benchmarked configuration).
    redo_lag: float = 0.0

    # Quorum fraction of non-dead membership rows that must be active for
    # the failure detector to commit an eviction (a view change).  At the
    # default 0.5 a partition minority — which sees the majority's rows as
    # suspected — can never evict the majority, while a 2-silo cluster with
    # one crashed member still makes progress (1 of 2 meets the bar; the
    # system store is the tiebreak, as in lease-based membership).
    eviction_quorum: float = 0.5

    # A silo that cannot refresh its membership lease (store partitioned
    # away) self-quarantines once the lease lapses: it parks its mailboxes,
    # fails asks fast with QuarantinedSiloError and scram-flushes dirty
    # state, instead of limping as a zombie serving stale activations.
    quarantine_on_lease_loss: bool = True

    # Master seed for all runtime randomness (placement, jitter).
    seed: int = 0

    # Free-form labels, surfaced in membership metadata.
    labels: dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ValueError on nonsensical settings."""
        if self.default_method_cost < 0 or self.activation_cost < 0:
            raise ValueError("CPU costs must be >= 0")
        if self.idle_timeout <= 0 or self.collection_interval <= 0:
            raise ValueError("idle collection intervals must be positive")
        if self.mailbox_capacity < 0:
            raise ValueError("mailbox capacity must be >= 0")
        if self.reminder_tick <= 0:
            raise ValueError("reminder tick must be positive")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        if self.batch_max_delay < 0:
            raise ValueError("batch_max_delay must be >= 0")
        if self.dispatch_overhead_cost < 0:
            raise ValueError("dispatch_overhead_cost must be >= 0")
        if self.view_delta_max_delay < 0:
            raise ValueError("view_delta_max_delay must be >= 0")
        if self.view_delta_max_keys < 1:
            raise ValueError("view_delta_max_keys must be >= 1")
        if self.group_commit_max_batch < 1:
            raise ValueError("group_commit_max_batch must be >= 1")
        if self.group_commit_max_delay < 0:
            raise ValueError("group_commit_max_delay must be >= 0")
        if self.default_call_deadline is not None and self.default_call_deadline <= 0:
            raise ValueError("default_call_deadline must be positive")
        if self.default_retry_policy is not None:
            self.default_retry_policy.validate()
        if self.failure_detection_interval <= 0:
            raise ValueError("failure_detection_interval must be positive")
        if self.suspicion_grace < 0:
            raise ValueError("suspicion_grace must be >= 0")
        if self.redo_lag < 0:
            raise ValueError("redo_lag must be >= 0")
        if not 0.0 < self.eviction_quorum <= 1.0:
            raise ValueError("eviction_quorum must be in (0, 1]")
