"""Runtime configuration.

One :class:`RuntimeConfig` instance parameterizes an
:class:`~repro.runtime.runtime.AodbRuntime`: default CPU costs, activation
lifecycle knobs, and messaging behaviour.  The benchmark calibration
(``repro.bench.calibration``) builds its configs on top of these defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RuntimeConfig:
    """Tunable parameters of the actor runtime.

    CPU costs are in *core-seconds* of simulated work and are consumed on
    the hosting silo's :class:`~repro.kernel.resources.CpuResource`.
    """

    # Cost charged for executing one actor method when neither the method
    # decorator nor the actor class overrides it.
    default_method_cost: float = 0.0001

    # Per-deployment cost overrides: (actor type name, method name) -> cost.
    # Takes precedence over decorator and class defaults; the benchmark
    # calibration uses this to pin the paper's measured service times
    # without touching application classes.
    method_costs: dict[tuple[str, str], float] = field(default_factory=dict)

    # Cost of constructing a fresh activation (allocation, ctor, state load
    # dispatch) — charged on the hosting silo.
    activation_cost: float = 0.0005

    # Idle-collection: an activation untouched for `idle_timeout` seconds is
    # deactivated by the collector, which scans every `collection_interval`.
    idle_timeout: float = 600.0
    collection_interval: float = 60.0

    # Mailbox capacity per activation (0 = unbounded).  Bounded mailboxes
    # surface overload as MailboxOverflowError instead of hiding it.
    mailbox_capacity: int = 0

    # Deep-copy message payloads and replies at actor boundaries.  Always on
    # in tests; benches may disable it to shave harness overhead after the
    # isolation property has been separately verified.
    copy_messages: bool = True

    # Default placement strategy name for actor types that do not choose.
    default_placement: str = "random"

    # Reminder pump granularity (virtual seconds between due-checks).
    reminder_tick: float = 60.0

    # Master seed for all runtime randomness (placement, jitter).
    seed: int = 0

    # Free-form labels, surfaced in membership metadata.
    labels: dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ValueError on nonsensical settings."""
        if self.default_method_cost < 0 or self.activation_cost < 0:
            raise ValueError("CPU costs must be >= 0")
        if self.idle_timeout <= 0 or self.collection_interval <= 0:
            raise ValueError("idle collection intervals must be positive")
        if self.mailbox_capacity < 0:
            raise ValueError("mailbox capacity must be >= 0")
        if self.reminder_tick <= 0:
            raise ValueError("reminder tick must be positive")
