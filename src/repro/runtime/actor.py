"""Actor base class, method decorator and per-activation context.

User actors subclass :class:`Actor`, declare behaviour as ``async`` methods
and (optionally) tune them with :func:`actor_method`.  Class-level attributes
declare the actor's runtime contract:

``reentrant``
    Whether multiple messages may interleave inside one activation
    (Orleans grains default to non-reentrant turn-based execution).
``durable``
    Whether the actor has persistent state (``self.state``) loaded from and
    flushed to grain storage.
``write_policy`` / ``write_interval_seconds``
    When that state is flushed (see :mod:`repro.runtime.persistence`).
``placement``
    Name of the placement strategy for new activations
    (``random`` / ``prefer_local`` / ``hash`` / ``pinned``).
``indexed_attributes``
    State attributes maintained in the AODB secondary indexes
    (see :mod:`repro.aodb.index`).
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ActorMethodError
from .key import ActorKey
from .persistence import StateCell, WritePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .reference import ActorRef
    from .runtime import AodbRuntime

_METHOD_MARKER = "_actor_method_options"


def actor_method(
    cost: float | None = None,
    read_only: bool = False,
) -> Callable[[Callable], Callable]:
    """Annotate an actor method with runtime options.

    ``cost`` is the simulated CPU charge (core-seconds) for one execution;
    when omitted the runtime default applies.  ``read_only`` marks methods
    that do not mutate state — write-through persistence skips flushing
    after them.
    """

    def decorate(func: Callable) -> Callable:
        if not inspect.iscoroutinefunction(func):
            raise TypeError(
                f"actor method {func.__name__!r} must be 'async def'"
            )
        setattr(func, _METHOD_MARKER, {"cost": cost, "read_only": read_only})
        return func

    return decorate


#: Shared default options for undecorated methods — callers only read it.
DEFAULT_METHOD_OPTIONS: dict[str, Any] = {"cost": None, "read_only": False}


def method_options(func: Callable) -> dict[str, Any]:
    """Return the options attached by :func:`actor_method` (or defaults)."""
    return getattr(func, _METHOD_MARKER, DEFAULT_METHOD_OPTIONS)


class ActorContext:
    """Everything an activation may ask of its runtime."""

    def __init__(self, runtime: "AodbRuntime", key: ActorKey, silo_id: str) -> None:
        self.runtime = runtime
        self.key = key
        self.silo_id = silo_id

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.runtime.scheduler.now

    def actor(self, type_name: str, actor_id: str) -> "ActorRef":
        """A reference to another actor, calling from this silo.

        The reference carries the current call chain, so cycles through
        non-reentrant actors are detected instead of deadlocking.  It also
        carries the current turn's trace span, so traced calls fan out into
        a causal tree.
        """
        activation = self.activation  # type: ignore[attr-defined]
        chain = getattr(activation, "active_chain", ())
        span = getattr(activation, "active_span", None)
        return self.runtime.ref(
            type_name,
            actor_id,
            caller_endpoint=self.silo_id,
            chain=chain,
            trace=span,
        )

    def register_timer(self, name: str, period: float, method: str, *args: Any) -> None:
        """Run ``method`` through this actor's mailbox every ``period`` s.

        Timers live and die with the activation (use reminders for timers
        that must survive deactivation).
        """
        self.activation.register_timer(  # type: ignore[attr-defined]
            name, period, method, *args
        )

    def cancel_timer(self, name: str) -> bool:
        """Cancel an activation-scoped timer."""
        return self.activation.cancel_timer(name)  # type: ignore[attr-defined]

    def register_reminder(self, name: str, period: float) -> None:
        """Register a durable reminder; delivered to ``receive_reminder``."""
        self.runtime.system_store.register_reminder(
            self.key.qualified(), name, period
        )

    def unregister_reminder(self, name: str) -> bool:
        """Remove a durable reminder."""
        return self.runtime.system_store.unregister_reminder(
            self.key.qualified(), name
        )


class Actor:
    """Base class for all virtual actors.

    Instances are *activations*: created on demand by the runtime, fed one
    message at a time, and collected when idle.  Application state lives in
    instance attributes; durable actors additionally get ``self.state``, a
    dict persisted through the grain storage provider.
    """

    reentrant: bool = False
    # Non-reentrant actors reject messages whose call chain re-enters them
    # (a guaranteed deadlock); set this to execute such cycles interleaved
    # instead (Orleans' call-chain reentrancy).
    allow_chain_reentrancy: bool = False
    durable: bool = False
    write_policy: WritePolicy = WritePolicy.ON_DEACTIVATE
    write_interval_seconds: float = 60.0
    placement: str | None = None
    indexed_attributes: tuple[str, ...] = ()
    default_method_cost: float | None = None
    mailbox_capacity: int | None = None

    def __init__(self, context: ActorContext) -> None:
        self.context = context
        self.state: dict[str, Any] = {}
        self._state_cell: StateCell | None = None

    # -- identity helpers ------------------------------------------------------

    @property
    def key(self) -> ActorKey:
        """This actor's identity."""
        return self.context.key

    @property
    def actor_id(self) -> str:
        """Shorthand for the id part of the key."""
        return self.context.key.actor_id

    # -- lifecycle hooks --------------------------------------------------------

    async def on_activate(self) -> None:
        """Called after construction (and state load, if durable)."""

    async def on_deactivate(self) -> None:
        """Called before the activation is collected or the silo stops."""

    async def receive_reminder(self, name: str) -> None:
        """Called when a durable reminder fires (override to use)."""

    def snapshot_state(self) -> None:
        """Serialize volatile in-memory structures into ``self.state``.

        Durable actors that keep working state outside the state dict (ring
        buffers, accumulators) normally serialize it in ``on_deactivate``.
        Override this *synchronous* hook with that serialization instead
        (and call it from ``on_deactivate``): the redo-journal pump and the
        quarantine scram flush call it to capture a consistent document
        mid-life, without running the full deactivation path.
        """

    # -- persistence ----------------------------------------------------------

    def _attach_state_cell(self, cell: StateCell) -> None:
        self._state_cell = cell
        self.state = cell.document

    def mark_dirty(self) -> None:
        """Note that ``self.state`` changed (flushed per the write policy)."""
        if self._state_cell is not None:
            self._state_cell.dirty = True

    async def write_state(self) -> None:
        """Force the state document to grain storage now."""
        if self._state_cell is None:
            raise ActorMethodError(
                f"{type(self).__name__} is not durable; set durable=True"
            )
        self._state_cell.dirty = True
        await self._state_cell.flush()

    async def clear_state(self) -> None:
        """Delete the persisted state document."""
        if self._state_cell is not None:
            await self._state_cell.clear()
            self.state = self._state_cell.document

    # -- indexing (AODB feature) -----------------------------------------------

    def set_indexed(self, attr: str, value: Any) -> None:
        """Set ``self.state[attr]`` and eagerly maintain its secondary index.

        Requires ``attr`` to be listed in ``indexed_attributes`` and an
        :class:`~repro.aodb.database.AodbDatabase` layered on the runtime.
        """
        if attr not in self.indexed_attributes:
            raise ActorMethodError(
                f"{type(self).__name__}.{attr} is not declared in "
                "indexed_attributes"
            )
        # Local import: repro.aodb imports the runtime package at load time.
        from ..aodb.index import MISSING

        old_value = self.state.get(attr, MISSING)
        self.state[attr] = value
        self.mark_dirty()
        database = self.context.runtime.database
        if database is not None:
            database.indexes.update(self.key, attr, old_value, value)

    # -- introspection ------------------------------------------------------------

    @classmethod
    def exposed_methods(cls) -> dict[str, Callable]:
        """Public async methods callable through references."""
        exposed: dict[str, Callable] = {}
        for name in dir(cls):
            if name.startswith("_"):
                continue
            if name in _NON_EXPOSED:
                continue
            attr = getattr(cls, name)
            if inspect.iscoroutinefunction(attr):
                exposed[name] = attr
        return exposed


_NON_EXPOSED = frozenset(
    {
        "on_activate",
        "on_deactivate",
        "write_state",
        "clear_state",
    }
)
