"""Actor references — the client-visible face of a virtual actor.

A reference never dangles: it names an actor that the runtime will activate
on first use.  Attribute access produces remote-method stubs, so calls read
naturally::

    cow = runtime.ref("Cow", "dk-0042")
    location = await cow.current_location()
    cow.tell("record_reading", reading)     # one-way, fire-and-forget
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..kernel.futures import Future
from .key import ActorKey
from .messages import DeliveryReceipt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import AodbRuntime


class RemoteMethod:
    """A bound stub for one method of one actor reference."""

    __slots__ = ("_ref", "_name")

    def __init__(self, ref: "ActorRef", name: str) -> None:
        self._ref = ref
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Future[Any]:
        return self._ref.ask(self._name, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteMethod {self._ref.key}.{self._name}>"


class ActorRef:
    """A location-transparent handle to a virtual actor."""

    __slots__ = ("_runtime", "key", "caller_endpoint", "chain")

    def __init__(
        self,
        runtime: "AodbRuntime",
        key: ActorKey,
        caller_endpoint: str,
        chain: tuple[str, ...] = (),
    ) -> None:
        self._runtime = runtime
        self.key = key
        self.caller_endpoint = caller_endpoint
        self.chain = chain

    def ask(self, method: str, *args: Any, **kwargs: Any) -> Future[Any]:
        """Invoke ``method`` and return a future for its result."""
        return self._runtime.send(
            self.key,
            method,
            args,
            kwargs,
            caller_endpoint=self.caller_endpoint,
            one_way=False,
            chain=self.chain,
        )

    def tell(self, method: str, *args: Any, **kwargs: Any) -> DeliveryReceipt:
        """Invoke ``method`` one-way; returns an enqueue receipt, not a result."""
        return self._runtime.send_one_way(
            self.key,
            method,
            args,
            kwargs,
            caller_endpoint=self.caller_endpoint,
            chain=self.chain,
        )

    def __getattr__(self, name: str) -> RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return RemoteMethod(self, name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ActorRef) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"<ActorRef {self.key}>"
