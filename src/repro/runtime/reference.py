"""Actor references — the client-visible face of a virtual actor.

A reference never dangles: it names an actor that the runtime will activate
on first use.  Attribute access produces remote-method stubs, so calls read
naturally::

    cow = runtime.ref("Cow", "dk-0042")
    location = await cow.current_location()
    cow.tell("record_reading", reading)     # one-way, fire-and-forget

References participate in the fault-tolerance layer: ``ask`` accepts a
``deadline`` (virtual seconds) and a ``retry`` policy, and
:meth:`ActorRef.with_options` bakes defaults into the reference so method
stubs (``await cow.current_location()``) are transparently resilient.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..kernel.futures import Future
from .key import ActorKey
from .messages import DeliveryReceipt
from .resilience import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.trace import Span
    from .runtime import AodbRuntime


class RemoteMethod:
    """A bound stub for one method of one actor reference."""

    __slots__ = ("_ref", "_name")

    def __init__(self, ref: "ActorRef", name: str) -> None:
        self._ref = ref
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Future[Any]:
        return self._ref.ask(self._name, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteMethod {self._ref.key}.{self._name}>"


class ActorRef:
    """A location-transparent handle to a virtual actor."""

    __slots__ = (
        "_runtime",
        "key",
        "caller_endpoint",
        "chain",
        "_deadline",
        "_retry",
        "_trace",
    )

    def __init__(
        self,
        runtime: "AodbRuntime",
        key: ActorKey,
        caller_endpoint: str,
        chain: tuple[str, ...] = (),
        deadline: float | None = None,
        retry: RetryPolicy | None = None,
        trace: "Span | None" = None,
    ) -> None:
        self._runtime = runtime
        self.key = key
        self.caller_endpoint = caller_endpoint
        self.chain = chain
        self._deadline = deadline
        self._retry = retry
        # Parent span for causal tracing: calls through this reference
        # become children of ``trace`` (None outside a traced turn).
        self._trace = trace

    def with_options(
        self,
        deadline: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> "ActorRef":
        """A copy of this reference with resilience defaults baked in.

        Every ask through the returned reference (including method stubs)
        applies ``deadline`` / ``retry`` unless the call overrides them.
        """
        return ActorRef(
            self._runtime,
            self.key,
            self.caller_endpoint,
            self.chain,
            deadline=deadline if deadline is not None else self._deadline,
            retry=retry if retry is not None else self._retry,
            trace=self._trace,
        )

    def ask(
        self,
        method: str,
        *args: Any,
        deadline: float | None = None,
        retry: RetryPolicy | None = None,
        **kwargs: Any,
    ) -> Future[Any]:
        """Invoke ``method`` and return a future for its result.

        ``deadline`` (virtual seconds) and ``retry`` are keyword-only and
        reserved: resolution order is call argument, then
        :meth:`with_options` defaults, then the runtime config defaults
        (``default_call_deadline`` / ``default_retry_policy``).  Actor
        methods therefore cannot take parameters with these two names
        through the remote-call path.
        """
        config = self._runtime.config
        if deadline is None:
            deadline = (
                self._deadline
                if self._deadline is not None
                else config.default_call_deadline
            )
        if retry is None:
            retry = (
                self._retry if self._retry is not None else config.default_retry_policy
            )
        if deadline is None and retry is None:
            return self._runtime.send(
                self.key,
                method,
                args,
                kwargs,
                caller_endpoint=self.caller_endpoint,
                one_way=False,
                chain=self.chain,
                parent_span=self._trace,
            )
        return self._runtime.send_resilient(
            self.key,
            method,
            args,
            kwargs,
            caller_endpoint=self.caller_endpoint,
            chain=self.chain,
            retry=retry,
            deadline=deadline,
            parent_span=self._trace,
        )

    def tell(self, method: str, *args: Any, **kwargs: Any) -> DeliveryReceipt:
        """Invoke ``method`` one-way; returns an enqueue receipt, not a result.

        Tells are never retried or deadline-bounded: the receipt only
        acknowledges enqueue, so there is no failure for a policy to react
        to, and blind re-sends would duplicate non-idempotent work.
        """
        return self._runtime.send_one_way(
            self.key,
            method,
            args,
            kwargs,
            caller_endpoint=self.caller_endpoint,
            chain=self.chain,
            parent_span=self._trace,
        )

    def __getattr__(self, name: str) -> RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return RemoteMethod(self, name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ActorRef) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"<ActorRef {self.key}>"
