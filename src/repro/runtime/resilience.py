"""Fault-tolerance policies: call deadlines, retries, circuit breaking.

The paper's pitch (§5) is that an actor-oriented database gives IoT
platforms Orleans-style resilience: virtual actors re-place after a silo
failure and callers see a transient error, not lost state.  This module
holds the *policy* half of that story — the mechanism (failure detection,
directory repair, re-activation) lives in :mod:`repro.runtime.runtime`:

- :class:`RetryPolicy` — declarative retry behaviour applied transparently
  by :class:`~repro.runtime.reference.ActorRef` to ask-style calls.
  One-way tells are never retried: a tell acknowledges *enqueue*, so the
  caller observes no failure to react to, and blind re-sends would break
  at-most-once expectations for non-idempotent handlers.
- :class:`CircuitBreaker` — failure-rate gate used by the ingest gateway to
  degrade to bounded queueing (load shedding) while storage is throttling.

Both are deterministic: backoff jitter is drawn from a seeded RNG stream
and all clocks are the virtual scheduler clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import DeadlineExceededError, SiloUnavailableError, ThrottledError
from ..kernel.scheduler import Scheduler

#: Error classes a retry policy treats as transient unless told otherwise.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    SiloUnavailableError,
    ThrottledError,
    DeadlineExceededError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry behaviour for ask-style actor calls.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retries.  Backoff for attempt *n* (1-based) is
    ``min(max_delay, base_delay * multiplier ** (n - 1))``, spread by
    ``jitter`` (a fraction: 0.5 means ±50%) drawn from a seeded stream, and
    never below the ``retry_after`` hint carried by a
    :class:`~repro.errors.ThrottledError`.

    ``attempt_timeout`` bounds each individual attempt in virtual seconds so
    a *silently lost* message (chaos harness, dead silo) turns into a
    retryable :class:`~repro.errors.DeadlineExceededError` instead of
    consuming the whole call deadline.  Retrying after an attempt timeout
    gives at-least-once delivery — the timed-out invocation may still
    execute later — which is the standard trade the caller opts into.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    attempt_timeout: float | None = None
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def validate(self) -> None:
        """Raise ValueError on nonsensical settings."""
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be retried."""
        if attempt >= self.max_attempts:
            return False
        return isinstance(error, self.retryable)

    def delay_for(
        self, attempt: int, rng: random.Random, error: BaseException | None = None
    ) -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        retry_after = getattr(error, "retry_after", 0.0) or 0.0
        return max(delay, retry_after)


#: A conservative default for interactive callers: a few quick retries.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Explicit "never retry" policy, clearer at call sites than None.
NO_RETRY = RetryPolicy(max_attempts=1)


class CircuitBreaker:
    """A failure-rate gate with closed → open → half-open transitions.

    ``record_failure`` trips the breaker open after ``failure_threshold``
    consecutive failures; while open, :meth:`allow` answers False so callers
    shed or queue work instead of piling onto a struggling dependency.
    After ``reset_timeout`` virtual seconds the breaker half-opens: probes
    are allowed through, one success closes it, one failure re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        scheduler: Scheduler,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self._scheduler = scheduler
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.opens = 0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half_open``."""
        if self._opened_at is None:
            return self.CLOSED
        if self._scheduler.now - self._opened_at >= self.reset_timeout:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        return self.state != self.OPEN

    def seconds_until_probe(self) -> float:
        """Virtual seconds until an open breaker half-opens (0 otherwise)."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self._opened_at + self.reset_timeout - self._scheduler.now)

    def record_success(self) -> None:
        """Note a success; closes a half-open breaker."""
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """Note a failure; may trip (or re-trip) the breaker open."""
        if self._opened_at is not None:
            # A failed half-open probe re-opens the full timeout window.
            self._opened_at = self._scheduler.now
            self.opens += 1
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._opened_at = self._scheduler.now
            self.opens += 1


@dataclass
class ResilienceStats:
    """Counters for one retry/deadline-aware call site (e.g. the chaos bench)."""

    attempts: int = 0
    retries: int = 0
    deadline_failures: int = 0
    exhausted: int = 0
    errors_by_type: dict[str, int] = field(default_factory=dict)

    def note_error(self, error: BaseException) -> None:
        name = type(error).__name__
        self.errors_by_type[name] = self.errors_by_type.get(name, 0) + 1
