"""Message envelopes exchanged between actors.

Every remote interaction is an :class:`Invocation`: target key, method name,
positional/keyword arguments, plus bookkeeping the runtime needs (caller
endpoint for the reply path, enqueue timestamps for latency accounting, and
the reply future for ask-style calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..kernel.futures import Future
from .key import ActorKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.trace import Span


@dataclass(slots=True)
class Invocation:
    """One actor method call in flight."""

    target: ActorKey
    method: str
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    caller_endpoint: str = "client"
    one_way: bool = False
    reply: Future[Any] | None = None
    # Qualified keys of the actors in the call chain that produced this
    # invocation (used for cycle/deadlock detection on non-reentrant actors).
    chain: tuple[str, ...] = ()
    # Absolute virtual time after which the caller no longer wants the
    # result; the runtime fails the reply and activations skip execution.
    deadline: float | None = None

    # Filled in by the runtime for metrics:
    sent_at: float = 0.0
    enqueued_at: float = 0.0
    started_at: float = 0.0

    # How many messages shared this invocation's delivery envelope (1 when
    # batching is off).  The activation amortizes the per-message dispatch
    # overhead of the CPU cost model across the cohort.
    batch_cohort: int = 1

    # The causal-tracing span covering this invocation (None when tracing
    # is disabled).  Runtime-internal: never serialized with the payload.
    span: "Span | None" = None

    def describe(self) -> str:
        """Short human-readable form for errors and traces."""
        return f"{self.target}.{self.method}()"


@dataclass(slots=True)
class DeliveryReceipt:
    """What a one-way send returns: proof of enqueue, not of processing."""

    target: ActorKey
    method: str
    enqueued_at: float
